//! Offline stand-in for the `serde` crate.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a minimal serialization layer instead of the real `serde`.
//! Rather than the full `Serializer`-visitor machinery, [`Serialize`] here
//! converts straight to an in-memory JSON [`Value`] tree — the only
//! serialization target this workspace has. `#[derive(Serialize)]` is
//! provided by the vendored `serde_derive` proc-macro and re-exported, so
//! `#[derive(serde::Serialize)]` works exactly as with the real crate.

pub use serde_derive::Serialize;

/// An insertion-ordered string-keyed map (what `serde_json::Map` is to the
/// real crates). Insertion order is preserved so emitted JSON matches the
/// field order of the deriving struct.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` at `key`, replacing (in place) any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON number. Integers are kept exact; floats are IEEE f64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            _ => None,
        }
    }
}

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Non-panicking object lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// JSON encoding; `indent = None` is compact, `Some(width)` pretty.
    /// (Lives here rather than in the vendored `serde_json` so `Display`
    /// can be implemented on `Value` without an orphan impl.)
    #[doc(hidden)]
    pub fn __to_json(&self, indent: Option<usize>) -> String {
        let mut out = String::new();
        write_value(&mut out, self, indent, 0);
        out
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.__to_json(None))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U64(x) => out.push_str(&x.to_string()),
        Number::I64(x) => out.push_str(&x.to_string()),
        Number::F64(x) => {
            if x.is_finite() {
                // Rust's float Display is the shortest round-trip form;
                // force a trailing `.0` so the token re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json writes null too.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Missing keys and non-objects index to `Null` (as in `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifies: `Null` becomes an object, missing keys are inserted
    /// as `Null` (matching `serde_json`'s `IndexMut` semantics).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let map = self
            .as_object_mut()
            .expect("cannot index into a non-object Value with a string key");
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).unwrap()
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
    )*};
}
value_eq_uint!(u8, u16, u32, u64, usize);

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == Some(*other as i64)
            }
        }
    )*};
}
value_eq_int!(i8, i16, i32, i64, isize);

macro_rules! value_eq_float {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
value_eq_float!(f32, f64);

/// Conversion to a JSON [`Value`] — the single serialization target this
/// workspace needs. The derive macro (re-exported above) implements this
/// for named-field structs and unit-variant enums.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn serialize(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn index_and_eq_sugar() {
        let mut v = Value::Null;
        v["x"] = Value::String("hello".into());
        assert_eq!(v["x"], "hello");
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["missing"]["deeper"], Value::Null);
    }

    #[test]
    fn primitive_serialization() {
        assert_eq!(3u32.serialize().as_u64(), Some(3));
        assert_eq!((-3i64).serialize().as_i64(), Some(-3));
        assert_eq!(0.5f64.serialize().as_f64(), Some(0.5));
        assert_eq!("s".serialize().as_str(), Some("s"));
        let arr = vec![1u32, 2, 3].serialize();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        assert_eq!(arr[1].as_u64(), Some(2));
        assert!(Option::<u32>::None.serialize().is_null());
    }
}
