//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the `par_iter`/`into_par_iter`/`par_chunks_mut` API surface this
//! workspace uses, executed *sequentially* on the calling thread. The
//! depending code is written against rayon's semantics (no cross-item
//! ordering assumptions, `for_each_init` per-"thread" state), so swapping
//! the real crate back in requires no source changes — only restoring the
//! registry dependency.

/// A "parallel" iterator: a thin adapter over a sequential one.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Minimum split length hint. Meaningless for sequential execution.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Maximum split length hint. Meaningless for sequential execution.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    pub fn for_each<F: FnMut(I::Item)>(self, mut f: F) {
        for item in self.inner {
            f(item);
        }
    }

    /// Runs `f` per item with state built once per worker thread — here,
    /// exactly once.
    pub fn for_each_init<T, INIT, F>(self, mut init: INIT, mut f: F)
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item),
    {
        let mut state = init();
        for item in self.inner {
            f(&mut state, item);
        }
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    pub fn count(self) -> usize {
        self.inner.count()
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Iter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Entry point mirroring `rayon::iter::IntoParallelRefIterator`:
/// `collection.par_iter()` borrows the collection.
pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator<Item = Self::Item>;
    type Item: 'data;
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Mutable slice chunking, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            inner: self.chunks_mut(chunk_size),
        }
    }
}

/// Sequential stand-in runs everything on the calling thread.
pub fn current_num_threads() -> usize {
    1
}

pub mod iter {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

pub mod slice {
    pub use super::ParallelSliceMut;
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_init_accumulates() {
        let mut hits = vec![0u32; 8];
        let slot = std::cell::RefCell::new(&mut hits);
        (0..8usize).into_par_iter().with_min_len(2).for_each(|i| {
            slot.borrow_mut()[i] += 1;
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3];
        let mut total = 0u64;
        v.par_iter().for_each(|&x| total += x);
        assert_eq!(total, 6);
    }

    #[test]
    fn chunks_mut_and_enumerate() {
        let mut data = [0f32; 12];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as f32;
            }
        });
        assert_eq!(data[0], 0.0);
        assert_eq!(data[5], 1.0);
        assert_eq!(data[11], 2.0);
    }
}
