//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the two shapes this workspace
//! uses — named-field structs and unit-variant enums — by walking the raw
//! `proc_macro` token stream directly (no `syn`/`quote`, which are
//! unreachable registry crates in this environment) and emitting the impl
//! as a parsed string. Generics, tuple structs, and payload-carrying enum
//! variants are rejected with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    // Skip outer attributes and visibility ahead of the `struct`/`enum`
    // keyword (doc comments arrive as #[doc = ...] and are covered too).
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => return Err("derive(Serialize): no struct or enum found".into()),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize): missing type name".into()),
    };
    i += 1;
    // Anything between the name and the brace body other than the body
    // itself means generics or a tuple struct — unsupported here.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "derive(Serialize): tuple struct `{name}` is not supported by the vendored serde_derive"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "derive(Serialize): generic type `{name}` is not supported by the vendored serde_derive"
                ));
            }
            Some(_) => i += 1,
            None => {
                return Err(format!(
                "derive(Serialize): `{name}` has no braced body (unit structs are not supported)"
            ))
            }
        }
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if kind == "struct" {
        gen_struct(&name, &body_tokens)
    } else {
        gen_enum(&name, &body_tokens)
    }
}

/// Collects the field names of a named-field struct body, then emits a
/// `Serialize` impl building a `serde::Map` in declaration order.
fn gen_struct(name: &str, body: &[TokenTree]) -> Result<String, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Per-field attributes and visibility.
        while let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        if let Some(TokenTree::Ident(id)) = body.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let field = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => {
                return Err(format!(
                    "derive(Serialize): unexpected token `{t}` in `{name}`"
                ))
            }
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "derive(Serialize): expected `:` after field `{field}` in `{name}`"
                ))
            }
        }
        fields.push(field);
        // Skip the field's type: angle brackets are bare puncts (not
        // groups), so track their depth to find the *field-separating*
        // comma rather than one inside `Map<String, u64>`.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut inserts = String::new();
    for f in &fields {
        inserts.push_str(&format!(
            "m.insert(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}));\n"
        ));
    }
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 let mut m = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(m)\n\
             }}\n\
         }}"
    ))
}

/// Emits a `Serialize` impl mapping each unit variant to its name as a
/// JSON string.
fn gen_enum(name: &str, body: &[TokenTree]) -> Result<String, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let variant = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => {
                return Err(format!(
                    "derive(Serialize): unexpected token `{t}` in enum `{name}`"
                ))
            }
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(_) => {
                return Err(format!(
                "derive(Serialize): variant `{name}::{variant}` carries data or a discriminant; \
                     only unit variants are supported by the vendored serde_derive"
            ))
            }
        }
        variants.push(variant);
    }
    let mut arms = String::new();
    for v in &variants {
        arms.push_str(&format!("{name}::{v} => {v:?},\n"));
    }
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 let s = match self {{\n{arms}}};\n\
                 ::serde::Value::String(::std::string::String::from(s))\n\
             }}\n\
         }}"
    ))
}
