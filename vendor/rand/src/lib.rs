//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates-io registry, so this
//! workspace vendors the *subset* of `rand`'s API it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform sampling for the
//! primitive types, [`seq::SliceRandom::shuffle`], and
//! [`seq::index::sample`]. The traits mirror `rand` 0.8's signatures so the
//! depending code would compile unchanged against the real crate; the
//! generated *streams* are not guaranteed to match upstream `rand`
//! bit-for-bit (nothing in this workspace depends on that — determinism
//! per seed is what matters, and that is preserved).

use std::ops::Range;

/// Core entropy source: 32/64-bit words plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same scheme
    /// `rand_core` documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expansion and the engine behind small helper RNGs.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type (floats in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-width bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa-width bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < 2^-64 for every span this workspace uses.
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as u128).wrapping_sub(s as u128) + 1;
                s.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod seq {
    //! Sequence helpers: in-place shuffling and distinct-index sampling.

    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Distinct-index sampling without replacement.

        use super::super::RngCore;

        /// The result of [`sample`]: `amount` distinct indices in
        /// `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (Floyd's
        /// algorithm — `O(amount)` regardless of `length`).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = (rng.next_u64() % (j as u64 + 1)) as usize;
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Clone)]
    struct TestRng(SplitMix64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = TestRng(SplitMix64(7));
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng(SplitMix64(8));
        for _ in 0..1000 {
            let a = rng.gen_range(3u32..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(0.1f64..1.0);
            assert!((0.1..1.0).contains(&b));
            let c = rng.gen_range(0usize..=4);
            assert!(c <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng(SplitMix64(9));
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = TestRng(SplitMix64(10));
        for amount in [0usize, 1, 5, 50] {
            let picks = sample(&mut rng, 50, amount);
            let mut v: Vec<usize> = picks.iter().collect();
            assert_eq!(v.len(), amount);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), amount, "indices must be distinct");
            assert!(v.iter().all(|&i| i < 50));
        }
    }
}
