//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha8 block function (RFC 7539 quarter-rounds,
//! 8 rounds) behind the vendored `rand` traits. Streams are deterministic
//! per seed but are not guaranteed to be word-for-word identical to
//! upstream `rand_chacha` (which nothing in this workspace relies on).

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with 8 rounds: fast, seedable, deterministic.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Constant + key + counter + nonce words.
    state: [u32; 16],
    /// One generated block's worth of output words.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill needed".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column round + diagonal round).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((b, w), s) in self.buf.iter_mut().zip(&working).zip(&self.state) {
            *b = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same: usize = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn output_is_not_trivially_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let mut uniq = words.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() > 60,
            "keystream words should be essentially unique"
        );
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
