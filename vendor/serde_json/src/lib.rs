//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the [`Value`]/[`Map`] tree from the vendored `serde`, and
//! adds the pieces this workspace uses on top: the [`json!`] macro,
//! [`to_string`]/[`to_string_pretty`] printers, and a strict [`from_str`]
//! parser (used by tests to prove emitted traces/manifests round-trip).

pub use serde::{Map, Number, Value};

/// Converts any [`serde::Serialize`] into a [`Value`] tree. (`json!` and
/// the printers are built on this.)
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Normalizes a `json!` object key into a `String`; keys may be string
/// literals or any expression convertible to one.
#[doc(hidden)]
pub fn __key<S: Into<String>>(key: S) -> String {
    key.into()
}

/// Builds a [`Value`] from JSON-looking syntax. Supports the shapes this
/// workspace uses: `json!(null)`, `json!([a, b, ...])`, and
/// `json!({ key: expr, ... })` where `key` is a string literal or a
/// `&str`-valued expression, plus `json!(expr)` for any `Serialize` type.
/// Unlike the real macro, nested containers must recurse explicitly:
/// `json!({ "outer": json!({ "inner": 1 }) })`, and an array value of
/// mixed types is `json!([a, b])`, not a bare `[a, b]`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($crate::__key($key), $crate::to_value(&$value)); )*
        $crate::Value::Object(m)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Compact JSON encoding.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value).__to_json(None))
}

/// Human-readable JSON encoding (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value).__to_json(Some(2)))
}

/// A parse (or, in principle, encode) failure with byte position context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document into a [`Value`]. Trailing non-space
/// input is an error, making this suitable for round-trip assertions.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates are
                            // rejected.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "deli";
        let key = "rows";
        let v = json!({ key: [1u32, 2, 3], "name": name, "nested": json!({ "x": 0.5 }), "none": Value::Null });
        assert_eq!(v["rows"].as_array().unwrap().len(), 3);
        assert_eq!(v["name"], "deli");
        assert_eq!(v["nested"]["x"].as_f64(), Some(0.5));
        assert!(v["none"].is_null());
        assert!(json!(null).is_null());
        assert_eq!(json!(3.25f64).as_f64(), Some(3.25));
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({
            "s": "a \"quoted\"\nline",
            "neg": -17i64,
            "big": u64::MAX,
            "f": 0.1f64,
            "arr": json!([true, false, Value::Null]),
            "empty_obj": Map::new(),
            "unicode": "π ≈ 3.14159",
        });
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&s).expect("emitted JSON must re-parse");
            assert_eq!(back, v, "round-trip through {s}");
        }
    }

    #[test]
    fn floats_keep_full_precision() {
        let x = 0.123_456_789_012_345_67_f64;
        let s = to_string(&json!({ "x": x })).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back["x"].as_f64(), Some(x));
    }

    #[test]
    fn whole_floats_reparse_as_floats() {
        let s = to_string(&json!({ "x": 2.0f64 })).unwrap();
        assert!(s.contains("2.0"), "got {s}");
        assert!(matches!(
            from_str(&s).unwrap()["x"],
            Value::Number(Number::F64(_))
        ));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let s = to_string(&json!({ "a": f64::NAN, "b": f64::INFINITY })).unwrap();
        let back = from_str(&s).unwrap();
        assert!(back["a"].is_null());
        assert!(back["b"].is_null());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"\\u12\""] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escapes_and_surrogates() {
        let v = from_str(r#"{"s": "tab\there \ud83d\ude00 done"}"#).unwrap();
        assert_eq!(v["s"].as_str().unwrap(), "tab\there 😀 done");
    }
}
