//! Offline stand-in for `criterion`.
//!
//! Implements exactly the harness surface this workspace's benches use:
//! [`Criterion::benchmark_group`], group-level `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain [`Instant`] loop printed
//! as mean wall time per iteration — enough for `cargo bench` smoke runs
//! and trend eyeballing, with none of the statistics machinery of the
//! real crate (unreachable offline).

use std::fmt::Display;
use std::time::Instant;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    /// Total measured nanoseconds across all iterations.
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` `iterations` times, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream: number of statistical samples. Here: iterations per
    /// benchmark (bounded to keep smoke runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns as f64 / b.iterations.max(1) as f64;
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, per_iter, b.iterations
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.id.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            _criterion: self,
        };
        g.run_one(id, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring upstream's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups; CLI arguments from
/// `cargo bench` are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &v| {
            b.iter(|| seen = v * 2)
        });
        assert_eq!(seen, 42);
    }
}
