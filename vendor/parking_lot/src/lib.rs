//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s API shape:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned std lock is simply recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
