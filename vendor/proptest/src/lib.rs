//! Offline stand-in for the `proptest` crate.
//!
//! Provides deterministic random-input testing with the combinator surface
//! this workspace's property tests use: range strategies, `prop_map` /
//! `prop_flat_map` / `boxed`, tuple and `Vec` composition,
//! `collection::vec`, `any`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. Each test case draws from an
//! RNG seeded from the test's module path, so failures reproduce exactly
//! across runs. The one major feature intentionally missing is input
//! *shrinking* — a failing case reports the generated value unminimized.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; try another one.
        Reject(String),
        /// `prop_assert!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The deterministic generator behind every strategy (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform draw in `[0, bound)`; `bound = 0` returns 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over the test's full path: stable per test, differing across
    /// tests, independent of execution order.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, so whole strategies can be boxed.
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (`Strategy::boxed`).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `Strategy::prop_flat_map` adapter: a value-dependent strategy.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128 + 1) as u64;
                    s.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! strategy_for_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    strategy_for_float_range!(f32, f64);

    /// A `Vec` of strategies generates element-wise (used for per-mode
    /// coordinate strategies of varying length).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! strategy_for_tuple {
        ($(($($s:ident . $idx:tt),+ ))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    strategy_for_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Primitive types `any::<T>()` can produce.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty => $e:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    let f: fn(&mut TestRng) -> $t = $e;
                    f(rng)
                }
            }
        )*};
    }
    arbitrary_prim! {
        u8 => |r| r.next_u32() as u8,
        u16 => |r| r.next_u32() as u16,
        u32 => |r| r.next_u32(),
        u64 => |r| r.next_u64(),
        usize => |r| r.next_u64() as usize,
        i8 => |r| r.next_u32() as i8,
        i16 => |r| r.next_u32() as i16,
        i32 => |r| r.next_u32() as i32,
        i64 => |r| r.next_u64() as i64,
        isize => |r| r.next_u64() as isize,
        bool => |r| r.next_u32() & 1 == 1,
        f32 => |r| r.unit_f64() as f32,
        f64 => |r| r.unit_f64(),
    }

    /// Strategy form of [`Arbitrary`] (what [`any`] returns).
    pub struct ArbitraryStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of a primitive type.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// The accepted length specifications for [`vec`]: an exact length or
    /// a range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// What [`vec`] returns.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Fails the current case (recorded, not panicking mid-generation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Discards the current case and draws a fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` against `config.cases` generated
/// inputs. The RNG is seeded from the test path, so runs are reproducible.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut seed = $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(100),
                        "proptest: too many inputs rejected by prop_assume!"
                    );
                    seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    let ($($pat,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest case {} failed: {}", accepted + 1, msg),
                    }
                }
            }
        )*
    };
    (
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($pat in $strat),+ ) $body )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, f64)> {
        ((1u32..100), (0.0f64..1.0)).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 5u32..10, (a, b) in arb_pair(), v in crate::collection::vec(0u64..3, 2..5)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(a % 2 == 0 && a >= 2);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 5, "bad len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn oneof_and_flat_map(n in prop_oneof![0u32..5, 100u32..105].prop_flat_map(|n| 0u32..n + 1)) {
            prop_assert!(n < 105);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x > 0);
            prop_assert!(x > 0);
        }
    }

    #[test]
    fn vec_of_boxed_strategies_is_elementwise() {
        let dims = [3u32, 5, 7];
        let per_mode: Vec<BoxedStrategy<u32>> = dims.iter().map(|&d| (0..d).boxed()).collect();
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..100 {
            let coords = per_mode.generate(&mut rng);
            assert_eq!(coords.len(), 3);
            for (c, d) in coords.iter().zip(dims.iter()) {
                assert!(c < d);
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let strat = crate::collection::vec(0u64..1000, 0..50);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.generate(&mut crate::test_runner::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|i| strat.generate(&mut crate::test_runner::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }
}
