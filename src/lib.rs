//! # mttkrp-repro
//!
//! Umbrella crate for the reproduction of *"Load-Balanced Sparse MTTKRP on
//! GPUs"* (Nisa et al., IPDPS 2019). It re-exports the workspace crates so
//! examples and downstream users need a single dependency:
//!
//! * [`sptensor`] — COO sparse tensors, statistics, synthetic datasets, I/O.
//! * [`dense`] — small dense linear algebra used by CPD-ALS.
//! * [`tensor_formats`] — CSF, CSL, B-CSF, HB-CSF, F-COO, HiCOO.
//! * [`gpu_sim`] — the deterministic GPU execution-model simulator.
//! * [`mttkrp`] — MTTKRP kernels (CPU + simulated GPU) and the CPD-ALS driver.
//! * [`simprof`] — profiling/tracing: counters, spans, Chrome-trace and
//!   nvprof-style exporters, CPD run manifests.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use dense;
pub use gpu_sim;
pub use mttkrp;
pub use simprof;
pub use sptensor;
pub use tensor_formats;
