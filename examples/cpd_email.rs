//! CPD on an email-conversation tensor — the paper's introductory scenario
//! ("the attributes of an email conversation (subject, author and time)
//! can be represented by the use of a tensor").
//!
//! An enron-like 4-D tensor (sender × receiver × word × time) is
//! synthesized, decomposed with CPD-ALS driven by the simulated-GPU HB-CSF
//! MTTKRP, and the discovered latent components are reported.
//!
//! ```text
//! cargo run --release --example cpd_email
//! ```

use mttkrp_repro::mttkrp::cpd::{cpd_als, CpdOptions};
use mttkrp_repro::mttkrp::gpu::{Executor, GpuContext, LaunchArgs};
use mttkrp_repro::sptensor::{mode_orientation, synth};
use mttkrp_repro::tensor_formats::{BcsfOptions, Hbcsf};

fn main() {
    let spec = synth::standin("enron").expect("built-in stand-in");
    let tensor = spec.generate(&synth::SynthConfig::default().with_nnz(40_000));
    println!(
        "email tensor (sender x receiver x word x time): {:?}, {} nonzeros",
        tensor.dims(),
        tensor.nnz()
    );

    // Pre-build one HB-CSF per mode (ALLMODE): CPD runs MTTKRP for every
    // mode each iteration, so the construction cost amortizes (paper
    // Figs. 9-10).
    let exec = Executor::new(GpuContext::default());
    let formats: Vec<Hbcsf> = (0..tensor.order())
        .map(|m| {
            let perm = mode_orientation(tensor.order(), m);
            Hbcsf::build(&tensor, &perm, BcsfOptions::default())
        })
        .collect();

    let opts = CpdOptions {
        rank: 8,
        max_iters: 12,
        tol: 1e-5,
        seed: 99,
    };
    let mut sim_seconds = 0.0f64;
    let result = cpd_als(&tensor, &opts, |factors, mode| {
        let run = exec
            .run(&formats[mode], &LaunchArgs::new(factors))
            .expect("valid launch")
            .run;
        sim_seconds += run.sim.time_s;
        run.y
    });

    println!("\nCPD-ALS (rank {}):", opts.rank);
    for (i, fit) in result.fits.iter().enumerate() {
        println!("  iter {:>2}: fit = {:.4}", i + 1, fit);
    }
    println!(
        "converged after {} iterations; {:.2} ms of simulated GPU MTTKRP",
        result.iterations,
        sim_seconds * 1e3
    );

    // The component weights rank the discovered conversation clusters.
    let mut weights: Vec<(usize, f32)> = result.lambda.iter().copied().enumerate().collect();
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop components by weight:");
    for (r, w) in weights.iter().take(4) {
        println!("  component {r}: weight {w:.3}");
    }
}
