//! Kernel shootout: run every GPU MTTKRP kernel on one dataset and print a
//! Table II-style comparison — the quickest way to see the paper's
//! load-balancing story end to end.
//!
//! ```text
//! cargo run --release --example kernel_shootout -- darpa
//! ```

use mttkrp_repro::mttkrp::gpu::{
    AnyFormat, BuildOptions, Executor, GpuContext, GpuRun, KernelKind, LaunchArgs,
};
use mttkrp_repro::mttkrp::reference::{self, random_factors};
use mttkrp_repro::sptensor::synth;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("darpa");
    let nnz: usize = args
        .get(1)
        .map(|s| s.parse().expect("nnz must be an integer"))
        .unwrap_or(200_000);

    let spec = synth::standin(name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{name}'");
        std::process::exit(2);
    });
    if spec.order() != 3 {
        eprintln!("kernel_shootout compares the 3-D kernels; pick a 3-D dataset");
        std::process::exit(2);
    }
    let t = spec.generate(&synth::SynthConfig::default().with_nnz(nnz));
    let rank = 32;
    let factors = random_factors(&t, rank, 7);
    let expected = reference::mttkrp(&t, &factors, 0);
    let ctx = GpuContext::default();
    let flops = 3.0 * t.nnz() as f64 * rank as f64;

    println!(
        "{name}: {:?}, {} nonzeros — mode-1 MTTKRP on simulated P100\n",
        t.dims(),
        t.nnz()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "kernel", "GFLOPs", "occup%", "sm-eff%", "L2-hit%", "atomics", "rel-err"
    );

    let exec = Executor::new(ctx);
    let contenders = [
        ("parti-coo (atomics)", KernelKind::Coo),
        ("f-coo (seg-scan)", KernelKind::Fcoo),
        ("gpu-csf (unsplit)", KernelKind::Csf),
        ("b-csf (fbr+slc split)", KernelKind::Bcsf),
        ("csl (packed warps)", KernelKind::Csl),
        ("hb-csf (hybrid)", KernelKind::Hbcsf),
    ];
    let runs: Vec<(&str, GpuRun)> = contenders
        .iter()
        .map(|&(label, kind)| {
            let format =
                AnyFormat::build(kind, &t, 0, &BuildOptions::default()).expect("valid build");
            let launched = exec
                .run(&format, &LaunchArgs::new(&factors))
                .expect("valid launch");
            (label, launched.run)
        })
        .collect();

    for (label, run) in runs {
        let gflops = flops / run.sim.time_s.max(1e-30) / 1e9;
        let err = run.y.rel_fro_diff(&expected);
        // f32 summation-order divergence grows with slice size; 1e-3
        // comfortably separates reordering noise from real bugs at 1M nnz.
        assert!(err < 1e-3, "{label} diverged from the reference: {err}");
        println!(
            "{:<22} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9} {:>8.1e}",
            label,
            gflops,
            run.sim.achieved_occupancy,
            run.sim.sm_efficiency,
            run.sim.l2_hit_rate,
            run.sim.atomic_ops,
            err
        );
    }
    println!("\nall kernels verified against the sequential reference.");
}
