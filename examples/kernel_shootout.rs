//! Kernel shootout: run every GPU MTTKRP kernel on one dataset and print a
//! Table II-style comparison — the quickest way to see the paper's
//! load-balancing story end to end.
//!
//! ```text
//! cargo run --release --example kernel_shootout -- darpa
//! ```

use mttkrp_repro::mttkrp::gpu::{self, GpuContext};
use mttkrp_repro::mttkrp::reference::{self, random_factors};
use mttkrp_repro::sptensor::synth;
use mttkrp_repro::tensor_formats::BcsfOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("darpa");
    let nnz: usize = args
        .get(1)
        .map(|s| s.parse().expect("nnz must be an integer"))
        .unwrap_or(200_000);

    let spec = synth::standin(name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{name}'");
        std::process::exit(2);
    });
    if spec.order() != 3 {
        eprintln!("kernel_shootout compares the 3-D kernels; pick a 3-D dataset");
        std::process::exit(2);
    }
    let t = spec.generate(&synth::SynthConfig::default().with_nnz(nnz));
    let rank = 32;
    let factors = random_factors(&t, rank, 7);
    let expected = reference::mttkrp(&t, &factors, 0);
    let ctx = GpuContext::default();
    let flops = 3.0 * t.nnz() as f64 * rank as f64;

    println!(
        "{name}: {:?}, {} nonzeros — mode-1 MTTKRP on simulated P100\n",
        t.dims(),
        t.nnz()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "kernel", "GFLOPs", "occup%", "sm-eff%", "L2-hit%", "atomics", "rel-err"
    );

    let runs: Vec<(&str, gpu::GpuRun)> = vec![
        (
            "parti-coo (atomics)",
            gpu::parti_coo::run(&ctx, &t, &factors, 0),
        ),
        (
            "f-coo (seg-scan)",
            gpu::fcoo::build_and_run(&ctx, &t, &factors, 0, gpu::fcoo::DEFAULT_THREADLEN),
        ),
        (
            "gpu-csf (unsplit)",
            gpu::csf::build_and_run(&ctx, &t, &factors, 0),
        ),
        (
            "b-csf (fbr+slc split)",
            gpu::bcsf::build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default()),
        ),
        (
            "csl (packed warps)",
            gpu::csl::build_and_run(&ctx, &t, &factors, 0),
        ),
        (
            "hb-csf (hybrid)",
            gpu::hbcsf::build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default()),
        ),
    ];

    for (label, run) in runs {
        let gflops = flops / run.sim.time_s.max(1e-30) / 1e9;
        let err = run.y.rel_fro_diff(&expected);
        // f32 summation-order divergence grows with slice size; 1e-3
        // comfortably separates reordering noise from real bugs at 1M nnz.
        assert!(err < 1e-3, "{label} diverged from the reference: {err}");
        println!(
            "{:<22} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9} {:>8.1e}",
            label,
            gflops,
            run.sim.achieved_occupancy,
            run.sim.sm_efficiency,
            run.sim.l2_hit_rate,
            run.sim.atomic_ops,
            err
        );
    }
    println!("\nall kernels verified against the sequential reference.");
}
