//! Load-balance visualization: ASCII Gantt charts of the simulated SM
//! schedule, before and after B-CSF's splitting — the paper's Figure 2
//! ("construction phases of B-CSF") rendered from real schedules instead
//! of a hand diagram.
//!
//! ```text
//! cargo run --release --example balance_viz -- darpa
//! ```
//! Each row is one SM; time runs left to right up to the kernel's
//! makespan; darkness tracks the SM's busy fraction in that time window.
//! The same two schedules are also written to `balance_trace.json` in
//! Chrome-trace format (one process per variant) for Perfetto.

use mttkrp_repro::gpu_sim::{append_chrome_trace, simulate_profiled, Timeline};
use mttkrp_repro::mttkrp::gpu::{GpuContext, MttkrpKernel};
use mttkrp_repro::mttkrp::reference::random_factors;
use mttkrp_repro::simprof::{ChromeTrace, Registry};
use mttkrp_repro::sptensor::{mode_orientation, synth};
use mttkrp_repro::tensor_formats::{Bcsf, BcsfOptions};

const WIDTH: usize = 100;
const SHOW_SMS: usize = 14; // render a subset of the 56 SMs

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("darpa");
    let nnz: usize = args
        .get(1)
        .map(|s| s.parse().expect("nnz must be an integer"))
        .unwrap_or(60_000);

    let spec = synth::standin(name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{name}'");
        std::process::exit(2);
    });
    let t = spec.generate(&synth::SynthConfig::default().with_nnz(nnz));
    let factors = random_factors(&t, 32, 7);
    let ctx = GpuContext::default();
    let perm = mode_orientation(t.order(), 0);

    println!(
        "{name}: {:?}, {} nonzeros — SM schedules on the simulated P100\n",
        t.dims(),
        t.nnz()
    );

    let registry = Registry::disabled();
    let mut trace = ChromeTrace::new();
    let mut makespans = Vec::new();
    for (pid, (label, opts)) in [
        ("GPU-CSF (no splitting)", BcsfOptions::unsplit()),
        ("B-CSF (fbr-split + slc-split)", BcsfOptions::default()),
    ]
    .into_iter()
    .enumerate()
    {
        let bcsf = Bcsf::build(&t, &perm, opts);
        let launch = bcsf.capture(&ctx, factors[0].cols()).into_launch();
        let (sim, profile) = simulate_profiled(&ctx.device, &ctx.cost, &launch, &registry);
        println!(
            "— {label}: makespan {:.0}k cycles, sm_efficiency {:.0}%, {} blocks",
            sim.makespan_cycles / 1e3,
            sim.sm_efficiency,
            sim.num_blocks
        );
        render(&profile.timeline, sim.makespan_cycles);
        println!();
        makespans.push(sim.makespan_cycles);
        append_chrome_trace(&mut trace, pid as u64, &sim, &profile);
        trace.name_process(pid as u64, label); // variant label over the kernel name
    }
    println!(
        "splitting shortened the makespan {:.1}x",
        makespans[0] / makespans[1].max(1.0)
    );

    let out = std::path::Path::new("balance_trace.json");
    trace.write_to(out).expect("cannot write trace");
    println!("wrote {} (open in https://ui.perfetto.dev)", out.display());
}

/// Renders the [`SHOW_SMS`] busiest SMs as time rows (the busiest first,
/// so the straggler that determines the makespan is always visible).
fn render(timeline: &Timeline, makespan: f64) {
    let shades = [' ', '.', ':', '+', '#'];
    let mut by_busy: Vec<usize> = (0..timeline.spans.len()).collect();
    by_busy.sort_by(|&a, &b| {
        timeline
            .busy_fraction(b, makespan)
            .partial_cmp(&timeline.busy_fraction(a, makespan))
            .unwrap()
    });
    for &sm in by_busy.iter().take(SHOW_SMS) {
        let mut row = String::with_capacity(WIDTH + 8);
        for w in 0..WIDTH {
            let t0 = makespan * w as f64 / WIDTH as f64;
            let t1 = makespan * (w + 1) as f64 / WIDTH as f64;
            let f = timeline.busy_in_window(sm, t0, t1);
            let idx = ((f * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            row.push(shades[idx]);
        }
        println!("SM{sm:>2} |{row}|");
    }
    if timeline.spans.len() > SHOW_SMS {
        println!("      ... ({} more SMs)", timeline.spans.len() - SHOW_SMS);
    }
}
