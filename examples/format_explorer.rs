//! Format explorer: inspect a dataset's nonzero distribution, HB-CSF
//! classification, and per-format index storage — the quantities that
//! decide which kernel wins in the paper.
//!
//! ```text
//! cargo run --release --example format_explorer -- darpa
//! cargo run --release --example format_explorer -- fr_m 500000
//! ```
//! (defaults: dataset `deli`, 100k nonzeros; any Table III abbreviation
//! works: deli nell1 nell2 flick-3d fr_m fr_s darpa nips enron ch-cr
//! flick-4d uber)

use mttkrp_repro::sptensor::stats::ModeStats;
use mttkrp_repro::sptensor::{mode_orientation, synth};
use mttkrp_repro::tensor_formats::{BcsfOptions, Csf, Csl, Fcoo, Hbcsf, Hicoo, IndexBytes};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("deli");
    let nnz: usize = args
        .get(1)
        .map(|s| s.parse().expect("nnz must be an integer"))
        .unwrap_or(100_000);

    let spec = synth::standin(name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{name}'; see Table III for names");
        std::process::exit(2);
    });
    let t = spec.generate(&synth::SynthConfig::default().with_nnz(nnz));
    println!(
        "{name}: order {}, dims {:?}, {} nonzeros, density {:.2e}",
        t.order(),
        t.dims(),
        t.nnz(),
        t.density()
    );

    println!("\nper-mode distribution (the paper's Table II columns):");
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "mode", "slices", "fibers", "nnz/slc dev", "nnz/fbr dev", "1-nnz slc%", "1-nnz fbr%"
    );
    for mode in 0..t.order() {
        let s = ModeStats::compute(&t, mode);
        println!(
            "{:>5} {:>10} {:>10} {:>12.1} {:>12.2} {:>10.1} {:>10.1}",
            mode + 1,
            s.num_slices,
            s.num_fibers,
            s.nnz_per_slice.stdev,
            s.nnz_per_fiber.stdev,
            100.0 * s.singleton_slice_fraction,
            100.0 * s.singleton_fiber_fraction,
        );
    }

    // Log-bucketed histogram of slice volumes — the shape that decides
    // between the three HB-CSF classes.
    {
        let perm = mode_orientation(t.order(), 0);
        let mut sorted = t.clone();
        sorted.sort_by_perm(&perm);
        let volumes = mttkrp_repro::sptensor::stats::group_sizes(&sorted, &perm, 1);
        println!("\nmode-1 slice-volume histogram (log2 buckets):");
        let hist = mttkrp_repro::sptensor::stats::Log2Histogram::of(&volumes);
        print!("{}", hist.render(50));
    }

    let perm = mode_orientation(t.order(), 0);
    let hb = Hbcsf::build(&t, &perm, BcsfOptions::default());
    let (coo, csl, bcsf) = hb.group_nnz();
    println!("\nHB-CSF classification (mode 1, Algorithm 5):");
    println!(
        "  COO group   : {:>9} nonzeros ({:.1}%)",
        coo,
        pct(coo, t.nnz())
    );
    println!(
        "  CSL group   : {:>9} nonzeros ({:.1}%)",
        csl,
        pct(csl, t.nnz())
    );
    println!(
        "  B-CSF group : {:>9} nonzeros ({:.1}%)",
        bcsf,
        pct(bcsf, t.nnz())
    );
    println!("  thread blocks for B-CSF group: {}", hb.bcsf.num_blocks());

    println!("\nindex storage, mode-1 representation (Fig. 16's quantities):");
    let csf = Csf::build(&t, &perm);
    let rows: Vec<(&str, u64)> = vec![
        ("COO", t.index_bytes()),
        ("CSF", csf.index_bytes()),
        ("CSL", Csl::build(&t, &perm).index_bytes()),
        ("F-COO", Fcoo::build(&t, &perm, 8).index_bytes()),
        (
            "HiCOO",
            Hicoo::build(&t, Hicoo::DEFAULT_BLOCK_BITS).index_bytes(),
        ),
        ("HB-CSF", hb.index_bytes()),
    ];
    for (fmt, bytes) in rows {
        println!(
            "  {:<7}: {:>10} bytes ({:.2} bytes/nnz)",
            fmt,
            bytes,
            bytes as f64 / t.nnz() as f64
        );
    }
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}
