//! Computational phenotyping with non-negative CPD — the paper's first
//! motivating application ("healthcare analytics": Limestone/Marble derive
//! candidate phenotypes from patient × diagnosis × medication tensors via
//! sparse non-negative tensor factorization).
//!
//! A synthetic EHR-like tensor is planted with ground-truth "phenotypes"
//! (co-occurring diagnosis/medication clusters across patient groups),
//! then recovered with multiplicative-update CPD driven by the simulated-
//! GPU HB-CSF MTTKRP.
//!
//! ```text
//! cargo run --release --example phenotyping
//! ```

use mttkrp_repro::mttkrp::cpd::{cpd_als_nonneg, CpdOptions};
use mttkrp_repro::mttkrp::gpu::{Executor, GpuContext, LaunchArgs};
use mttkrp_repro::sptensor::{mode_orientation, CooTensor};
use mttkrp_repro::tensor_formats::{BcsfOptions, Hbcsf};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const PATIENTS: u32 = 400;
const DIAGNOSES: u32 = 120;
const MEDICATIONS: u32 = 80;
const PHENOTYPES: usize = 4;

fn main() {
    let (tensor, truth) = synthesize_ehr(42);
    println!(
        "EHR tensor (patient x diagnosis x medication): {:?}, {} events",
        tensor.dims(),
        tensor.nnz()
    );

    let exec = Executor::new(GpuContext::default());
    let formats: Vec<Hbcsf> = (0..3)
        .map(|m| Hbcsf::build(&tensor, &mode_orientation(3, m), BcsfOptions::default()))
        .collect();
    let opts = CpdOptions {
        rank: PHENOTYPES,
        max_iters: 60,
        tol: 1e-6,
        seed: 7,
    };
    let result = cpd_als_nonneg(&tensor, &opts, |factors, mode| {
        exec.run(&formats[mode], &LaunchArgs::new(factors))
            .expect("valid launch")
            .run
            .y
    });
    println!(
        "non-negative CPD: fit {:.3} after {} iterations\n",
        result.final_fit(),
        result.iterations
    );

    // Match each learned component to its best ground-truth phenotype by
    // diagnosis-factor cosine similarity.
    let diag = &result.factors[1];
    let mut hits = 0;
    for r in 0..PHENOTYPES {
        let learned: Vec<f32> = (0..DIAGNOSES as usize).map(|i| diag.get(i, r)).collect();
        let (best, score) = truth
            .iter()
            .enumerate()
            .map(|(p, t)| (p, cosine(&learned, &t.diag_weights)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!(
            "component {r}: matches phenotype {best} (cosine {score:.3}); top diagnoses {:?}",
            top_k(&learned, 3)
        );
        if score > 0.7 {
            hits += 1;
        }
    }
    assert!(
        hits >= PHENOTYPES - 1,
        "expected to recover at least {} of {PHENOTYPES} phenotypes, got {hits}",
        PHENOTYPES - 1
    );
    println!("\nrecovered {hits}/{PHENOTYPES} planted phenotypes.");
}

struct Phenotype {
    diags: Vec<u32>,
    meds: Vec<u32>,
    diag_weights: Vec<f32>,
}

/// Plants [`PHENOTYPES`] diagnosis/medication clusters; each patient
/// expresses 1-2 of them plus noise events.
fn synthesize_ehr(seed: u64) -> (CooTensor, Vec<Phenotype>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut truth = Vec::new();
    for p in 0..PHENOTYPES as u32 {
        // Disjoint clusters keep the example's evaluation crisp.
        let diags: Vec<u32> = (0..12).map(|i| (p * 30 + i) % DIAGNOSES).collect();
        let meds: Vec<u32> = (0..8).map(|i| (p * 20 + i) % MEDICATIONS).collect();
        let mut diag_weights = vec![0.0f32; DIAGNOSES as usize];
        for &d in &diags {
            diag_weights[d as usize] = 1.0;
        }
        truth.push(Phenotype {
            diags,
            meds,
            diag_weights,
        });
    }

    let mut t = CooTensor::new(vec![PATIENTS, DIAGNOSES, MEDICATIONS]);
    for patient in 0..PATIENTS {
        let k = 1 + (rng.gen::<u32>() % 2) as usize;
        for _ in 0..k {
            let ph = &truth[rng.gen_range(0..PHENOTYPES)];
            for _ in 0..20 {
                let d = ph.diags[rng.gen_range(0..ph.diags.len())];
                let m = ph.meds[rng.gen_range(0..ph.meds.len())];
                t.push(&[patient, d, m], 1.0);
            }
        }
        // Background noise.
        for _ in 0..3 {
            t.push(
                &[
                    patient,
                    rng.gen_range(0..DIAGNOSES),
                    rng.gen_range(0..MEDICATIONS),
                ],
                0.3,
            );
        }
    }
    t.sort_by_perm(&mttkrp_repro::sptensor::identity_perm(3));
    t.fold_duplicates();
    (t, truth)
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / na / nb
    }
}

fn top_k(v: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
    idx.truncate(k);
    idx
}
