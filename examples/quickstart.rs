//! Quickstart: build a sparse tensor, convert it to HB-CSF, run the
//! load-balanced MTTKRP on the simulated P100, and check the result
//! against the sequential reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mttkrp_repro::mttkrp::gpu::{Executor, GpuContext, LaunchArgs};
use mttkrp_repro::mttkrp::{mttkrp_reference, reference::random_factors};
use mttkrp_repro::sptensor::{mode_orientation, synth};
use mttkrp_repro::tensor_formats::{BcsfOptions, Hbcsf, IndexBytes};

fn main() {
    // 1. A synthetic power-law tensor (or ingest your own:
    //    `sptensor::ingest(TnsSource::new(reader), &IngestOptions::new())`,
    //    or `SpilledTensor::ingest` for files larger than memory).
    let spec = synth::standin("deli").expect("built-in stand-in");
    let tensor = spec.generate(&synth::SynthConfig::default().with_nnz(100_000));
    println!(
        "tensor: {:?}, {} nonzeros, density {:.2e}",
        tensor.dims(),
        tensor.nnz(),
        tensor.density()
    );

    // 2. Factor matrices for a rank-32 decomposition.
    let rank = 32;
    let factors = random_factors(&tensor, rank, 42);

    // 3. Build the paper's HB-CSF format for a mode-0 MTTKRP.
    let perm = mode_orientation(tensor.order(), 0);
    let hb = Hbcsf::build(&tensor, &perm, BcsfOptions::default());
    let (coo, csl, bcsf) = hb.group_nnz();
    println!(
        "HB-CSF groups: {coo} nonzeros in COO, {csl} in CSL, {bcsf} in B-CSF \
         ({} thread blocks, {} bytes of indices)",
        hb.bcsf.num_blocks(),
        hb.index_bytes()
    );

    // 4. Run the composite kernel on the simulated Tesla P100.
    let exec = Executor::new(GpuContext::default());
    let run = exec
        .run(&hb, &LaunchArgs::new(&factors))
        .expect("valid launch")
        .run;
    println!(
        "simulated: {:.2} ms, sm_efficiency {:.0}%, occupancy {:.0}%, L2 hit {:.0}%",
        run.sim.time_s * 1e3,
        run.sim.sm_efficiency,
        run.sim.achieved_occupancy,
        run.sim.l2_hit_rate
    );

    // 5. Verify against the sequential COO reference (Algorithm 2).
    let expected = mttkrp_reference(&tensor, &factors, 0);
    let err = run.y.rel_fro_diff(&expected);
    println!("relative error vs reference: {err:.2e}");
    assert!(err < 1e-4, "kernel output diverged from the reference");
    println!("OK");
}
