//! The chaos runner: drive the service under composed faults, check
//! the invariants, and exercise the crash-restart cycle.

use std::path::Path;
use std::sync::Arc;

use gpu_sim::{DeviceMemory, FaultPlan, FaultSpecError};
use mttkrp::gpu::GpuContext;
use mttkrp::{
    cpd_als_resilient, cpd_als_resilient_durable, CheckpointError, CpdOptions, DurableOptions,
    ResilienceOptions,
};
use serve::{Service, ServiceConfig, Workload, WorkloadConfig};
use simprof::{RingSink, Telemetry, TelemetrySink};
use sptensor::synth::uniform_random;

use crate::report::{ChaosReport, CrashCycleReport, ScheduleReport};
use crate::schedule::{ChaosConfig, ChaosSchedule};

/// Why the harness itself (not an invariant) failed.
#[derive(Debug)]
pub enum ChaosError {
    /// A fault spec failed to parse.
    Spec(FaultSpecError),
    /// Durable checkpoint I/O failed outright (disk full, permissions —
    /// never an injected crash; those are part of the experiment).
    Checkpoint(CheckpointError),
    /// Report serialization failed.
    Json(String),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Spec(e) => write!(f, "fault spec: {e}"),
            ChaosError::Checkpoint(e) => write!(f, "checkpoint store: {e}"),
            ChaosError::Json(e) => write!(f, "report serialization: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<FaultSpecError> for ChaosError {
    fn from(e: FaultSpecError) -> Self {
        ChaosError::Spec(e)
    }
}

impl From<CheckpointError> for ChaosError {
    fn from(e: CheckpointError) -> Self {
        ChaosError::Checkpoint(e)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One measured pass of one schedule.
struct Pass {
    json: String,
    events: Vec<String>,
    row: ScheduleReport,
}

/// Runs the whole harness: every schedule twice (for the determinism
/// invariant) plus the crash-restart cycle. `scratch` holds checkpoint
/// files; each pass cleans its own namespace, so a reused directory
/// never perturbs results. Invariant violations land in the report —
/// only harness-level failures (unparseable spec, real I/O errors)
/// return `Err`.
pub fn run_chaos(cfg: &ChaosConfig, scratch: &Path) -> Result<ChaosReport, ChaosError> {
    let schedules = ChaosSchedule::generate(cfg)?;
    let mut rows = Vec::with_capacity(schedules.len());
    let mut violations = Vec::new();

    for sched in &schedules {
        let a = run_pass(cfg, sched, scratch, "a")?;
        let b = run_pass(cfg, sched, scratch, "b")?;
        let mut row = a.row;
        row.deterministic = a.json == b.json && a.events == b.events;
        if !row.deterministic {
            row.violations.push(format!(
                "{}: same-seed passes diverged (report {} vs {} bytes, \
                 events {} vs {} lines)",
                sched.name,
                a.json.len(),
                b.json.len(),
                a.events.len(),
                b.events.len()
            ));
        }
        violations.extend(row.violations.iter().cloned());
        rows.push(row);
    }

    let cycle = crash_restart_cycle(&scratch.join("crash-cycle"), cfg.seed)?;
    if !cycle.within_tol {
        violations.push(format!(
            "crash cycle: restarted fit {:.17} diverged from uninterrupted {:.17} \
             (delta {:.3e})",
            cycle.fit_restarted, cycle.fit_uninterrupted, cycle.fit_delta
        ));
    }

    let mut coverage_gaps = Vec::new();
    if rows
        .iter()
        .map(|r| r.link_degrades + r.link_losses)
        .sum::<u64>()
        == 0
    {
        coverage_gaps.push("no interconnect fault ever fired".to_string());
    }
    if rows.iter().map(|r| r.checkpoint_crashes).sum::<u64>() + cycle.crashes == 0 {
        coverage_gaps.push("no mid-write crash ever fired".to_string());
    }
    if cycle.resumes == 0 && rows.iter().all(|r| r.checkpoint_resumes == 0) {
        coverage_gaps.push("no warm restart ever happened".to_string());
    }

    Ok(ChaosReport {
        seed: cfg.seed,
        schedules: rows,
        crash_cycle: cycle,
        violations,
        coverage_gaps,
    })
}

/// Drives one full service workload under `sched` and checks invariants
/// 1–3 (terminal states, standalone verification, ledger balance).
/// Invariant 4 (determinism) is the caller's diff of two passes.
fn run_pass(
    cfg: &ChaosConfig,
    sched: &ChaosSchedule,
    scratch: &Path,
    pass: &str,
) -> Result<Pass, ChaosError> {
    let plan = FaultPlan::parse(&sched.spec, sched.fault_seed)?;
    let ring = Arc::new(RingSink::new(1 << 16));
    let sink: Arc<dyn TelemetrySink> = Arc::clone(&ring) as Arc<dyn TelemetrySink>;
    let mem = Arc::new(DeviceMemory::unlimited());
    let ctx = GpuContext::tiny()
        .with_profiling()
        .with_faults(plan)
        .with_memory(Arc::clone(&mem))
        .with_events(Arc::new(Telemetry::with_sink(sink)));

    let scfg = ServiceConfig {
        devices: cfg.devices,
        checkpoint_dir: Some(scratch.join(&sched.name).join(pass)),
        ..ServiceConfig::default()
    };
    let Workload { tensors, jobs } = Workload::generate(&WorkloadConfig {
        seed: sched.workload_seed,
        jobs: cfg.jobs,
        ..WorkloadConfig::default()
    });
    let mut service = Service::new(scfg, ctx);
    for (name, t) in tensors {
        service.register(&name, t);
    }
    let report = service.run(&jobs);

    let mut violations = Vec::new();

    // Invariant 1: every job reaches a typed terminal state and the
    // aggregate counts reconcile.
    if report.jobs.len() != jobs.len() {
        violations.push(format!(
            "{}: {} jobs submitted but {} accounted for",
            sched.name,
            jobs.len(),
            report.jobs.len()
        ));
    }
    let r = &report.record;
    if r.completed + r.rejected + r.shed != r.submitted {
        violations.push(format!(
            "{}: outcome counts don't reconcile ({} completed + {} rejected + \
             {} shed != {} submitted)",
            sched.name, r.completed, r.rejected, r.shed, r.submitted
        ));
    }
    for j in &report.jobs {
        match j.outcome.as_str() {
            "completed" | "rejected" | "shed" => {}
            other => violations.push(format!(
                "{}: job {} ended in untyped state '{other}'",
                sched.name, j.id
            )),
        }
    }

    // Invariant 2: every completed job re-verifies standalone.
    let verified = match report.verify(&service, &jobs, cfg.verify_tol) {
        Ok(n) => n as u64,
        Err(e) => {
            violations.push(format!("{}: verification failed: {e}", sched.name));
            0
        }
    };

    // Invariant 3: the memory ledger balances to zero.
    let leaked = mem.ledger().iter().filter(|a| !a.freed).count();
    let ledger_balanced = mem.in_use() == 0 && leaked == 0;
    if !ledger_balanced {
        violations.push(format!(
            "{}: memory ledger unbalanced ({} B in use, {} allocations never freed)",
            sched.name,
            mem.in_use(),
            leaked
        ));
    }

    let reg = &service.ctx().registry;
    let json = report
        .to_json_string()
        .map_err(|e| ChaosError::Json(e.to_string()))?;
    let events = ring.lines();
    let row = ScheduleReport {
        name: sched.name.clone(),
        spec: sched.spec.clone(),
        submitted: r.submitted,
        completed: r.completed,
        rejected: r.rejected,
        shed: r.shed,
        retries: r.retries,
        device_losses: r.device_losses,
        link_degrades: reg.counter("sharded.link_degrades"),
        link_losses: reg.counter("sharded.link_losses"),
        checkpoint_writes: reg.counter("serve.checkpoint.writes"),
        checkpoint_crashes: reg.counter("serve.checkpoint.crashes"),
        checkpoint_resumes: reg.counter("serve.checkpoint.resumes"),
        torn_skipped: reg.counter("serve.checkpoint.torn_skipped"),
        events: events.len() as u64,
        verified,
        deterministic: true, // the caller diffs two passes and fills this
        ledger_balanced,
        violations,
    };
    Ok(Pass { json, events, row })
}

/// The durable-checkpoint torture test: a CPD-ALS run under a hostile
/// `crash:0.6` plan with `halt_on_crash` — every injected mid-write
/// crash kills the "process", leaving a torn file — restarted until it
/// completes. The warm-restarted trajectory must reach the
/// uninterrupted same-seed run's final fit within 1e-9 (it is
/// bit-identical in practice: resume restores the exact factor state
/// and ALS is deterministic).
pub fn crash_restart_cycle(dir: &Path, seed: u64) -> Result<CrashCycleReport, ChaosError> {
    let t = uniform_random(&[10, 12, 14], 300, splitmix64(seed));
    let opts = CpdOptions {
        rank: 3,
        max_iters: 8,
        tol: 0.0,
        seed: splitmix64(seed ^ 0x5eed),
    };
    let ropts = ResilienceOptions::default();

    let (clean, _) = cpd_als_resilient(
        &t,
        &opts,
        &ropts,
        |factors, mode| mttkrp::reference::mttkrp(&t, factors, mode),
        None,
        None,
    );

    let ctx = GpuContext::tiny().with_faults(FaultPlan::parse("crash:0.6", seed)?);
    let _ = std::fs::remove_dir_all(dir);
    let dopts = DurableOptions {
        dir: dir.to_path_buf(),
        label: "crash-cycle".to_string(),
        resume: true,
        halt_on_crash: true,
    };

    let mut restarts = 0u64;
    let mut crashes = 0u64;
    let mut torn_skipped = 0u64;
    let mut resumes = 0u64;
    let mut fit_restarted = f64::NAN;
    // Crashed sequence numbers are never reused, so every restart burns
    // through fresh draws and the loop terminates with probability 1;
    // the bound only guards against a pathological plan.
    while restarts < 64 {
        restarts += 1;
        let (res, _stats, rec) = cpd_als_resilient_durable(
            &t,
            &opts,
            &ropts,
            &dopts,
            |factors, mode| mttkrp::reference::mttkrp(&t, factors, mode),
            None,
            Some(&ctx),
        )?;
        crashes += rec.crashes;
        torn_skipped += rec.torn_skipped;
        resumes += rec.resumes;
        if !rec.halted {
            fit_restarted = res.final_fit();
            break;
        }
    }

    let fit_uninterrupted = clean.final_fit();
    let fit_delta = (fit_restarted - fit_uninterrupted).abs();
    Ok(CrashCycleReport {
        restarts,
        crashes,
        torn_skipped,
        resumes,
        fit_uninterrupted,
        fit_restarted,
        fit_delta,
        within_tol: fit_delta.is_finite() && fit_delta <= 1e-9,
    })
}
