//! Seeded chaos schedules.
//!
//! A schedule is one composed fault spec plus the seeds that steer it:
//! the fault-draw seed and the workload seed both chain from the
//! harness seed, so one `u64` reproduces the entire chaos batch. Every
//! schedule composes at least three fault kinds and always includes one
//! interconnect fault and a `crash` rate — the two classes this harness
//! exists to exercise against everything older.

use gpu_sim::{FaultPlan, FaultSpecError};

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Knobs of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: schedules, fault draws, and workloads all chain
    /// from it.
    pub seed: u64,
    /// Schedules to generate and run.
    pub schedules: usize,
    /// Jobs per schedule's synthetic workload.
    pub jobs: usize,
    /// Devices in each schedule's service grid.
    pub devices: usize,
    /// Relative tolerance for standalone re-verification.
    pub verify_tol: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            schedules: 3,
            jobs: 12,
            devices: 4,
            verify_tol: 1e-9,
        }
    }
}

/// One generated schedule: a parseable composed fault spec plus seeds.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaosSchedule {
    /// Stable name (`schedule-0`, `schedule-1`, …) used for checkpoint
    /// namespaces and report rows.
    pub name: String,
    /// The composed spec, in [`FaultPlan::parse`] grammar.
    pub spec: String,
    /// Seed the fault plan draws from.
    pub fault_seed: u64,
    /// Seed the synthetic workload derives from.
    pub workload_seed: u64,
}

/// The rotating pool of non-mandatory fault kinds. Two per schedule, so
/// three default schedules cover all six on top of the mandatory link
/// and crash faults.
const EXTRA_POOL: [&str; 6] = [
    "bitflip",
    "abort",
    "straggler",
    "oom",
    "frag",
    "device-loss",
];

impl ChaosSchedule {
    /// Generates `cfg.schedules` schedules deterministically from
    /// `cfg.seed`. Every spec is validated through [`FaultPlan::parse`]
    /// before it is returned, so a schedule that reaches the runner
    /// cannot fail to parse.
    pub fn generate(cfg: &ChaosConfig) -> Result<Vec<ChaosSchedule>, FaultSpecError> {
        let mut out = Vec::with_capacity(cfg.schedules);
        for i in 0..cfg.schedules {
            let mut state = splitmix64(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut next = || {
                state = splitmix64(state);
                state
            };

            let mut parts: Vec<String> = Vec::with_capacity(4);
            for k in 0..2 {
                let kind = EXTRA_POOL[(i * 2 + k) % EXTRA_POOL.len()];
                let rate = match kind {
                    "bitflip" => 0.001 + u01(next()) * 0.004,
                    "abort" => 0.002 + u01(next()) * 0.008,
                    "straggler" => 0.01 + u01(next()) * 0.04,
                    "oom" => 0.01 + u01(next()) * 0.04,
                    "frag" => 0.05 + u01(next()) * 0.15,
                    _ => 0.02 + u01(next()) * 0.08, // device-loss
                };
                parts.push(format!("{kind}:{rate:.4}"));
            }
            // The mandatory interconnect fault, alternating flavor so a
            // default batch exercises both the repricing and the
            // single-device-fallback paths.
            if i % 2 == 0 {
                let rate = 0.2 + u01(next()) * 0.3;
                let factor = 2.0 + u01(next()) * 6.0;
                parts.push(format!("link-degrade:{rate:.4}:{factor:.2}"));
            } else {
                parts.push(format!("link-loss:{:.4}", 0.1 + u01(next()) * 0.2));
            }
            // The mandatory mid-write checkpoint crash.
            parts.push(format!("crash:{:.4}", 0.2 + u01(next()) * 0.3));

            let spec = parts.join(",");
            let fault_seed = next();
            // Validate now; the runner can then treat specs as trusted.
            FaultPlan::parse(&spec, fault_seed)?;
            out.push(ChaosSchedule {
                name: format!("schedule-{i}"),
                spec,
                fault_seed,
                workload_seed: next(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_composed() {
        let cfg = ChaosConfig::default();
        let a = ChaosSchedule::generate(&cfg).unwrap();
        let b = ChaosSchedule::generate(&cfg).unwrap();
        assert_eq!(a.len(), cfg.schedules);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.fault_seed, y.fault_seed);
            assert_eq!(x.workload_seed, y.workload_seed);
        }
        for s in &a {
            // ≥3 composed kinds, always one link fault and one crash.
            assert!(s.spec.split(',').count() >= 3, "{}", s.spec);
            assert!(s.spec.contains("link-"), "{}", s.spec);
            assert!(s.spec.contains("crash:"), "{}", s.spec);
            let plan = FaultPlan::parse(&s.spec, s.fault_seed).unwrap();
            assert!(plan.is_active());
            assert!(plan.has_link_faults());
            assert!(plan.has_crash_faults());
        }
    }

    #[test]
    fn default_batch_covers_both_link_flavors_and_all_extras() {
        let a = ChaosSchedule::generate(&ChaosConfig::default()).unwrap();
        let joined = a
            .iter()
            .map(|s| s.spec.as_str())
            .collect::<Vec<_>>()
            .join(";");
        assert!(joined.contains("link-degrade:"));
        assert!(joined.contains("link-loss:"));
        for kind in EXTRA_POOL {
            assert!(joined.contains(kind), "{kind} missing from {joined}");
        }
    }

    #[test]
    fn different_seeds_steer_the_specs() {
        let a = ChaosSchedule::generate(&ChaosConfig::default()).unwrap();
        let b = ChaosSchedule::generate(&ChaosConfig {
            seed: 0xBEEF,
            ..ChaosConfig::default()
        })
        .unwrap();
        assert!(a.iter().zip(&b).any(|(x, y)| x.spec != y.spec));
    }
}
