//! simchaos: the composed-fault chaos harness.
//!
//! Every fault class in the stack — execution (`bitflip`/`abort`/
//! `straggler`), memory (`oom`/`frag`), whole devices (`device-loss`),
//! interconnect links (`link-degrade`/`link-loss`), and mid-write
//! checkpoint crashes (`crash`) — composes through one seeded
//! [`gpu_sim::FaultPlan`]. This crate turns that composition into a
//! harness: generate a batch of [`ChaosSchedule`]s from one seed, drive
//! a full multi-tenant [`serve::Service`] workload under each, and check
//! the invariants that define "survived":
//!
//! 1. **Typed terminal states** — every submitted job ends `completed`,
//!    `rejected`, or `shed`; the aggregate counts reconcile.
//! 2. **Verification** — every completed job's check value reproduces
//!    standalone within 1e-9 relative, crashes and retries included.
//! 3. **Ledger balance** — the [`gpu_sim::DeviceMemory`] ledger ends
//!    with zero bytes in use and every allocation freed.
//! 4. **Determinism** — two same-seed passes produce byte-identical
//!    report JSON and telemetry event streams.
//!
//! Alongside the service runs, [`crash_restart_cycle`] exercises the
//! durable-checkpoint path the hard way: `halt_on_crash` treats every
//! injected mid-write crash as process death, and the harness restarts
//! until the run completes — proving the warm-restarted trajectory
//! reaches the uninterrupted run's final fit exactly. See DESIGN.md §16.
//!
//! Nothing in a [`ChaosReport`] depends on wall time or filesystem
//! paths, so reports are comparable byte for byte across machines.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]

pub mod report;
pub mod run;
pub mod schedule;

pub use report::{ChaosReport, CrashCycleReport, ScheduleReport};
pub use run::{crash_restart_cycle, run_chaos, ChaosError};
pub use schedule::{ChaosConfig, ChaosSchedule};
