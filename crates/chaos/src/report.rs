//! The deterministic chaos report.
//!
//! One [`ChaosReport`] per harness run: a row per schedule, the
//! crash-restart cycle's outcome, and the flat list of invariant
//! violations (empty = the run survived). Nothing here carries wall
//! time or filesystem paths, so same-seed reports are byte-identical —
//! the `chaos-smoke` CI job diffs two of them to prove it.

/// Aggregated outcome of one schedule's double run (pass "a" measured,
/// pass "b" only compared for determinism).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScheduleReport {
    pub name: String,
    /// The composed fault spec the schedule ran under.
    pub spec: String,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub shed: u64,
    pub retries: u64,
    pub device_losses: u64,
    /// Interconnect links repriced by `link-degrade` draws.
    pub link_degrades: u64,
    /// Interconnect links dropped by `link-loss` draws (single-device
    /// fallbacks).
    pub link_losses: u64,
    /// Durable checkpoint files written atomically.
    pub checkpoint_writes: u64,
    /// Injected mid-write crashes (torn files left on disk).
    pub checkpoint_crashes: u64,
    /// Warm restarts from a valid checkpoint.
    pub checkpoint_resumes: u64,
    /// Torn/corrupt files the resume scan skipped.
    pub torn_skipped: u64,
    /// Telemetry lines the run emitted.
    pub events: u64,
    /// Completed jobs that re-verified standalone.
    pub verified: u64,
    /// Same-seed passes produced byte-identical reports and events.
    pub deterministic: bool,
    /// The memory ledger balanced to zero with every allocation freed.
    pub ledger_balanced: bool,
    /// Invariant violations this schedule produced (empty = green).
    pub violations: Vec<String>,
}

/// Outcome of the crash-restart cycle: durable checkpointing with
/// `halt_on_crash`, restarted until the run completes.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CrashCycleReport {
    /// Process starts it took to finish (1 = never crashed).
    pub restarts: u64,
    /// Injected mid-write crashes across all starts.
    pub crashes: u64,
    /// Torn files skipped by resume scans.
    pub torn_skipped: u64,
    /// Successful warm restarts from a valid checkpoint.
    pub resumes: u64,
    /// Final fit of the uninterrupted same-seed run.
    pub fit_uninterrupted: f64,
    /// Final fit after the crash-restart cycle.
    pub fit_restarted: f64,
    /// `|fit_restarted - fit_uninterrupted|`.
    pub fit_delta: f64,
    /// Whether the delta is within 1e-9 (the resumed trajectory is in
    /// fact bit-identical on clean backends, so this is exact equality
    /// in practice).
    pub within_tol: bool,
}

/// Everything one chaos harness run produced.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaosReport {
    /// The harness master seed.
    pub seed: u64,
    pub schedules: Vec<ScheduleReport>,
    pub crash_cycle: CrashCycleReport,
    /// Every invariant violation across schedules and the crash cycle.
    pub violations: Vec<String>,
    /// Fault kinds the run demonstrably exercised but didn't need to —
    /// e.g. a seed whose draws never tore a file. Gaps don't fail
    /// invariants, but CI treats them as a failed smoke run.
    pub coverage_gaps: Vec<String>,
}

impl ChaosReport {
    /// Pretty JSON; byte-identical for same-seed runs.
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// All invariants green.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Green *and* every fault class actually fired.
    pub fn ok_with_coverage(&self) -> bool {
        self.ok() && self.coverage_gaps.is_empty()
    }
}
