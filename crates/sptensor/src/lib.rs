//! # sptensor — sparse tensor core
//!
//! This crate is the data substrate for the reproduction of
//! *"Load-Balanced Sparse MTTKRP on GPUs"* (Nisa et al., IPDPS 2019).
//! It provides:
//!
//! * [`CooTensor`] — the canonical order-`N` coordinate-format sparse tensor
//!   (32-bit indices, `f32` values, structure-of-arrays layout), including
//!   lexicographic sorting under a mode permutation and duplicate folding.
//! * [`stats`] — per-mode-orientation slice/fiber statistics: the quantities
//!   the paper's Table II reports (stdev of nonzeros per slice and per fiber)
//!   plus singleton-fiber/slice fractions that drive HB-CSF classification.
//! * [`synth`] — seeded synthetic generators, including scaled-down
//!   stand-ins for every dataset in the paper's Table III. Real FROSTT data
//!   can be substituted via [`io`].
//! * [`io`] — FROSTT `.tns` text format reader/writer.
//!
//! Indices are `u32` and values are `f32` throughout, matching the paper's
//! experimental setting ("we use 32 bit unsigned integers to store the
//! indices and 32 bit floats to store the values").

pub mod coo;
pub mod dims;
pub mod error;
pub mod io;
pub mod reorder;
pub mod source;
pub mod spill;
pub mod stats;
pub mod synth;

pub use coo::{CooTensor, Entry};
pub use dims::{identity_perm, mode_orientation, ModePerm};
pub use error::{TensorError, TensorResult};
pub use io::DuplicatePolicy;
pub use source::{
    ingest, BinSource, CooChunk, CooSource, IngestEvent, IngestOptions, ProgressSink, TensorSource,
    TnsSource,
};
pub use spill::{MergeStream, SortedChunks, SpilledTensor};
pub use stats::{ModeStats, TensorStats};
pub use synth::{standins, DatasetSpec, StructuredEntries, SynthConfig, SynthSource};

/// Index type used for all tensor coordinates (paper: 32-bit unsigned).
pub type Index = u32;

/// Value type for nonzeros (paper: 32-bit float).
pub type Value = f32;
