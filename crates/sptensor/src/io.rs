//! FROSTT `.tns` text format I/O.
//!
//! The paper's datasets come from FROSTT and HaTen2 in the `.tns` format:
//! one nonzero per line, whitespace-separated **1-based** indices followed
//! by the value. Lines starting with `#` are comments. There is no header;
//! the mode extents are the per-mode maxima. This reproduction runs on
//! synthetic stand-ins by default, but real data can be dropped in through
//! this module.

use std::io::{self, BufRead, Write};

use crate::{CooTensor, Index, TensorError, TensorResult, Value};

/// Reads a tensor from `.tns` text. Order is inferred from the first data
/// line; extents are per-mode maxima (so empty trailing hyperplanes are not
/// representable, same as FROSTT itself).
///
/// Every malformed line — bad token, 0 or out-of-range index, non-finite
/// value — is rejected with a [`TensorError::Parse`] naming the offending
/// line; this function never panics on hostile input.
pub fn read_tns<R: BufRead>(reader: R) -> TensorResult<CooTensor> {
    let mut inds: Vec<Vec<Index>> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    let mut order: Option<usize> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(bad_line(lineno, "need at least one index and a value"));
        }
        let n = toks.len() - 1;
        match order {
            None => {
                order = Some(n);
                inds = vec![Vec::new(); n];
            }
            Some(o) if o != n => {
                return Err(bad_line(lineno, "inconsistent number of columns"));
            }
            _ => {}
        }
        for (m, tok) in toks[..n].iter().enumerate() {
            let idx: u64 = tok.parse().map_err(|_| bad_line(lineno, "invalid index"))?;
            if idx == 0 {
                return Err(bad_line(lineno, "indices are 1-based; got 0"));
            }
            if idx > u64::from(Index::MAX) {
                return Err(bad_line(lineno, "index exceeds u32 range"));
            }
            inds[m].push((idx - 1) as Index);
        }
        let v: Value = toks[n]
            .parse()
            .map_err(|_| bad_line(lineno, "invalid value"))?;
        if !v.is_finite() {
            return Err(bad_line(lineno, "non-finite value (NaN/inf) rejected"));
        }
        vals.push(v);
    }

    let order = order.ok_or_else(|| TensorError::invalid("tns", "no data lines in input"))?;
    let dims: Vec<Index> = (0..order)
        .map(|m| inds[m].iter().copied().max().unwrap_or(0) + 1)
        .collect();
    Ok(CooTensor::from_parts(dims, inds, vals))
}

/// Writes a tensor in `.tns` text (1-based indices).
pub fn write_tns<W: Write>(t: &CooTensor, mut writer: W) -> io::Result<()> {
    let order = t.order();
    let mut buf = String::new();
    for z in 0..t.nnz() {
        buf.clear();
        for m in 0..order {
            buf.push_str(&(t.mode_indices(m)[z] + 1).to_string());
            buf.push(' ');
        }
        buf.push_str(&format!("{}", t.values()[z]));
        buf.push('\n');
        writer.write_all(buf.as_bytes())?;
    }
    Ok(())
}

fn bad_line(lineno: usize, msg: &str) -> TensorError {
    TensorError::parse_at(lineno, msg)
}

/// Magic prefix of the binary tensor format.
pub const BIN_MAGIC: &[u8; 4] = b"SPT1";

/// Writes a tensor in the crate's little-endian binary format:
/// `"SPT1"`, `u8` order, `order × u32` extents, `u64` nonzero count, the
/// mode index arrays (`u32` each), then the values (`f32`). Roughly 10×
/// faster to load than `.tns` text — useful for caching generated
/// stand-ins between experiment runs.
pub fn write_bin<W: Write>(t: &CooTensor, mut w: W) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    w.write_all(&[t.order() as u8])?;
    for &d in t.dims() {
        w.write_all(&d.to_le_bytes())?;
    }
    w.write_all(&(t.nnz() as u64).to_le_bytes())?;
    for m in 0..t.order() {
        for &i in t.mode_indices(m) {
            w.write_all(&i.to_le_bytes())?;
        }
    }
    for &v in t.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a tensor written by [`write_bin`].
pub fn read_bin<R: io::Read>(mut r: R) -> TensorResult<CooTensor> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(TensorError::invalid("spt1", "not an SPT1 binary tensor"));
    }
    let mut b1 = [0u8; 1];
    r.read_exact(&mut b1)?;
    let order = b1[0] as usize;
    if order == 0 {
        return Err(TensorError::invalid("spt1", "zero order"));
    }
    let mut u32buf = [0u8; 4];
    let mut dims = Vec::with_capacity(order);
    for _ in 0..order {
        r.read_exact(&mut u32buf)?;
        dims.push(u32::from_le_bytes(u32buf));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let nnz = u64::from_le_bytes(u64buf) as usize;
    let mut inds: Vec<Vec<Index>> = Vec::with_capacity(order);
    for _ in 0..order {
        let mut arr = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            r.read_exact(&mut u32buf)?;
            arr.push(u32::from_le_bytes(u32buf));
        }
        inds.push(arr);
    }
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        r.read_exact(&mut u32buf)?;
        vals.push(f32::from_le_bytes(u32buf));
    }
    // from_parts validates ranges; map the panic to a typed error instead.
    for (m, arr) in inds.iter().enumerate() {
        if let Some(&bad) = arr.iter().find(|&&i| i >= dims[m]) {
            return Err(TensorError::invalid(
                "spt1",
                format!("mode {m} index {bad} out of range"),
            ));
        }
    }
    Ok(CooTensor::from_parts(dims, inds, vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip() {
        let mut t = CooTensor::new(vec![3, 4, 5]);
        t.push(&[0, 1, 2], 1.5);
        t.push(&[2, 3, 4], -2.0);
        let mut out = Vec::new();
        write_tns(&t, &mut out).unwrap();
        let back = read_tns(BufReader::new(&out[..])).unwrap();
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.dims(), &[3, 4, 5]);
        assert_eq!(back.coords_of(1), vec![2, 3, 4]);
        assert_eq!(back.values(), &[1.5, -2.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# a comment\n\n1 1 1 3.0\n2 2 2 4.0\n";
        let t = read_tns(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.dims(), &[2, 2, 2]);
    }

    #[test]
    fn rejects_zero_index() {
        let text = "0 1 1 3.0\n";
        assert!(read_tns(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "1 1 1 3.0\n1 1 4.0\n";
        assert!(read_tns(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let text = "# only comments\n";
        assert!(read_tns(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_non_finite_values_with_line_number() {
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            let text = format!("# header\n1 1 1 3.0\n2 2 2 {bad}\n");
            let err =
                read_tns(BufReader::new(text.as_bytes())).expect_err("non-finite must be rejected");
            match err {
                TensorError::Parse { line, ref msg } => {
                    assert_eq!(line, 3, "{bad}: wrong line in {err}");
                    assert!(msg.contains("non-finite"), "{bad}: {msg}");
                }
                other => panic!("{bad}: expected Parse error, got {other}"),
            }
        }
    }

    #[test]
    fn errors_carry_one_based_line_numbers() {
        let text = "1 1 1 3.0\n0 1 1 2.0\n";
        match read_tns(BufReader::new(text.as_bytes())) {
            Err(TensorError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn parses_scientific_values() {
        let text = "1 2 3 1e-3\n";
        let t = read_tns(BufReader::new(text.as_bytes())).unwrap();
        assert!((t.values()[0] - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip() {
        let t = crate::synth::uniform_random(&[20, 30, 40, 7], 500, 9);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOPE\x03".to_vec();
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = crate::synth::uniform_random(&[5, 5, 5], 50, 10);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_index() {
        let t = crate::synth::uniform_random(&[4, 4], 10, 11);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        // Corrupt a mode-0 index to 255 (> extent 4). Header is
        // 4 (magic) + 1 (order) + 8 (dims) + 8 (nnz) = 21 bytes.
        buf[21] = 255;
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn binary_empty_tensor() {
        let t = CooTensor::new(vec![3, 3]);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(&buf[..]).unwrap();
        assert_eq!(back.nnz(), 0);
        assert_eq!(back.dims(), &[3, 3]);
    }
}
