//! FROSTT `.tns` text format I/O.
//!
//! The paper's datasets come from FROSTT and HaTen2 in the `.tns` format:
//! one nonzero per line, whitespace-separated **1-based** indices followed
//! by the value. Lines starting with `#` are comments. There is no header;
//! the mode extents are the per-mode maxima. This reproduction runs on
//! synthetic stand-ins by default, but real data can be dropped in through
//! this module.

use std::io::{self, BufRead, Write};

use crate::{CooTensor, Index, TensorError, TensorResult};

/// What to do when two input nonzeros carry identical coordinates.
///
/// FROSTT files are supposed to be duplicate-free, but real exports are
/// not always clean, and which entry "wins" changes the tensor — so the
/// choice is surfaced as an explicit policy instead of a silent default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Fail with [`TensorError::Duplicate`] naming the line of the second
    /// occurrence. The default: ambiguous input is an error.
    #[default]
    Reject,
    /// Sum the values of coinciding nonzeros (the MTTKRP-consistent
    /// interpretation: COO contributions add).
    Sum,
    /// Keep every entry as stored. Downstream kernels treat duplicates as
    /// additive COO entries; formats may fold them.
    Keep,
}

/// Reads a tensor from `.tns` text, rejecting duplicate coordinates.
///
/// Every malformed line — bad token, 0 or out-of-range index, non-finite
/// value — is rejected with a [`TensorError::Parse`] naming the offending
/// line; this function never panics on hostile input.
#[deprecated(
    since = "0.2.0",
    note = "use `sptensor::ingest(TnsSource::new(reader), &IngestOptions::new())`"
)]
pub fn read_tns<R: BufRead>(reader: R) -> TensorResult<CooTensor> {
    #[allow(deprecated)]
    read_tns_with(reader, DuplicatePolicy::Reject)
}

/// Reads a tensor from `.tns` text under an explicit [`DuplicatePolicy`].
/// Order is inferred from the first data line; extents are per-mode maxima
/// (so empty trailing hyperplanes are not representable, same as FROSTT
/// itself).
#[deprecated(
    since = "0.2.0",
    note = "use `sptensor::ingest(TnsSource::new(reader), &IngestOptions::new().with_policy(policy))`"
)]
pub fn read_tns_with<R: BufRead>(reader: R, policy: DuplicatePolicy) -> TensorResult<CooTensor> {
    crate::source::ingest(
        crate::source::TnsSource::new(reader),
        &crate::source::IngestOptions::new().with_policy(policy),
    )
}

/// Writes a tensor in `.tns` text (1-based indices). Values use Rust's
/// shortest round-trip `f32` formatting, so a re-read reproduces every
/// bit; non-finite values (which the reader rejects) are refused here
/// rather than silently producing an unreadable file.
pub fn write_tns<W: Write>(t: &CooTensor, mut writer: W) -> io::Result<()> {
    let order = t.order();
    let mut buf = String::new();
    for z in 0..t.nnz() {
        buf.clear();
        for m in 0..order {
            buf.push_str(&(t.mode_indices(m)[z] + 1).to_string());
            buf.push(' ');
        }
        let v = t.values()[z];
        if !v.is_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-finite value at nonzero {z} cannot be written as .tns"),
            ));
        }
        buf.push_str(&format!("{v}"));
        buf.push('\n');
        writer.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Writes one ingestion chunk's first `n` entries in `.tns` text, with
/// the exact formatting of [`write_tns`] (1-based indices, shortest
/// round-trip `f32`). Chunked generators stream arbitrarily large files
/// through this without a resident tensor; concatenating the chunks of a
/// tensor reproduces `write_tns` of that tensor byte for byte.
pub fn write_tns_chunk<W: Write>(
    chunk: &crate::source::CooChunk,
    n: usize,
    writer: &mut W,
) -> io::Result<()> {
    let order = chunk.order();
    let mut buf = String::new();
    for z in 0..n {
        buf.clear();
        for m in 0..order {
            buf.push_str(&(chunk.coords[m][z] + 1).to_string());
            buf.push(' ');
        }
        let v = chunk.vals[z];
        if !v.is_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-finite value at chunk entry {z} cannot be written as .tns"),
            ));
        }
        buf.push_str(&format!("{v}"));
        buf.push('\n');
        writer.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Magic prefix of the binary tensor format.
pub const BIN_MAGIC: &[u8; 4] = b"SPT1";

/// Writes a tensor in the crate's little-endian binary format:
/// `"SPT1"`, `u8` order, `order × u32` extents, `u64` nonzero count, the
/// mode index arrays (`u32` each), then the values (`f32`). Roughly 10×
/// faster to load than `.tns` text — useful for caching generated
/// stand-ins between experiment runs.
pub fn write_bin<W: Write>(t: &CooTensor, mut w: W) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    w.write_all(&[t.order() as u8])?;
    for &d in t.dims() {
        w.write_all(&d.to_le_bytes())?;
    }
    w.write_all(&(t.nnz() as u64).to_le_bytes())?;
    for m in 0..t.order() {
        for &i in t.mode_indices(m) {
            w.write_all(&i.to_le_bytes())?;
        }
    }
    for &v in t.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a tensor written by [`write_bin`].
///
/// Hardened against hostile headers: a declared nonzero count that does
/// not fit `usize` (32-bit hosts) or whose total byte size overflows is a
/// typed error, not a wrap or an abort; preallocation is capped so a huge
/// declared count on a tiny stream fails with `UnexpectedEof` instead of
/// exhausting memory. Duplicate coordinates are preserved as stored (the
/// writer is the only producer of this format; use
/// [`CooTensor::fold_duplicates`] or ingestion with an explicit
/// [`DuplicatePolicy`] when input provenance is untrusted).
#[deprecated(
    since = "0.2.0",
    note = "use `sptensor::ingest(BinSource::new(reader)?, &opts)` (seekable, chunked) instead"
)]
pub fn read_bin<R: io::Read>(mut r: R) -> TensorResult<CooTensor> {
    let (dims, nnz_u64) = crate::source::read_bin_header(&mut r)?;
    let order = dims.len();
    let nnz = nnz_u64 as usize;
    let mut u32buf = [0u8; 4];
    // Cap the speculative preallocation: a hostile header declaring 2^50
    // nonzeros over a 30-byte stream should die on a short read, not an
    // allocation failure.
    let prealloc = nnz.min(1 << 20);
    let mut inds: Vec<Vec<Index>> = Vec::with_capacity(order);
    for _ in 0..order {
        let mut arr = Vec::with_capacity(prealloc);
        for _ in 0..nnz {
            r.read_exact(&mut u32buf)?;
            arr.push(u32::from_le_bytes(u32buf));
        }
        inds.push(arr);
    }
    let mut vals = Vec::with_capacity(prealloc);
    for _ in 0..nnz {
        r.read_exact(&mut u32buf)?;
        vals.push(f32::from_le_bytes(u32buf));
    }
    // from_parts validates ranges; map the panic to a typed error instead.
    for (m, arr) in inds.iter().enumerate() {
        if let Some(&bad) = arr.iter().find(|&&i| i >= dims[m]) {
            return Err(TensorError::invalid(
                "spt1",
                format!("mode {m} index {bad} out of range"),
            ));
        }
    }
    Ok(CooTensor::from_parts(dims, inds, vals))
}

#[cfg(test)]
mod tests {
    // The deprecated shims stay under test for their release cycle: they
    // must keep reproducing the exact legacy behavior they promise.
    #![allow(deprecated)]
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip() {
        let mut t = CooTensor::new(vec![3, 4, 5]);
        t.push(&[0, 1, 2], 1.5);
        t.push(&[2, 3, 4], -2.0);
        let mut out = Vec::new();
        write_tns(&t, &mut out).unwrap();
        let back = read_tns(BufReader::new(&out[..])).unwrap();
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.dims(), &[3, 4, 5]);
        assert_eq!(back.coords_of(1), vec![2, 3, 4]);
        assert_eq!(back.values(), &[1.5, -2.0]);
    }

    #[test]
    fn chunked_write_reproduces_write_tns_bytes() {
        let t = crate::synth::uniform_random(&[6, 7, 8], 300, 3);
        let mut whole = Vec::new();
        write_tns(&t, &mut whole).unwrap();
        // Stream the same tensor through uneven chunk boundaries.
        let mut chunked = Vec::new();
        let mut src = crate::source::CooSource::new(t);
        let mut chunk = crate::source::CooChunk::default();
        loop {
            let n = crate::source::TensorSource::fill_chunk(&mut src, 17, &mut chunk).unwrap();
            if n == 0 {
                break;
            }
            write_tns_chunk(&chunk, n, &mut chunked).unwrap();
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn chunked_write_rejects_non_finite() {
        let mut chunk = crate::source::CooChunk::with_order(3);
        chunk.push(&[0, 0, 0], f32::NAN, 1);
        let mut out = Vec::new();
        assert!(write_tns_chunk(&chunk, 1, &mut out).is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# a comment\n\n1 1 1 3.0\n2 2 2 4.0\n";
        let t = read_tns(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.dims(), &[2, 2, 2]);
    }

    #[test]
    fn rejects_zero_index() {
        let text = "0 1 1 3.0\n";
        assert!(read_tns(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "1 1 1 3.0\n1 1 4.0\n";
        assert!(read_tns(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let text = "# only comments\n";
        assert!(read_tns(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn rejects_non_finite_values_with_line_number() {
        for bad in ["NaN", "inf", "-inf", "Infinity"] {
            let text = format!("# header\n1 1 1 3.0\n2 2 2 {bad}\n");
            let err =
                read_tns(BufReader::new(text.as_bytes())).expect_err("non-finite must be rejected");
            match err {
                TensorError::Parse { line, ref msg } => {
                    assert_eq!(line, 3, "{bad}: wrong line in {err}");
                    assert!(msg.contains("non-finite"), "{bad}: {msg}");
                }
                other => panic!("{bad}: expected Parse error, got {other}"),
            }
        }
    }

    #[test]
    fn errors_carry_one_based_line_numbers() {
        let text = "1 1 1 3.0\n0 1 1 2.0\n";
        match read_tns(BufReader::new(text.as_bytes())) {
            Err(TensorError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn parses_scientific_values() {
        let text = "1 2 3 1e-3\n";
        let t = read_tns(BufReader::new(text.as_bytes())).unwrap();
        assert!((t.values()[0] - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn binary_round_trip() {
        let t = crate::synth::uniform_random(&[20, 30, 40, 7], 500, 9);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOPE\x03".to_vec();
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = crate::synth::uniform_random(&[5, 5, 5], 50, 10);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_index() {
        let t = crate::synth::uniform_random(&[4, 4], 10, 11);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        // Corrupt a mode-0 index to 255 (> extent 4). Header is
        // 4 (magic) + 1 (order) + 8 (dims) + 8 (nnz) = 21 bytes.
        buf[21] = 255;
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn binary_empty_tensor() {
        let t = CooTensor::new(vec![3, 3]);
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back = read_bin(&buf[..]).unwrap();
        assert_eq!(back.nnz(), 0);
        assert_eq!(back.dims(), &[3, 3]);
    }

    #[test]
    fn duplicates_are_typed_errors_by_default() {
        let text = "1 2 3 1.0\n2 2 2 5.0\n1 2 3 4.0\n";
        match read_tns(BufReader::new(text.as_bytes())) {
            Err(TensorError::Duplicate { line, ref coords }) => {
                assert_eq!(line, 3, "must name the second occurrence");
                assert_eq!(coords, &[0, 1, 2], "0-based stored coordinates");
            }
            other => panic!("expected Duplicate error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_policy_sum_folds_in_place() {
        let text = "1 2 3 1.0\n2 2 2 5.0\n1 2 3 4.0\n";
        let t = read_tns_with(BufReader::new(text.as_bytes()), DuplicatePolicy::Sum).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.coords_of(0), vec![0, 1, 2]);
        assert_eq!(t.values(), &[5.0, 5.0], "sum lands at first occurrence");
    }

    #[test]
    fn duplicate_policy_keep_preserves_entries() {
        let text = "1 2 3 1.0\n1 2 3 4.0\n";
        let t = read_tns_with(BufReader::new(text.as_bytes()), DuplicatePolicy::Keep).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.values(), &[1.0, 4.0]);
    }

    #[test]
    fn binary_rejects_zero_extent_and_huge_nnz() {
        // Header claiming order 2, dims [3, 0]: invalid structure.
        let mut buf = BIN_MAGIC.to_vec();
        buf.push(2);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_bin(&buf[..]),
            Err(TensorError::Invalid { .. })
        ));

        // Header claiming 2^60 nonzeros over an empty body: must die on a
        // short read (capped preallocation), not an allocation abort.
        let mut buf = BIN_MAGIC.to_vec();
        buf.push(2);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(read_bin(&buf[..]), Err(TensorError::Io(_))));

        // A count whose total byte size overflows u64 is a typed error.
        let mut buf = BIN_MAGIC.to_vec();
        buf.push(255);
        for _ in 0..255 {
            buf.extend_from_slice(&1u32.to_le_bytes());
        }
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_bin(&buf[..]);
        assert!(err.is_err(), "overflowing size must be rejected");
    }

    mod prop {
        use super::*;
        use proptest::collection::vec as pvec;
        use proptest::prelude::*;

        /// A syntactically valid `.tns` document with unique coordinates,
        /// as (text, sorted coordinate tuples, values).
        fn arb_valid_tns() -> impl Strategy<Value = (String, usize, usize)> {
            ((1usize..=4), (1usize..=30)).prop_flat_map(|(order, nnz)| {
                pvec(pvec(1u32..=50, order), nnz)
                    .prop_map(move |coords| {
                        let mut uniq: Vec<Vec<u32>> = coords;
                        uniq.sort();
                        uniq.dedup();
                        let mut text = String::from("# generated\n");
                        for (z, c) in uniq.iter().enumerate() {
                            for i in c {
                                text.push_str(&format!("{i} "));
                            }
                            text.push_str(&format!("{}.5\n", z + 1));
                        }
                        (text, order, uniq.len())
                    })
                    .boxed()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn parser_never_panics_on_arbitrary_bytes(bytes in pvec(any::<u8>(), 0..200)) {
                // Any outcome is fine; reaching it without a panic is the
                // property (lines() surfaces invalid UTF-8 as io errors).
                let _ = read_tns(BufReader::new(&bytes[..]));
                let _ = read_bin(&bytes[..]);
            }

            #[test]
            fn parser_never_panics_on_arbitrary_lines(
                lines in pvec(pvec(prop_oneof![
                    Just("1".to_string()),
                    Just("0".to_string()),
                    Just("4294967295".to_string()),
                    Just("4294967296".to_string()),
                    Just("-3".to_string()),
                    Just("1.5".to_string()),
                    Just("NaN".to_string()),
                    Just("#".to_string()),
                    Just("x".to_string()),
                ], 0..6), 0..8),
            ) {
                let text = lines
                    .iter()
                    .map(|toks| toks.join(" "))
                    .collect::<Vec<_>>()
                    .join("\n");
                for policy in [DuplicatePolicy::Reject, DuplicatePolicy::Sum, DuplicatePolicy::Keep] {
                    if let Ok(t) = read_tns_with(BufReader::new(text.as_bytes()), policy) {
                        prop_assert!(t.validate().is_ok(), "parser accepted an invalid tensor");
                    }
                }
            }

            #[test]
            fn valid_documents_round_trip(doc in arb_valid_tns()) {
                let (text, order, nnz) = doc;
                let t = read_tns(BufReader::new(text.as_bytes()))
                    .expect("valid unique-coordinate document");
                prop_assert_eq!(t.order(), order);
                prop_assert_eq!(t.nnz(), nnz);
                prop_assert!(t.validate().is_ok());
                let mut out = Vec::new();
                write_tns(&t, &mut out).expect("write to vec");
                let back = read_tns(BufReader::new(&out[..])).expect("round trip");
                prop_assert_eq!(back, t);
            }

            #[test]
            fn values_survive_tns_bin_tns_bit_exact(
                bits in pvec(any::<u32>(), 1..40),
            ) {
                // Shortest round-trip text formatting must reproduce every
                // finite f32 bit pattern through tns -> bin -> tns.
                let vals: Vec<f32> = bits
                    .iter()
                    .map(|&b| f32::from_bits(b))
                    .filter(|v| v.is_finite())
                    .collect();
                prop_assume!(!vals.is_empty());
                let mut t = CooTensor::new(vec![vals.len() as u32, 2]);
                for (z, &v) in vals.iter().enumerate() {
                    t.push(&[z as u32, 1], v);
                }
                let mut text = Vec::new();
                write_tns(&t, &mut text).expect("write tns");
                let from_text = read_tns(BufReader::new(&text[..])).expect("re-read tns");
                let mut bin = Vec::new();
                write_bin(&from_text, &mut bin).expect("write bin");
                let from_bin = read_bin(&bin[..]).expect("re-read bin");
                let mut text2 = Vec::new();
                write_tns(&from_bin, &mut text2).expect("write tns again");
                prop_assert_eq!(&text2, &text, "tns -> bin -> tns drifted");
                for (a, b) in from_bin.values().iter().zip(&vals) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "value bits drifted");
                }
            }

            #[test]
            fn corrupted_byte_never_panics_binary(
                seed in 0u64..1000,
                pos in 0usize..200,
                byte in any::<u8>(),
            ) {
                let t = crate::synth::uniform_random(&[6, 7, 8], 40, seed);
                let mut buf = Vec::new();
                write_bin(&t, &mut buf).expect("write");
                let pos = pos % buf.len();
                buf[pos] = byte;
                // Either a typed error or a structurally valid tensor.
                if let Ok(back) = read_bin(&buf[..]) {
                    prop_assert!(back.validate().is_ok());
                }
            }
        }
    }
}
