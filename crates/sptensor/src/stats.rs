//! Slice/fiber distribution statistics.
//!
//! The paper's load-imbalance analysis (Table II and Section IV) is driven
//! by two distributions per mode orientation: *nonzeros per slice* (the work
//! a thread block receives) and *nonzeros per fiber* (the work a warp
//! receives). This module computes both, plus the singleton fractions that
//! drive HB-CSF's three-way slice classification (Algorithm 5).
//!
//! Terminology for an order-`N` tensor under orientation `perm`:
//! a **slice** is a maximal run of nonzeros sharing the level-0 index
//! (`perm[0]`-mode coordinate); a **fiber** is a maximal run sharing the
//! first `N-1` levels. For `N = 3` these coincide with the paper's
//! `X(i,:,:)` slices and `X(i,j,:)` fibers.

use crate::dims::{mode_orientation, ModePerm};
use crate::CooTensor;

/// Five-number summary of an integer distribution.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct SummaryStats {
    pub count: usize,
    pub mean: f64,
    /// Population standard deviation (what nvprof-era papers report).
    pub stdev: f64,
    pub min: usize,
    pub max: usize,
}

impl SummaryStats {
    /// Summary of a sample of counts. Empty input yields all-zero stats.
    pub fn of(values: &[usize]) -> SummaryStats {
        if values.is_empty() {
            return SummaryStats {
                count: 0,
                mean: 0.0,
                stdev: 0.0,
                min: 0,
                max: 0,
            };
        }
        let count = values.len();
        let sum: f64 = values.iter().map(|&v| v as f64).sum();
        let mean = sum / count as f64;
        let var: f64 = values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        SummaryStats {
            count,
            mean,
            stdev: var.sqrt(),
            min: *values.iter().min().unwrap(),
            max: *values.iter().max().unwrap(),
        }
    }
}

/// Distribution statistics for one mode orientation.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModeStats {
    /// The output mode (level-0 mode of the orientation).
    pub mode: usize,
    pub nnz: usize,
    /// Number of non-empty slices (`S` in the paper).
    pub num_slices: usize,
    /// Number of non-empty fibers (`F` in the paper).
    pub num_fibers: usize,
    pub nnz_per_slice: SummaryStats,
    pub nnz_per_fiber: SummaryStats,
    /// Fraction of slices containing exactly one nonzero (HB-CSF → COO group).
    pub singleton_slice_fraction: f64,
    /// Fraction of fibers containing exactly one nonzero.
    pub singleton_fiber_fraction: f64,
    /// Fraction of slices all of whose fibers are singletons but that hold
    /// more than one nonzero (HB-CSF → CSL group).
    pub csl_slice_fraction: f64,
}

/// Statistics for every mode orientation of a tensor.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TensorStats {
    pub per_mode: Vec<ModeStats>,
}

impl TensorStats {
    /// Computes stats for all `N` orientations (sorts a working copy per
    /// orientation).
    pub fn compute(t: &CooTensor) -> TensorStats {
        let per_mode = (0..t.order()).map(|m| ModeStats::compute(t, m)).collect();
        TensorStats { per_mode }
    }
}

impl ModeStats {
    /// Stats for the orientation that puts `mode` at the root level.
    pub fn compute(t: &CooTensor, mode: usize) -> ModeStats {
        let perm = mode_orientation(t.order(), mode);
        let mut work = t.clone();
        work.sort_by_perm(&perm);
        Self::from_sorted(&work, &perm)
    }

    /// Stats for a tensor already sorted under `perm`. Level-0 mode of the
    /// orientation is reported as `mode`.
    ///
    /// # Panics
    /// (debug builds) if the tensor is not sorted under `perm`.
    pub fn from_sorted(t: &CooTensor, perm: &ModePerm) -> ModeStats {
        debug_assert!(t.is_sorted_by_perm(perm), "tensor must be sorted");
        let slice_volumes = group_sizes(t, perm, 1);
        let fiber_lengths = group_sizes(t, perm, perm.len() - 1);
        let singleton_slices = slice_volumes.iter().filter(|&&v| v == 1).count();
        let singleton_fibers = fiber_lengths.iter().filter(|&&v| v == 1).count();
        let csl_slices = count_csl_slices(t, perm);
        let num_slices = slice_volumes.len();
        let num_fibers = fiber_lengths.len();
        ModeStats {
            mode: perm[0],
            nnz: t.nnz(),
            num_slices,
            num_fibers,
            nnz_per_slice: SummaryStats::of(&slice_volumes),
            nnz_per_fiber: SummaryStats::of(&fiber_lengths),
            singleton_slice_fraction: frac(singleton_slices, num_slices),
            singleton_fiber_fraction: frac(singleton_fibers, num_fibers),
            csl_slice_fraction: frac(csl_slices, num_slices),
        }
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Sizes of maximal runs sharing the first `depth` levels of the orientation.
/// `depth = 1` gives slice volumes; `depth = order - 1` gives fiber lengths.
/// Requires the tensor sorted under `perm`.
pub fn group_sizes(t: &CooTensor, perm: &ModePerm, depth: usize) -> Vec<usize> {
    assert!(
        depth >= 1 && depth < perm.len().max(2),
        "depth out of range"
    );
    let n = t.nnz();
    if n == 0 {
        return Vec::new();
    }
    let keys: Vec<&[u32]> = perm[..depth].iter().map(|&m| t.mode_indices(m)).collect();
    let mut sizes = Vec::new();
    let mut run = 1usize;
    for z in 1..n {
        let same = keys.iter().all(|k| k[z] == k[z - 1]);
        if same {
            run += 1;
        } else {
            sizes.push(run);
            run = 1;
        }
    }
    sizes.push(run);
    sizes
}

/// A log2-bucketed histogram of an integer distribution: bucket `b` counts
/// values in `[2^b, 2^(b+1))`. The shape of the slice-volume histogram is
/// what decides between HB-CSF's three classes; `sptk info` and the
/// `format_explorer` example render it.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Log2Histogram {
    /// `buckets[b]` = number of values `v` with `floor(log2(max(v,1))) == b`.
    pub buckets: Vec<usize>,
}

impl Log2Histogram {
    /// Builds the histogram (empty input → no buckets).
    pub fn of(values: &[usize]) -> Log2Histogram {
        let mut buckets = Vec::new();
        for &v in values {
            let b = (usize::BITS - v.max(1).leading_zeros()) as usize - 1;
            if b >= buckets.len() {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        Log2Histogram { buckets }
    }

    /// Inclusive-exclusive value range of bucket `b`.
    pub fn bucket_range(b: usize) -> (usize, usize) {
        (1usize << b, 1usize << (b + 1))
    }

    /// Total count across buckets.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Renders one text line per non-empty bucket, bars scaled to `width`.
    pub fn render(&self, width: usize) -> String {
        let peak = self.buckets.iter().copied().max().unwrap_or(0);
        let mut out = String::new();
        for (b, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_range(b);
            let bar = "#".repeat((count * width).div_ceil(peak.max(1)));
            out.push_str(&format!("{:>9}-{:<9} {:>8}  {}\n", lo, hi - 1, count, bar));
        }
        out
    }
}

/// Number of slices that qualify for CSL storage: more than one nonzero and
/// every fiber a singleton. Requires sorting under `perm`.
fn count_csl_slices(t: &CooTensor, perm: &ModePerm) -> usize {
    let n = t.nnz();
    if n == 0 || perm.len() < 2 {
        return 0;
    }
    let slice_key = t.mode_indices(perm[0]);
    let fiber_keys: Vec<&[u32]> = perm[..perm.len() - 1]
        .iter()
        .map(|&m| t.mode_indices(m))
        .collect();
    let mut count = 0usize;
    let mut slice_nnz;
    let mut all_singleton;
    let mut z = 0usize;
    while z < n {
        // Walk one slice.
        let s = slice_key[z];
        slice_nnz = 0;
        all_singleton = true;
        while z < n && slice_key[z] == s {
            // Walk one fiber inside the slice.
            let fiber_start = z;
            z += 1;
            while z < n && fiber_keys.iter().all(|k| k[z] == k[z - 1]) {
                z += 1;
            }
            let fiber_len = z - fiber_start;
            if fiber_len > 1 {
                all_singleton = false;
            }
            slice_nnz += fiber_len;
        }
        if all_singleton && slice_nnz > 1 {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::identity_perm;

    /// 3 slices: slice 0 = single nonzero (COO class), slice 1 = two
    /// singleton fibers (CSL class), slice 2 = one fiber of length 3 (CSF).
    fn classified() -> CooTensor {
        let mut t = CooTensor::new(vec![3, 4, 5]);
        t.push(&[0, 1, 1], 1.0);
        t.push(&[1, 0, 0], 1.0);
        t.push(&[1, 2, 3], 1.0);
        t.push(&[2, 3, 0], 1.0);
        t.push(&[2, 3, 1], 1.0);
        t.push(&[2, 3, 4], 1.0);
        t
    }

    #[test]
    fn summary_of_empty() {
        let s = SummaryStats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.stdev, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = SummaryStats::of(&[2, 4, 6]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.stdev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
    }

    #[test]
    fn group_sizes_slices_and_fibers() {
        let mut t = classified();
        let perm = identity_perm(3);
        t.sort_by_perm(&perm);
        assert_eq!(group_sizes(&t, &perm, 1), vec![1, 2, 3]);
        assert_eq!(group_sizes(&t, &perm, 2), vec![1, 1, 1, 3]);
    }

    #[test]
    fn mode_stats_counts() {
        let t = classified();
        let s = ModeStats::compute(&t, 0);
        assert_eq!(s.num_slices, 3);
        assert_eq!(s.num_fibers, 4);
        assert_eq!(s.nnz, 6);
        assert!((s.singleton_slice_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.singleton_fiber_fraction - 3.0 / 4.0).abs() < 1e-12);
        // Slice 1 is the only CSL-class slice.
        assert!((s.csl_slice_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_all_modes() {
        let t = classified();
        let all = TensorStats::compute(&t);
        assert_eq!(all.per_mode.len(), 3);
        for (m, s) in all.per_mode.iter().enumerate() {
            assert_eq!(s.mode, m);
            assert_eq!(s.nnz, 6);
            // Slice volumes always sum to nnz.
            let approx_total = s.nnz_per_slice.mean * s.num_slices as f64;
            assert!((approx_total - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_tensor_stats() {
        let t = CooTensor::new(vec![2, 2, 2]);
        let s = ModeStats::compute(&t, 0);
        assert_eq!(s.num_slices, 0);
        assert_eq!(s.num_fibers, 0);
        assert_eq!(s.nnz_per_slice.count, 0);
    }

    #[test]
    fn log2_histogram_buckets_correctly() {
        let h = Log2Histogram::of(&[1, 1, 2, 3, 4, 7, 8, 1000]);
        // buckets: [1,1]=2, [2,3]=2, [4,7]=2, [8,15]=1, ..., [512,1023]=1
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.total(), 8);
        assert_eq!(Log2Histogram::bucket_range(3), (8, 16));
        let text = h.render(10);
        assert!(text.contains("512"));
        // Empty input.
        assert_eq!(Log2Histogram::of(&[]).total(), 0);
        // Zero values clamp to bucket 0.
        assert_eq!(Log2Histogram::of(&[0]).buckets[0], 1);
    }

    #[test]
    fn order_two_tensor_fibers_equal_slices() {
        // For order 2 the slice level and fiber level coincide (depth 1).
        let mut t = CooTensor::new(vec![3, 3]);
        t.push(&[0, 0], 1.0);
        t.push(&[0, 2], 1.0);
        t.push(&[2, 1], 1.0);
        let s = ModeStats::compute(&t, 0);
        assert_eq!(s.num_slices, 2);
        assert_eq!(s.num_fibers, 2);
    }
}
