//! Bounded-memory ingestion: sorted spill runs + k-way merge.
//!
//! The external-sort half of the streaming pipeline. A [`TensorSource`]
//! is drained chunk by chunk; each chunk is sorted (coordinates under a
//! mode permutation, source line as the tie-break) and spilled to a run
//! file, so peak host memory is one chunk's working set regardless of
//! the tensor's size. A k-way merge over the runs then yields the
//! entries in globally sorted order, applying the [`DuplicatePolicy`]
//! with whole-stream semantics.
//!
//! Determinism contract: the (coords, line) sort key is a *total* order
//! (lines are unique), so the merged stream is byte-identical to
//! sorting the fully-resident tensor — chunk size and run count are
//! invisible. Sum folds duplicates in source order (the merge yields
//! equal coordinates by ascending line), matching the in-core fold's
//! accumulation order bit for bit.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::io::DuplicatePolicy;
use crate::source::{CooChunk, IngestEvent, IngestOptions, TensorSource};
use crate::{CooTensor, Index, TensorError, TensorResult, Value};

/// A rescannable producer of sorted, policy-applied entry chunks — the
/// input contract of the out-of-core format builders. `rewind` restarts
/// the stream from the first entry, enabling multi-pass construction
/// (count → allocate → fill).
pub trait SortedChunks {
    /// Mode extents of the underlying tensor.
    fn dims(&self) -> &[Index];

    /// Exact number of entries the full stream yields (post-policy).
    fn nnz(&self) -> u64;

    /// The mode permutation the stream is sorted under.
    fn perm(&self) -> &[usize];

    /// Clears `out` and fills it with up to `max_entries` entries in
    /// sorted order. Returns the count appended; `0` = exhausted.
    fn next_chunk(&mut self, max_entries: usize, out: &mut CooChunk) -> TensorResult<usize>;

    /// Restarts the stream from the beginning.
    fn rewind(&mut self) -> TensorResult<()>;
}

/// A tensor held as sorted spill runs on disk instead of resident
/// arrays. Produced by [`SpilledTensor::ingest`]; streamed (repeatedly)
/// through [`SpilledTensor::stream`]. The run directory is owned: it is
/// deleted when this value drops.
#[derive(Debug)]
pub struct SpilledTensor {
    dir: PathBuf,
    runs: Vec<PathBuf>,
    dims: Vec<Index>,
    perm: Vec<usize>,
    /// Post-policy entry count (exact; established by a validation merge).
    nnz: u64,
    /// Raw entries across the runs, duplicates included.
    raw_entries: u64,
    policy: DuplicatePolicy,
    chunk_nnz: usize,
}

impl Drop for SpilledTensor {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl SpilledTensor {
    /// Drains `source` into sorted runs under `dir` (a fresh
    /// subdirectory is created and owned), sorted by the identity
    /// permutation, then runs one validation merge to fix the exact
    /// post-policy entry count — and to reject duplicates with the same
    /// typed error (and line number) the in-core path reports.
    pub fn ingest<S: TensorSource>(
        mut source: S,
        opts: &IngestOptions,
        dir: &Path,
    ) -> TensorResult<SpilledTensor> {
        let declared = source.declared_dims();
        let run_dir = fresh_subdir(dir, "ingest")?;
        let mut runs = Vec::new();
        let mut chunk = CooChunk::default();
        let mut order: Option<usize> = None;
        let mut maxima: Vec<Index> = Vec::new();
        let mut raw_entries = 0u64;
        let mut chunk_nnz = opts.effective_chunk_nnz(3);

        loop {
            let n = source.fill_chunk(chunk_nnz, &mut chunk)?;
            if n == 0 {
                break;
            }
            raw_entries += n as u64;
            match order {
                None => {
                    order = Some(chunk.order());
                    maxima = vec![0; chunk.order()];
                    chunk_nnz = opts.effective_chunk_nnz(chunk.order());
                }
                Some(o) if o != chunk.order() => {
                    return Err(TensorError::invalid(
                        source.format_name(),
                        "source changed arity mid-stream",
                    ));
                }
                _ => {}
            }
            for (m, arr) in chunk.coords.iter().enumerate() {
                for &c in arr {
                    maxima[m] = maxima[m].max(c);
                }
            }
            let identity: Vec<usize> = (0..chunk.order()).collect();
            sort_chunk(&mut chunk, &identity);
            let path = run_dir.join(format!("run{:06}.bin", runs.len()));
            write_run(&chunk, &path)?;
            opts.emit(IngestEvent::ChunkRead {
                entries: n,
                total_entries: raw_entries,
            });
            opts.emit(IngestEvent::RunSpilled {
                run: runs.len(),
                entries: n,
            });
            runs.push(path);
        }

        let dims = match declared {
            Some(d) => d,
            None => {
                let order = order.ok_or_else(|| {
                    TensorError::invalid(source.format_name(), "no data lines in input")
                })?;
                let mut dims = Vec::with_capacity(order);
                for &max in maxima.iter().take(order) {
                    let extent = max.checked_add(1).ok_or_else(|| {
                        TensorError::invalid(source.format_name(), "mode extent overflows u32")
                    })?;
                    dims.push(extent);
                }
                dims
            }
        };

        let mut spilled = SpilledTensor {
            dir: run_dir,
            runs,
            perm: (0..dims.len()).collect(),
            dims,
            nnz: 0,
            raw_entries,
            policy: opts.policy(),
            chunk_nnz,
        };
        spilled.nnz = spilled.validate_merge(opts)?;
        opts.emit(IngestEvent::Done {
            entries: spilled.nnz,
        });
        Ok(spilled)
    }

    /// One full merge pass: counts post-policy entries and, under
    /// [`DuplicatePolicy::Reject`], reproduces the in-core duplicate
    /// error — the earliest (in source order) entry that collides with
    /// an earlier one, by line number.
    fn validate_merge(&self, opts: &IngestOptions) -> TensorResult<u64> {
        opts.emit(IngestEvent::MergeStarted {
            runs: self.runs.len(),
        });
        let mut merge = RawMerge::open(&self.runs, self.dims.len(), &self.perm)?;
        let order = self.dims.len();
        let mut prev: Option<(Vec<Index>, u64)> = None;
        let mut count = 0u64;
        // Under Reject: min over coordinate groups of the group's second
        // occurrence line == the first file-order collision.
        let mut reject_at: Option<(u64, Vec<Index>)> = None;
        let mut coords = vec![0 as Index; order];
        while let Some((_v, line)) = merge.next_entry(&mut coords)? {
            let dup = prev
                .as_ref()
                .map(|(pc, _)| pc.as_slice() == coords.as_slice())
                .unwrap_or(false);
            match (self.policy, dup) {
                (DuplicatePolicy::Keep, _) => count += 1,
                (_, false) => {
                    count += 1;
                    prev = Some((coords.clone(), line));
                    continue;
                }
                (DuplicatePolicy::Sum, true) => {}
                (DuplicatePolicy::Reject, true) => {
                    // Only the group's *second* entry matters; the merge
                    // yields groups in ascending line order, so record
                    // the first collision per group (prev line ≠ line of
                    // second occurrence only for the 3rd+ entries, which
                    // never beat the 2nd).
                    let second = line;
                    if reject_at.as_ref().map(|(l, _)| second < *l).unwrap_or(true)
                        && prev.as_ref().map(|(_, pl)| *pl < second).unwrap_or(false)
                    {
                        reject_at = Some((second, coords.clone()));
                    }
                }
            }
            if self.policy != DuplicatePolicy::Keep {
                // Keep the group's first line so later members of the
                // same group do not re-trigger.
                if let Some(p) = prev.as_mut() {
                    if p.0.as_slice() != coords.as_slice() {
                        *p = (coords.clone(), line);
                    }
                }
            }
        }
        if let Some((line, coords)) = reject_at {
            return Err(TensorError::duplicate(line as usize, coords));
        }
        Ok(count)
    }

    pub fn dims(&self) -> &[Index] {
        &self.dims
    }

    /// Post-policy entry count.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Raw entries spilled, before duplicate folding.
    pub fn raw_entries(&self) -> u64 {
        self.raw_entries
    }

    pub fn policy(&self) -> DuplicatePolicy {
        self.policy
    }

    /// The mode permutation the runs are sorted under.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Opens a rescannable merged stream over the runs. Each call (and
    /// each `rewind`) re-reads the run files; nothing tensor-sized is
    /// resident.
    pub fn stream(&self) -> TensorResult<MergeStream<'_>> {
        MergeStream::open(self)
    }

    /// Externally re-sorts into a new spilled tensor ordered by `perm`
    /// (runs written next to the existing ones' parent under `dir`).
    /// The policy has already been applied, so the result streams with
    /// [`DuplicatePolicy::Keep`].
    pub fn resort(
        &self,
        perm: &[usize],
        dir: &Path,
        opts: &IngestOptions,
    ) -> TensorResult<SpilledTensor> {
        assert!(
            crate::dims::is_valid_perm(perm, self.dims.len()),
            "invalid mode permutation"
        );
        let run_dir = fresh_subdir(dir, "resort")?;
        let mut stream = self.stream()?;
        let mut chunk = CooChunk::default();
        let mut runs = Vec::new();
        let chunk_nnz = opts.effective_chunk_nnz(self.dims.len()).max(1);
        loop {
            let n = stream.next_chunk(chunk_nnz, &mut chunk)?;
            if n == 0 {
                break;
            }
            sort_chunk(&mut chunk, perm);
            let path = run_dir.join(format!("run{:06}.bin", runs.len()));
            write_run(&chunk, &path)?;
            opts.emit(IngestEvent::RunSpilled {
                run: runs.len(),
                entries: n,
            });
            runs.push(path);
        }
        Ok(SpilledTensor {
            dir: run_dir,
            runs,
            dims: self.dims.clone(),
            perm: perm.to_vec(),
            nnz: self.nnz,
            raw_entries: self.nnz,
            policy: DuplicatePolicy::Keep,
            chunk_nnz,
        })
    }

    /// Materializes the merged stream as a resident tensor (sorted by
    /// this spill's permutation). For overlap-sized data and tests.
    pub fn to_coo(&self) -> TensorResult<CooTensor> {
        let mut stream = self.stream()?;
        let order = self.dims.len();
        let mut inds: Vec<Vec<Index>> = vec![Vec::new(); order];
        let mut vals: Vec<Value> = Vec::new();
        let mut chunk = CooChunk::default();
        loop {
            let n = stream.next_chunk(self.chunk_nnz, &mut chunk)?;
            if n == 0 {
                break;
            }
            for (m, arr) in chunk.coords.iter().enumerate() {
                inds[m].extend_from_slice(arr);
            }
            vals.extend_from_slice(&chunk.vals);
        }
        Ok(CooTensor::from_parts(self.dims.clone(), inds, vals))
    }
}

/// Sorts a chunk's entries by their coordinates under `perm`, breaking
/// ties by source line — a total order, so the result is independent of
/// the sort algorithm.
fn sort_chunk(chunk: &mut CooChunk, perm: &[usize]) {
    let n = chunk.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    {
        let coords = &chunk.coords;
        let lines = &chunk.lines;
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for &m in perm {
                match coords[m][a].cmp(&coords[m][b]) {
                    core::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            lines[a].cmp(&lines[b])
        });
    }
    for arr in &mut chunk.coords {
        let reordered: Vec<Index> = order.iter().map(|&i| arr[i as usize]).collect();
        *arr = reordered;
    }
    chunk.vals = order.iter().map(|&i| chunk.vals[i as usize]).collect();
    chunk.lines = order.iter().map(|&i| chunk.lines[i as usize]).collect();
}

fn fresh_subdir(dir: &Path, tag: &str) -> TensorResult<PathBuf> {
    for attempt in 0..10_000u32 {
        let candidate = dir.join(format!("spill-{tag}-{:04x}-{attempt}", std::process::id()));
        match std::fs::create_dir_all(candidate.parent().unwrap_or(dir)) {
            Ok(()) => {}
            Err(e) => return Err(TensorError::Io(e)),
        }
        match std::fs::create_dir(&candidate) {
            Ok(()) => return Ok(candidate),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(TensorError::Io(e)),
        }
    }
    Err(TensorError::invalid("spill", "cannot create run directory"))
}

// ---------------------------------------------------------------------
// Run files: row-major little-endian entries for sequential merge reads.
// ---------------------------------------------------------------------

fn write_run(chunk: &CooChunk, path: &Path) -> TensorResult<()> {
    let mut w = BufWriter::with_capacity(1 << 20, File::create(path)?);
    w.write_all(&(chunk.order() as u32).to_le_bytes())?;
    w.write_all(&(chunk.len() as u64).to_le_bytes())?;
    for i in 0..chunk.len() {
        for arr in &chunk.coords {
            w.write_all(&arr[i].to_le_bytes())?;
        }
        w.write_all(&chunk.vals[i].to_le_bytes())?;
        w.write_all(&chunk.lines[i].to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Sequential reader over one run file, one entry ahead.
struct RunReader {
    reader: BufReader<File>,
    remaining: u64,
    /// Current (front) entry, if any.
    coords: Vec<Index>,
    val: Value,
    line: u64,
    has: bool,
}

impl RunReader {
    fn open(path: &Path, order: usize) -> TensorResult<RunReader> {
        let mut reader = BufReader::with_capacity(1 << 20, File::open(path)?);
        let mut u32buf = [0u8; 4];
        reader.read_exact(&mut u32buf)?;
        let stored_order = u32::from_le_bytes(u32buf) as usize;
        if stored_order != order {
            return Err(TensorError::invalid("spill", "run order mismatch"));
        }
        let mut u64buf = [0u8; 8];
        reader.read_exact(&mut u64buf)?;
        let remaining = u64::from_le_bytes(u64buf);
        let mut r = RunReader {
            reader,
            remaining,
            coords: vec![0; order],
            val: 0.0,
            line: 0,
            has: false,
        };
        r.advance()?;
        Ok(r)
    }

    /// Loads the next entry into the front slot (or marks exhaustion).
    fn advance(&mut self) -> TensorResult<()> {
        if self.remaining == 0 {
            self.has = false;
            return Ok(());
        }
        let mut u32buf = [0u8; 4];
        for c in &mut self.coords {
            self.reader.read_exact(&mut u32buf)?;
            *c = u32::from_le_bytes(u32buf);
        }
        self.reader.read_exact(&mut u32buf)?;
        self.val = f32::from_le_bytes(u32buf);
        let mut u64buf = [0u8; 8];
        self.reader.read_exact(&mut u64buf)?;
        self.line = u64::from_le_bytes(u64buf);
        self.remaining -= 1;
        self.has = true;
        Ok(())
    }
}

/// K-way merge over run files in raw (coords, line) order — policy is
/// NOT applied here; [`MergeStream`] layers it on top. Run counts are
/// small (raw nnz / chunk size), so the min is found by linear scan:
/// allocation-free and branch-predictable.
struct RawMerge {
    readers: Vec<RunReader>,
    perm: Vec<usize>,
}

impl RawMerge {
    fn open(runs: &[PathBuf], order: usize, perm: &[usize]) -> TensorResult<RawMerge> {
        let readers = runs
            .iter()
            .map(|p| RunReader::open(p, order))
            .collect::<TensorResult<Vec<_>>>()?;
        Ok(RawMerge {
            readers,
            perm: perm.to_vec(),
        })
    }

    /// Pops the globally smallest entry into `coords`, returning its
    /// `(value, line)`; `None` when all runs are exhausted.
    fn next_entry(&mut self, coords: &mut [Index]) -> TensorResult<Option<(Value, u64)>> {
        let mut best: Option<usize> = None;
        for (i, r) in self.readers.iter().enumerate() {
            if !r.has {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if entry_lt(&self.readers[i], &self.readers[b], &self.perm) {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(b) = best else { return Ok(None) };
        let r = &mut self.readers[b];
        coords.copy_from_slice(&r.coords);
        let out = (r.val, r.line);
        r.advance()?;
        Ok(Some(out))
    }
}

fn entry_lt(a: &RunReader, b: &RunReader, perm: &[usize]) -> bool {
    for &m in perm {
        match a.coords[m].cmp(&b.coords[m]) {
            core::cmp::Ordering::Less => return true,
            core::cmp::Ordering::Greater => return false,
            core::cmp::Ordering::Equal => {}
        }
    }
    a.line < b.line
}

/// The policy-applied sorted stream over a [`SpilledTensor`]'s runs.
/// Implements [`SortedChunks`]: rescannable, chunk-size agnostic, and
/// byte-identical to sorting (and folding) the resident tensor.
pub struct MergeStream<'a> {
    owner: &'a SpilledTensor,
    merge: RawMerge,
    /// Pending folded entry not yet emitted (Sum) / lookahead (all).
    pending: Option<(Vec<Index>, Value, u64)>,
    scratch: Vec<Index>,
}

impl<'a> MergeStream<'a> {
    fn open(owner: &'a SpilledTensor) -> TensorResult<MergeStream<'a>> {
        let merge = RawMerge::open(&owner.runs, owner.dims.len(), &owner.perm)?;
        Ok(MergeStream {
            owner,
            merge,
            pending: None,
            scratch: vec![0; owner.dims.len()],
        })
    }
}

impl SortedChunks for MergeStream<'_> {
    fn dims(&self) -> &[Index] {
        &self.owner.dims
    }

    fn nnz(&self) -> u64 {
        self.owner.nnz
    }

    fn perm(&self) -> &[usize] {
        &self.owner.perm
    }

    fn next_chunk(&mut self, max_entries: usize, out: &mut CooChunk) -> TensorResult<usize> {
        let order = self.owner.dims.len();
        out.reset(order);
        let fold = self.owner.policy == DuplicatePolicy::Sum;
        while out.len() < max_entries {
            match self.merge.next_entry(&mut self.scratch)? {
                None => {
                    if let Some((c, v, l)) = self.pending.take() {
                        out.push(&c, v, l);
                    }
                    break;
                }
                Some((v, line)) => match self.pending.take() {
                    None => {
                        self.pending = Some((self.scratch.clone(), v, line));
                    }
                    Some((pc, pv, pl)) => {
                        if fold && pc.as_slice() == self.scratch.as_slice() {
                            // Merge yields equal coordinates in ascending
                            // line order: the fold accumulates exactly as
                            // the in-core path does.
                            self.pending = Some((pc, pv + v, pl));
                        } else {
                            out.push(&pc, pv, pl);
                            self.pending = Some((self.scratch.clone(), v, line));
                        }
                    }
                },
            }
        }
        Ok(out.len())
    }

    fn rewind(&mut self) -> TensorResult<()> {
        self.merge = RawMerge::open(&self.owner.runs, self.owner.dims.len(), &self.owner.perm)?;
        self.pending = None;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Streaming writers
// ---------------------------------------------------------------------

/// Writes `.tns` text from a sorted stream in one pass.
pub fn write_tns_stream<W: Write>(
    stream: &mut dyn SortedChunks,
    mut w: W,
    chunk_nnz: usize,
) -> TensorResult<()> {
    let mut chunk = CooChunk::default();
    let mut buf = String::new();
    loop {
        let n = stream.next_chunk(chunk_nnz, &mut chunk)?;
        if n == 0 {
            break;
        }
        for i in 0..n {
            buf.clear();
            for arr in &chunk.coords {
                buf.push_str(itoa(arr[i] as u64 + 1).as_str());
                buf.push(' ');
            }
            let v = chunk.vals[i];
            if !v.is_finite() {
                return Err(TensorError::invalid(
                    "tns",
                    "non-finite value cannot be written",
                ));
            }
            buf.push_str(&format!("{v}"));
            buf.push('\n');
            w.write_all(buf.as_bytes())?;
        }
    }
    Ok(())
}

/// Writes the SPT1 binary format from a sorted stream. The layout is
/// columnar, so the stream is rescanned once per mode plus once for the
/// values — `order + 1` sequential passes, constant memory.
pub fn write_bin_stream<W: Write>(
    stream: &mut dyn SortedChunks,
    mut w: W,
    chunk_nnz: usize,
) -> TensorResult<()> {
    let dims = stream.dims().to_vec();
    let nnz = stream.nnz();
    w.write_all(crate::io::BIN_MAGIC)?;
    w.write_all(&[dims.len() as u8])?;
    for &d in &dims {
        w.write_all(&d.to_le_bytes())?;
    }
    w.write_all(&nnz.to_le_bytes())?;
    let mut chunk = CooChunk::default();
    for m in 0..dims.len() {
        stream.rewind()?;
        loop {
            let n = stream.next_chunk(chunk_nnz, &mut chunk)?;
            if n == 0 {
                break;
            }
            for &i in &chunk.coords[m] {
                w.write_all(&i.to_le_bytes())?;
            }
        }
    }
    stream.rewind()?;
    loop {
        let n = stream.next_chunk(chunk_nnz, &mut chunk)?;
        if n == 0 {
            break;
        }
        for &v in &chunk.vals {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Allocation-light u64 decimal formatting for the hot `.tns` writer.
fn itoa(mut v: u64) -> String {
    if v == 0 {
        return "0".to_string();
    }
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CooSource, TnsSource};
    use std::io::BufReader;

    fn tmp() -> PathBuf {
        let d = std::env::temp_dir().join(format!("sptensor_spill_{:x}", rand_tag()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rand_tag() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64
            ^ (std::process::id() as u64) << 32
    }

    #[test]
    fn spilled_equals_sorted_incore() {
        let t = crate::synth::uniform_random(&[12, 9, 14], 400, 5);
        let dir = tmp();
        for chunk in [1usize, 7, 1000] {
            let opts = IngestOptions::new()
                .with_policy(DuplicatePolicy::Keep)
                .with_chunk_nnz(chunk);
            let spilled = SpilledTensor::ingest(CooSource::new(t.clone()), &opts, &dir).unwrap();
            assert_eq!(spilled.nnz(), t.nnz() as u64);
            let back = spilled.to_coo().unwrap();
            // uniform_random output is already identity-sorted and
            // duplicate-free, so the merged stream reproduces it exactly.
            assert_eq!(back, t, "chunk {chunk}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_sum_matches_incore_sum_across_boundaries() {
        let text = "1 2 3 1.0\n2 2 2 5.0\n1 2 3 4.0\n1 2 3 0.25\n";
        let dir = tmp();
        for chunk in [1usize, 2, 3, 64] {
            let opts = IngestOptions::new()
                .with_policy(DuplicatePolicy::Sum)
                .with_chunk_nnz(chunk);
            let spilled =
                SpilledTensor::ingest(TnsSource::new(BufReader::new(text.as_bytes())), &opts, &dir)
                    .unwrap();
            assert_eq!(spilled.nnz(), 2);
            let back = spilled.to_coo().unwrap();
            assert_eq!(back.coords_of(0), vec![0, 1, 2]);
            assert_eq!(back.values(), &[1.0 + 4.0 + 0.25, 5.0], "chunk {chunk}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_reject_names_the_incore_line() {
        let text = "1 2 3 1.0\n2 2 2 5.0\n1 2 3 4.0\n2 2 2 1.0\n";
        let dir = tmp();
        for chunk in [1usize, 2, 64] {
            let opts = IngestOptions::new().with_chunk_nnz(chunk);
            let err =
                SpilledTensor::ingest(TnsSource::new(BufReader::new(text.as_bytes())), &opts, &dir)
                    .expect_err("duplicates must reject");
            match err {
                TensorError::Duplicate { line, ref coords } => {
                    assert_eq!(line, 3, "chunk {chunk}: first file-order collision");
                    assert_eq!(coords, &[0, 1, 2]);
                }
                other => panic!("expected Duplicate, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resort_orders_by_perm_and_rewinds() {
        let t = crate::synth::uniform_random(&[10, 11, 12], 300, 8);
        let dir = tmp();
        let opts = IngestOptions::new()
            .with_policy(DuplicatePolicy::Keep)
            .with_chunk_nnz(37);
        let spilled = SpilledTensor::ingest(CooSource::new(t.clone()), &opts, &dir).unwrap();
        let perm = vec![2usize, 0, 1];
        let resorted = spilled.resort(&perm, &dir, &opts).unwrap();
        let back = resorted.to_coo().unwrap();
        let mut expect = t.clone();
        expect.sort_by_perm(&perm);
        assert!(back.is_sorted_by_perm(&perm));
        assert_eq!(back.nnz(), expect.nnz());
        // Same multiset; equal coords may tie-break differently only if
        // duplicates exist (uniform_random folds them, so exact).
        assert_eq!(back, expect);

        // Multi-pass: rewind and re-read must reproduce the stream.
        let mut s = resorted.stream().unwrap();
        let mut a = CooChunk::default();
        let mut b = CooChunk::default();
        s.next_chunk(usize::MAX, &mut a).unwrap();
        s.rewind().unwrap();
        s.next_chunk(usize::MAX, &mut b).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spilled_synth_source_is_bit_identical_to_batch_generate() {
        // The streaming pipeline's keystone: SynthSource → spill →
        // Sum-merge must reproduce DatasetSpec::generate exactly,
        // including the value-fold order of colliding coordinates.
        let cfg = crate::SynthConfig::tiny();
        let dir = tmp();
        for name in ["darpa", "fr_m", "uber"] {
            let spec = crate::synth::standin(name).unwrap();
            let batch = spec.generate(&cfg);
            for chunk in [997usize, 1 << 20] {
                let opts = IngestOptions::new()
                    .with_policy(DuplicatePolicy::Sum)
                    .with_chunk_nnz(chunk);
                let spilled = SpilledTensor::ingest(spec.source(&cfg), &opts, &dir).unwrap();
                assert_eq!(spilled.nnz(), batch.nnz() as u64, "{name} chunk {chunk}");
                let back = spilled.to_coo().unwrap();
                assert_eq!(back, batch, "{name} chunk {chunk}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_bin_writer_matches_incore_writer() {
        let t = crate::synth::uniform_random(&[8, 9, 10], 250, 4);
        let dir = tmp();
        let opts = IngestOptions::new()
            .with_policy(DuplicatePolicy::Keep)
            .with_chunk_nnz(29);
        let spilled = SpilledTensor::ingest(CooSource::new(t.clone()), &opts, &dir).unwrap();
        let mut streamed = Vec::new();
        write_bin_stream(&mut spilled.stream().unwrap(), &mut streamed, 41).unwrap();
        let mut incore = Vec::new();
        crate::io::write_bin(&t, &mut incore).unwrap();
        assert_eq!(streamed, incore, "byte-identical SPT1 output");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_tns_writer_matches_incore_writer() {
        let t = crate::synth::uniform_random(&[8, 9, 10], 120, 6);
        let dir = tmp();
        let opts = IngestOptions::new()
            .with_policy(DuplicatePolicy::Keep)
            .with_chunk_nnz(17);
        let spilled = SpilledTensor::ingest(CooSource::new(t.clone()), &opts, &dir).unwrap();
        let mut streamed = Vec::new();
        write_tns_stream(&mut spilled.stream().unwrap(), &mut streamed, 23).unwrap();
        let mut incore = Vec::new();
        crate::io::write_tns(&t, &mut incore).unwrap();
        assert_eq!(streamed, incore);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
