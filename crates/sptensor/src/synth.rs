//! Seeded synthetic tensor generators and paper-dataset stand-ins.
//!
//! The paper evaluates on 12 FROSTT/HaTen2 tensors (Table III) whose raw
//! files are hundreds of millions of nonzeros. This reproduction cannot ship
//! them, so each dataset gets a *stand-in*: a seeded generator tuned to match
//! the dataset's qualitative fingerprint —
//!
//! * relative mode extents (which mode is shortest/longest),
//! * mean nonzeros per slice and per fiber (preserved by scaling the mode
//!   extents proportionally to the nonzero budget),
//! * the skew of the nonzeros-per-slice distribution (Zipf exponent
//!   `slice_alpha`),
//! * the fiber-length distribution (power-law exponent `fiber_beta`, cutoff
//!   `max_fiber_len`, and an explicit singleton-fiber probability
//!   `p_singleton_fiber`) — the paper's Table II variable.
//!
//! The generators are the *independent variable* of the reproduction: every
//! figure in the paper turns on these distributions, so controlling them
//! directly lets each experiment exercise the same axis the paper varies.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{CooTensor, Index, Value};

/// Scale/seed configuration for stand-in generation.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Target nonzero count before duplicate folding (actual count can be
    /// slightly lower when generated coordinates collide).
    pub nnz: usize,
    /// Master seed; each dataset mixes in a hash of its name so different
    /// stand-ins are decorrelated under the same master seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            nnz: 300_000,
            seed: 0x5EED_CAFE,
        }
    }
}

impl SynthConfig {
    /// A smaller configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        SynthConfig {
            nnz: 5_000,
            seed: 0x5EED_CAFE,
        }
    }

    pub fn with_nnz(self, nnz: usize) -> Self {
        SynthConfig { nnz, ..self }
    }

    pub fn with_seed(self, seed: u64) -> Self {
        SynthConfig { seed, ..self }
    }
}

/// Generator recipe for one paper dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper abbreviation (e.g. `"darpa"`, `"fr_m"`, `"flick-4d"`).
    pub name: &'static str,
    /// Extents reported in Table III.
    pub paper_dims: &'static [u64],
    /// Nonzero count reported in Table III.
    pub paper_nnz: u64,
    /// Zipf exponent of the nonzeros-per-slice distribution (mode-0
    /// orientation). Higher → heavier slices → larger inter-block
    /// imbalance. Used as the starting guess when `slice_cv > 0`.
    pub slice_alpha: f64,
    /// Target coefficient of variation (stdev / mean) of nonzeros per
    /// non-empty slice. This is the *scale-invariant* form of Table II's
    /// "stdev #nnz per slc" column: naively shrinking a Zipf distribution
    /// concentrates it, so the exponent is re-calibrated by bisection at
    /// generation time to hit the paper's relative skew. `<= 0` disables
    /// calibration (plain `slice_alpha` is used).
    pub slice_cv: f64,
    /// Zipf exponent used for the middle-mode coordinates of each fiber.
    pub middle_alpha: f64,
    /// Power-law exponent of the fiber-length distribution. Lower → heavier
    /// fibers → larger inter-warp imbalance.
    pub fiber_beta: f64,
    /// Upper cutoff of the fiber-length power law.
    pub max_fiber_len: usize,
    /// Probability that a fiber is forced to a single nonzero (drives the
    /// CSL/COO classes of HB-CSF).
    pub p_singleton_fiber: f64,
}

/// Hard cap on any scaled mode extent; keeps the dense factor matrices of
/// CPD/MTTKRP (rows × R) within laptop memory for every stand-in.
pub const MAX_SCALED_DIM: Index = 500_000;

/// Modes at or below this extent are never scaled: short modes are a
/// structural feature of the paper's datasets (SPLATT's short-mode
/// scalability collapse in Fig. 7 depends on them).
pub const SHORT_MODE_KEEP: Index = 1_024;

impl DatasetSpec {
    /// Mode extents scaled for a reduced nonzero budget.
    ///
    /// The slice mode (mode 0) scales *linearly* with the budget so the mean
    /// nonzeros per slice — the quantity that drives thread-block load — is
    /// preserved. The remaining modes scale by the square root of the ratio,
    /// which keeps the per-slice coordinate space far larger than the
    /// per-slice nonzero count (no saturation) without inflating factor
    /// matrices. Short modes (≤ 1024 — e.g. freebase's 166-entry third mode
    /// or chicago-crime's 24/77/32) are kept verbatim: their shortness *is*
    /// the structural feature the paper exploits. Everything is clamped to
    /// `[16 or 256, MAX_SCALED_DIM]`.
    pub fn scaled_dims(&self, nnz: usize) -> Vec<Index> {
        let r = (nnz as f64 / self.paper_nnz as f64).min(1.0);
        self.paper_dims
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                if d <= SHORT_MODE_KEEP as u64 {
                    return d as Index;
                }
                let (factor, floor) = if m == 0 { (r, 16) } else { (r.sqrt(), 256) };
                let scaled = (d as f64 * factor).round() as u64;
                (scaled.min(u64::from(MAX_SCALED_DIM)) as Index).clamp(floor, MAX_SCALED_DIM)
            })
            .collect()
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.paper_dims.len()
    }

    /// Density from Table III numbers.
    pub fn paper_density(&self) -> f64 {
        let cells: f64 = self.paper_dims.iter().map(|&d| d as f64).product();
        self.paper_nnz as f64 / cells
    }

    /// The distribution knobs this spec feeds the structured generator.
    pub fn structure_params(&self) -> StructureParams {
        StructureParams {
            slice_alpha: self.slice_alpha,
            slice_cv: self.slice_cv,
            middle_alpha: self.middle_alpha,
            fiber_beta: self.fiber_beta,
            max_fiber_len: self.max_fiber_len,
            p_singleton_fiber: self.p_singleton_fiber,
        }
    }

    /// Generates the stand-in tensor. Deterministic in `(self, cfg)`.
    pub fn generate(&self, cfg: &SynthConfig) -> CooTensor {
        let dims = self.scaled_dims(cfg.nnz);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ fnv1a(self.name));
        generate_structured(&dims, cfg.nnz, &self.structure_params(), &mut rng)
    }

    /// Streaming counterpart of [`DatasetSpec::generate`]: a
    /// [`crate::TensorSource`] that draws the same entries one chunk at a time,
    /// so arbitrarily large stand-ins never materialize. Ingesting it
    /// under [`crate::io::DuplicatePolicy::Sum`] through the spill
    /// pipeline yields the exact tensor `generate` builds, bit for bit.
    pub fn source(&self, cfg: &SynthConfig) -> SynthSource {
        let dims = self.scaled_dims(cfg.nnz);
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ fnv1a(self.name));
        SynthSource::new(StructuredEntries::new(
            &dims,
            cfg.nnz,
            &self.structure_params(),
            rng,
        ))
    }
}

/// Distribution knobs for [`generate_structured`].
#[derive(Debug, Clone, Copy)]
pub struct StructureParams {
    pub slice_alpha: f64,
    /// Target slice-volume coefficient of variation; `<= 0` disables the
    /// exponent calibration and `slice_alpha` is used directly.
    pub slice_cv: f64,
    pub middle_alpha: f64,
    pub fiber_beta: f64,
    pub max_fiber_len: usize,
    pub p_singleton_fiber: f64,
}

impl Default for StructureParams {
    fn default() -> Self {
        StructureParams {
            slice_alpha: 1.0,
            slice_cv: 0.0,
            middle_alpha: 1.0,
            fiber_beta: 2.0,
            max_fiber_len: 128,
            p_singleton_fiber: 0.3,
        }
    }
}

/// All 12 stand-ins of the paper's Table III, in paper order
/// (seven 3-D tensors then five 4-D tensors).
pub fn standins() -> Vec<DatasetSpec> {
    vec![
        // -------- 3-D (Table II / Figs. 5-8, 14-15) --------
        DatasetSpec {
            // delicious: large J mode, short fibers, moderate slice skew.
            name: "deli",
            paper_dims: &[533_000, 17_000_000, 2_000_000],
            paper_nnz: 140_000_000,
            slice_alpha: 1.1,
            slice_cv: 3.85,
            middle_alpha: 1.0,
            fiber_beta: 2.8,
            max_fiber_len: 64,
            p_singleton_fiber: 0.50,
        },
        DatasetSpec {
            // nell1: hyper-sparse, moderately heavy fibers (stdev ~61).
            name: "nell1",
            paper_dims: &[3_000_000, 2_000_000, 25_000_000],
            paper_nnz: 144_000_000,
            slice_alpha: 1.25,
            slice_cv: 27.4,
            middle_alpha: 1.0,
            fiber_beta: 1.9,
            max_fiber_len: 1_024,
            p_singleton_fiber: 0.40,
        },
        DatasetSpec {
            // nell2: small extents, dense-ish, huge slice variance (27,983)
            // and heavy fibers (stdev 203) — a Table II pathology case.
            name: "nell2",
            paper_dims: &[12_000, 9_000, 29_000],
            paper_nnz: 77_000_000,
            slice_alpha: 1.7,
            slice_cv: 4.36,
            middle_alpha: 1.2,
            fiber_beta: 1.6,
            max_fiber_len: 4_096,
            p_singleton_fiber: 0.10,
        },
        DatasetSpec {
            // flickr 3-D: dominated by singleton fibers; mean slice work ~4.
            name: "flick-3d",
            paper_dims: &[320_000, 28_000_000, 2_000_000],
            paper_nnz: 113_000_000,
            slice_alpha: 1.2,
            slice_cv: 5.24,
            middle_alpha: 1.0,
            fiber_beta: 3.0,
            max_fiber_len: 16,
            p_singleton_fiber: 0.92,
        },
        DatasetSpec {
            // freebase-music: 23M×23M×166; all fibers singleton (stdev 0).
            name: "fr_m",
            paper_dims: &[23_000_000, 23_000_000, 166],
            paper_nnz: 99_000_000,
            slice_alpha: 0.9,
            slice_cv: 24.4,
            middle_alpha: 1.25,
            fiber_beta: 3.0,
            max_fiber_len: 1,
            p_singleton_fiber: 1.0,
        },
        DatasetSpec {
            // freebase-sampled: like fr_m, slightly flatter slices.
            name: "fr_s",
            paper_dims: &[39_000_000, 39_000_000, 532],
            paper_nnz: 140_000_000,
            slice_alpha: 0.8,
            slice_cv: 25.0,
            middle_alpha: 1.25,
            fiber_beta: 3.0,
            max_fiber_len: 1,
            p_singleton_fiber: 1.0,
        },
        DatasetSpec {
            // darpa: extreme skew in both slices (25,849) and fibers (8,588)
            // — the dataset that gains 22x from splitting (Fig. 5).
            name: "darpa",
            paper_dims: &[22_000, 22_000, 23_000_000],
            paper_nnz: 28_000_000,
            slice_alpha: 2.0,
            slice_cv: 20.3,
            middle_alpha: 1.6,
            fiber_beta: 1.0,
            max_fiber_len: 32_768,
            p_singleton_fiber: 0.20,
        },
        // -------- 4-D (Figs. 11-13, 16) --------
        DatasetSpec {
            name: "nips",
            paper_dims: &[2_482, 2_862, 14_036, 17],
            paper_nnz: 3_100_000,
            slice_alpha: 1.2,
            slice_cv: 5.0,
            middle_alpha: 1.0,
            fiber_beta: 2.0,
            max_fiber_len: 17,
            p_singleton_fiber: 0.30,
        },
        DatasetSpec {
            name: "enron",
            paper_dims: &[6_066, 5_699, 244_268, 1_176],
            paper_nnz: 5_400_000,
            slice_alpha: 1.5,
            slice_cv: 8.0,
            middle_alpha: 1.1,
            fiber_beta: 1.8,
            max_fiber_len: 512,
            p_singleton_fiber: 0.40,
        },
        DatasetSpec {
            // chicago-crime: tiny trailing modes, very dense (0.148).
            name: "ch-cr",
            paper_dims: &[6_186, 24, 77, 32],
            paper_nnz: 54_000_000,
            slice_alpha: 0.5,
            slice_cv: 1.0,
            middle_alpha: 0.6,
            fiber_beta: 1.6,
            max_fiber_len: 32,
            p_singleton_fiber: 0.05,
        },
        DatasetSpec {
            // flickr 4-D: flick-3d plus a date mode of 731.
            name: "flick-4d",
            paper_dims: &[320_000, 28_000_000, 2_000_000, 731],
            paper_nnz: 113_000_000,
            slice_alpha: 1.2,
            slice_cv: 5.24,
            middle_alpha: 1.0,
            fiber_beta: 3.0,
            max_fiber_len: 16,
            p_singleton_fiber: 0.92,
        },
        DatasetSpec {
            name: "uber",
            paper_dims: &[183, 24, 1_140, 1_717],
            paper_nnz: 3_300_000,
            slice_alpha: 0.6,
            slice_cv: 1.0,
            middle_alpha: 0.8,
            fiber_beta: 2.2,
            max_fiber_len: 64,
            p_singleton_fiber: 0.20,
        },
    ]
}

/// Looks up a stand-in by paper abbreviation.
pub fn standin(name: &str) -> Option<DatasetSpec> {
    standins().into_iter().find(|s| s.name == name)
}

/// Names of the seven 3-D stand-ins (the Table II / Figs. 5-8 population).
pub fn standin_names_3d() -> Vec<&'static str> {
    standins()
        .into_iter()
        .filter(|s| s.order() == 3)
        .map(|s| s.name)
        .collect()
}

/// Uniform-random tensor: every nonzero's coordinates i.i.d. uniform.
/// Duplicates are folded, so the final count can be slightly below `nnz`.
pub fn uniform_random(dims: &[Index], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims.to_vec());
    let mut coord = vec![0 as Index; dims.len()];
    for _ in 0..nnz {
        for (c, &d) in coord.iter_mut().zip(dims) {
            *c = rng.gen_range(0..d);
        }
        t.push(&coord, random_value(&mut rng));
    }
    finish(t)
}

/// Structured generator: slice volumes Zipf-distributed, fibers carved from
/// each slice with power-law lengths, distinct last-mode coordinates within
/// each fiber. This is the engine behind every [`DatasetSpec`].
///
/// Batch form of [`StructuredEntries`]: drains the pull generator into a
/// resident tensor, then canonicalizes (stable sort + duplicate fold).
pub fn generate_structured(
    dims: &[Index],
    nnz: usize,
    p: &StructureParams,
    rng: &mut ChaCha8Rng,
) -> CooTensor {
    let mut entries = StructuredEntries::new(dims, nnz, p, rng.clone());
    let mut t = CooTensor::new(dims.to_vec());
    while let Some((coord, v)) = entries.next_entry() {
        t.push(coord, v);
    }
    *rng = entries.into_rng();
    finish(t)
}

/// Resumable pull form of [`generate_structured`]: draws entries one at
/// a time with the *exact* RNG call sequence of the batch generator, so
/// draining it reproduces the batch output entry for entry while never
/// holding more than one fiber's last-mode picks in memory. The setup
/// state (per-slice counts, slice-id shuffle, samplers) is
/// `O(mode-0 extent)`, not `O(nnz)`.
pub struct StructuredEntries {
    rng: ChaCha8Rng,
    dims: Vec<Index>,
    p_singleton_fiber: f64,
    slice_counts: Vec<u32>,
    slice_ids: Vec<Index>,
    zipf_middle: Vec<Zipf>,
    fiber_len: PowerLawLen,
    last_extent: usize,
    /// Next slice rank to enter.
    rank: usize,
    /// Entries still owed by the current slice.
    remaining: usize,
    seen_middles: std::collections::HashSet<u64>,
    coord: Vec<Index>,
    /// Last-mode picks of the current fiber, partially emitted.
    picks: Vec<usize>,
    pick_pos: usize,
}

impl StructuredEntries {
    /// Runs the generator setup: slice-count sampling (with CV
    /// calibration), the rank → slice-id shuffle, and the middle-mode /
    /// fiber-length samplers — drawing from `rng` in the batch
    /// generator's order.
    pub fn new(dims: &[Index], nnz: usize, p: &StructureParams, mut rng: ChaCha8Rng) -> Self {
        assert!(dims.len() >= 2, "structured generator needs order >= 2");
        let order = dims.len();
        let i_extent = dims[0] as usize;

        // 1. Assign each nonzero to a slice: Zipf over ranks (exponent
        //    calibrated to the target coefficient of variation when one is
        //    set), then a random rank -> slice-index shuffle so heavy slices
        //    land anywhere.
        let count_seed = rng.gen::<u64>();
        let alpha = if p.slice_cv > 0.0 {
            calibrate_slice_alpha(i_extent, nnz, p.slice_cv, count_seed)
        } else {
            p.slice_alpha
        };
        let slice_counts = sample_slice_counts(i_extent, nnz, alpha, count_seed);
        let slice_ids = shuffled_identity(i_extent, &mut rng);

        // Middle-mode samplers (modes 1..order-1).
        let zipf_middle: Vec<Zipf> = dims[1..order - 1]
            .iter()
            .map(|&d| Zipf::new(d as usize, p.middle_alpha))
            .collect();
        let fiber_len = PowerLawLen::new(p.fiber_beta, p.max_fiber_len.max(1));

        StructuredEntries {
            rng,
            p_singleton_fiber: p.p_singleton_fiber,
            slice_counts,
            slice_ids,
            zipf_middle,
            fiber_len,
            last_extent: dims[order - 1] as usize,
            rank: 0,
            remaining: 0,
            seen_middles: std::collections::HashSet::new(),
            coord: vec![0 as Index; order],
            picks: Vec::new(),
            pick_pos: 0,
            dims: dims.to_vec(),
        }
    }

    pub fn dims(&self) -> &[Index] {
        &self.dims
    }

    /// Raw entries a full drain yields (duplicates included): exactly the
    /// configured nnz budget.
    pub fn total_entries(&self) -> u64 {
        self.slice_counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Recovers the RNG after a drain, in the exact state the batch
    /// generator leaves it.
    pub fn into_rng(self) -> ChaCha8Rng {
        self.rng
    }

    /// Draws the next raw entry (duplicates possible), or `None` when the
    /// nnz budget is exhausted. The returned coordinate slice is only
    /// valid until the next call.
    pub fn next_entry(&mut self) -> Option<(&[Index], Value)> {
        loop {
            if self.pick_pos < self.picks.len() {
                let last = self.coord.len() - 1;
                self.coord[last] = self.picks[self.pick_pos] as Index;
                self.pick_pos += 1;
                let v = random_value(&mut self.rng);
                return Some((&self.coord, v));
            }
            if self.remaining == 0 {
                // Advance to the next non-empty slice.
                loop {
                    if self.rank >= self.slice_counts.len() {
                        return None;
                    }
                    let count = self.slice_counts[self.rank];
                    let id = self.slice_ids[self.rank];
                    self.rank += 1;
                    if count > 0 {
                        self.coord[0] = id;
                        self.seen_middles.clear();
                        self.remaining = count as usize;
                        break;
                    }
                }
            }
            self.start_fiber();
        }
    }

    /// Draws one fiber's middle tuple and last-mode picks — one
    /// iteration of the batch generator's per-slice fiber loop.
    fn start_fiber(&mut self) {
        let Self {
            ref mut rng,
            ref zipf_middle,
            ref fiber_len,
            ref mut coord,
            ref mut seen_middles,
            ref mut picks,
            ref mut pick_pos,
            ref mut remaining,
            p_singleton_fiber,
            last_extent,
            ..
        } = *self;
        let order = coord.len();
        let want = if rng.gen::<f64>() < p_singleton_fiber {
            1
        } else {
            fiber_len.sample(rng)
        };
        let len = want.min(*remaining).min(last_extent);
        // Rejection-sample a middle tuple distinct within the slice.
        // The budget must survive steep middle Zipfs (a 20%-mass top
        // artist colliding inside a heavy slice): 128 draws pushes the
        // residual collision probability below 1e-6 even when most of
        // the popular mass is already used.
        for attempt in 0..128 {
            for (m, z) in zipf_middle.iter().enumerate() {
                coord[m + 1] = z.sample(rng) as Index;
            }
            let key = hash_middles(&coord[1..order - 1]);
            if seen_middles.insert(key) || attempt == 127 {
                break;
            }
        }
        // Distinct last-mode coordinates within the fiber.
        *picks = rand::seq::index::sample(rng, last_extent, len).into_vec();
        *pick_pos = 0;
        *remaining -= len;
    }
}

/// [`crate::TensorSource`] over [`StructuredEntries`]: benchmarks and the CLI
/// ingest stand-ins of any size without the full tensor ever being
/// resident. Entry ordinals serve as line numbers, so the spill-merge
/// tie-break replicates the batch generator's insertion order — which is
/// what makes the spilled Sum-policy stream bit-identical to
/// [`DatasetSpec::generate`].
pub struct SynthSource {
    entries: StructuredEntries,
    produced: u64,
}

impl SynthSource {
    pub fn new(entries: StructuredEntries) -> Self {
        SynthSource {
            entries,
            produced: 0,
        }
    }
}

impl crate::source::TensorSource for SynthSource {
    fn format_name(&self) -> &'static str {
        "synth"
    }

    fn declared_dims(&self) -> Option<Vec<Index>> {
        Some(self.entries.dims().to_vec())
    }

    fn nnz_hint(&self) -> Option<u64> {
        Some(self.entries.total_entries())
    }

    fn fill_chunk(
        &mut self,
        max_entries: usize,
        out: &mut crate::source::CooChunk,
    ) -> crate::TensorResult<usize> {
        out.reset(self.entries.dims().len());
        let mut appended = 0usize;
        while appended < max_entries {
            match self.entries.next_entry() {
                None => break,
                Some((coord, v)) => {
                    self.produced += 1;
                    out.push(coord, v, self.produced);
                    appended += 1;
                }
            }
        }
        Ok(appended)
    }
}

/// Sort canonically (stable, so duplicate groups keep insertion order —
/// the order the spill pipeline's merge reproduces) and fold coordinate
/// collisions.
fn finish(mut t: CooTensor) -> CooTensor {
    let perm = crate::dims::identity_perm(t.order());
    t.sort_by_perm_stable(&perm);
    t.fold_duplicates();
    t
}

fn random_value(rng: &mut ChaCha8Rng) -> Value {
    rng.gen_range(0.1..1.0)
}

fn shuffled_identity(n: usize, rng: &mut ChaCha8Rng) -> Vec<Index> {
    use rand::seq::SliceRandom;
    let mut v: Vec<Index> = (0..n as Index).collect();
    v.shuffle(rng);
    v
}

/// Samples the per-slice nonzero counts of a Zipf(`alpha`) assignment.
fn sample_slice_counts(i_extent: usize, nnz: usize, alpha: f64, seed: u64) -> Vec<u32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let zipf = Zipf::new(i_extent, alpha);
    let mut counts = vec![0u32; i_extent];
    for _ in 0..nnz {
        counts[zipf.sample(&mut rng)] += 1;
    }
    counts
}

/// Coefficient of variation (stdev / mean) over the *non-empty* slices —
/// the scale-invariant form of Table II's slice-skew column.
pub fn slice_cv(counts: &[u32]) -> f64 {
    let nonzero: Vec<f64> = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| c as f64)
        .collect();
    if nonzero.is_empty() {
        return 0.0;
    }
    let mean = nonzero.iter().sum::<f64>() / nonzero.len() as f64;
    let var = nonzero.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / nonzero.len() as f64;
    var.sqrt() / mean
}

/// Finds the Zipf exponent whose sampled slice-volume CV matches `target`.
///
/// CV is *not* monotone in the exponent: it rises with skew, peaks, then
/// collapses as the distribution concentrates into a handful of slices
/// (few non-empty slices → small relative spread). The search therefore
/// scans the rising flank coarsely, then bisects inside the first bracket
/// that crosses the target. If the target exceeds the attainable peak, the
/// peak's exponent is used. Deterministic in `seed`.
fn calibrate_slice_alpha(i_extent: usize, nnz: usize, target: f64, seed: u64) -> f64 {
    const STEP: f64 = 0.25;
    const MAX_ALPHA: f64 = 3.0;
    let cv_at = |alpha: f64| slice_cv(&sample_slice_counts(i_extent, nnz, alpha, seed));

    let mut prev_alpha = 0.0;
    let mut prev_cv = cv_at(0.0);
    if prev_cv >= target {
        return 0.0;
    }
    let mut best = (prev_cv, 0.0); // (peak cv, alpha) on the scanned grid
    let mut alpha = STEP;
    while alpha <= MAX_ALPHA + 1e-9 {
        let cv = cv_at(alpha);
        if cv >= target {
            // Bisect the rising bracket [prev_alpha, alpha].
            let (mut lo, mut hi) = (prev_alpha, alpha);
            for _ in 0..10 {
                let mid = 0.5 * (lo + hi);
                if cv_at(mid) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            return 0.5 * (lo + hi);
        }
        if cv < best.0 - 1e-9 && best.0 > 0.0 && alpha > 1.0 {
            // Past the peak without reaching the target: give up at the peak.
            return best.1;
        }
        if cv > best.0 {
            best = (cv, alpha);
        }
        prev_alpha = alpha;
        prev_cv = cv;
        alpha += STEP;
    }
    let _ = prev_cv;
    best.1
}

/// Hashes a middle-coordinate tuple for the per-slice fiber-identity set.
fn hash_middles(middles: &[Index]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &m in middles {
        for b in m.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// 64-bit FNV-1a; used only to mix dataset names into seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Zipf sampler over `0..n` ranks with exponent `alpha`
/// (`P(rank r) ∝ (r+1)^-alpha`), via a precomputed CDF and binary search.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf domain must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Discrete power-law length sampler: `P(len = l) ∝ l^-beta`, `1 <= l <= max`.
pub struct PowerLawLen {
    cdf: Vec<f64>,
}

impl PowerLawLen {
    pub fn new(beta: f64, max: usize) -> PowerLawLen {
        assert!(max >= 1);
        let mut cdf = Vec::with_capacity(max);
        let mut acc = 0.0f64;
        for l in 1..=max {
            acc += (l as f64).powf(-beta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        PowerLawLen { cdf }
    }

    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
            + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ModeStats;

    #[test]
    fn standins_cover_table_iii() {
        let all = standins();
        assert_eq!(all.len(), 12);
        assert_eq!(all.iter().filter(|s| s.order() == 3).count(), 7);
        assert_eq!(all.iter().filter(|s| s.order() == 4).count(), 5);
        // Unique names.
        let mut names: Vec<_> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(standin("darpa").is_some());
        assert!(standin("fr_m").is_some());
        assert!(standin("nope").is_none());
    }

    #[test]
    fn scaled_dims_preserve_mean_slice_volume() {
        let spec = standin("nell2").unwrap();
        let dims = spec.scaled_dims(300_000);
        // Paper mean slice volume: 77M / 12K ≈ 6.4k. Scaled: nnz / dims[0].
        let paper_mean = spec.paper_nnz as f64 / spec.paper_dims[0] as f64;
        let scaled_mean = 300_000.0 / dims[0] as f64;
        assert!(
            (scaled_mean / paper_mean - 1.0).abs() < 0.25,
            "mean slice volume drifted: paper {paper_mean}, scaled {scaled_mean}"
        );
    }

    #[test]
    fn scaled_dims_capped_and_floored() {
        let spec = standin("fr_s").unwrap();
        let dims = spec.scaled_dims(300_000);
        assert!(dims.iter().all(|&d| d <= MAX_SCALED_DIM));
        let chcr = standin("ch-cr").unwrap().scaled_dims(10_000);
        // Tiny modes survive (floored at min(extent, 16)).
        assert!(chcr[1] >= 16 && chcr[2] >= 16 && chcr[3] >= 16);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::tiny();
        let spec = standin("deli").unwrap();
        let a = spec.generate(&cfg);
        let b = spec.generate(&cfg);
        assert_eq!(a, b);
        let c = spec.generate(&cfg.with_seed(7));
        assert_ne!(a, c);
    }

    #[test]
    fn generated_tensors_are_valid_sorted_and_deduped() {
        let cfg = SynthConfig::tiny();
        for spec in standins() {
            let t = spec.generate(&cfg);
            t.validate().unwrap();
            assert!(t.is_sorted_by_perm(&crate::identity_perm(t.order())));
            assert!(t.nnz() > cfg.nnz / 2, "{} lost too many nnz", spec.name);
            assert!(t.nnz() <= cfg.nnz);
        }
    }

    #[test]
    fn freebase_standins_have_singleton_fibers() {
        // Table II reports stdev 0 for fr_m/fr_s: mode-0 fibers are
        // (essentially) all singletons. A tiny residue of length-2 fibers
        // is tolerated — very hot artists can collide within a heavy
        // user's slice despite the uniqueness retries.
        let cfg = SynthConfig::tiny();
        for name in ["fr_m", "fr_s"] {
            let t = standin(name).unwrap().generate(&cfg);
            let s = ModeStats::compute(&t, 0);
            assert!(
                s.singleton_fiber_fraction > 0.97,
                "{name}: singleton fraction {}",
                s.singleton_fiber_fraction
            );
            assert!(
                s.nnz_per_fiber.mean < 1.1,
                "{name}: mean fiber length {}",
                s.nnz_per_fiber.mean
            );
        }
    }

    #[test]
    fn darpa_standin_is_most_skewed() {
        let cfg = SynthConfig::tiny().with_nnz(20_000);
        let darpa = standin("darpa").unwrap().generate(&cfg);
        let deli = standin("deli").unwrap().generate(&cfg);
        let sd = ModeStats::compute(&darpa, 0);
        let sl = ModeStats::compute(&deli, 0);
        assert!(
            sd.nnz_per_fiber.stdev > 4.0 * sl.nnz_per_fiber.stdev,
            "darpa fiber stdev {} should dwarf deli {}",
            sd.nnz_per_fiber.stdev,
            sl.nnz_per_fiber.stdev
        );
        assert!(sd.nnz_per_slice.stdev > sl.nnz_per_slice.stdev);
    }

    #[test]
    fn flick_standin_is_singleton_dominated() {
        let cfg = SynthConfig::tiny();
        let t = standin("flick-3d").unwrap().generate(&cfg);
        let s = ModeStats::compute(&t, 0);
        assert!(s.singleton_fiber_fraction > 0.85);
    }

    #[test]
    fn uniform_random_respects_dims() {
        let t = uniform_random(&[10, 20, 30], 500, 1);
        t.validate().unwrap();
        assert!(t.nnz() > 400);
    }

    #[test]
    fn zipf_skew_increases_with_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let flat = Zipf::new(1000, 0.1);
        let steep = Zipf::new(1000, 2.0);
        let count_low =
            |z: &Zipf, rng: &mut ChaCha8Rng| (0..5000).filter(|_| z.sample(rng) < 10).count();
        let f = count_low(&flat, &mut rng);
        let s = count_low(&steep, &mut rng);
        assert!(
            s > 4 * f,
            "steep zipf should concentrate: flat={f}, steep={s}"
        );
    }

    #[test]
    fn power_law_len_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let p = PowerLawLen::new(1.5, 64);
        for _ in 0..1000 {
            let l = p.sample(&mut rng);
            assert!((1..=64).contains(&l));
        }
    }
}
