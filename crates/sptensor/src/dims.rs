//! Mode permutations and orientation helpers.
//!
//! A *mode orientation* for MTTKRP mode `n` of an order-`N` tensor is a
//! permutation of the modes that places mode `n` first (the "slice" level of
//! the CSF tree) and leaves the remaining modes in ascending order, matching
//! SPLATT's ALLMODE convention: the output mode owns the root level so the
//! kernel never needs atomics across slices.

use crate::Index;

/// A permutation of tensor modes. `perm[level] = original mode index` —
/// i.e. level 0 of a CSF tree built with this permutation enumerates the
/// indices of original mode `perm[0]`.
pub type ModePerm = Vec<usize>;

/// The identity permutation over `order` modes.
pub fn identity_perm(order: usize) -> ModePerm {
    (0..order).collect()
}

/// The orientation used for a mode-`mode` MTTKRP: `mode` first, the other
/// modes following in ascending original order.
///
/// ```
/// assert_eq!(sptensor::mode_orientation(3, 1), vec![1, 0, 2]);
/// assert_eq!(sptensor::mode_orientation(4, 3), vec![3, 0, 1, 2]);
/// ```
pub fn mode_orientation(order: usize, mode: usize) -> ModePerm {
    assert!(mode < order, "mode {mode} out of range for order {order}");
    let mut perm = Vec::with_capacity(order);
    perm.push(mode);
    perm.extend((0..order).filter(|&m| m != mode));
    perm
}

/// Validates that `perm` is a permutation of `0..order`.
pub fn is_valid_perm(perm: &[usize], order: usize) -> bool {
    if perm.len() != order {
        return false;
    }
    let mut seen = vec![false; order];
    for &p in perm {
        if p >= order || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Applies `perm` to a coordinate tuple: `out[level] = coord[perm[level]]`.
#[inline]
pub fn permute_coord(coord: &[Index], perm: &[usize], out: &mut Vec<Index>) {
    out.clear();
    out.extend(perm.iter().map(|&m| coord[m]));
}

/// Inverse permutation: if `perm[level] = mode`, then `inv[mode] = level`.
pub fn invert_perm(perm: &[usize]) -> ModePerm {
    let mut inv = vec![0usize; perm.len()];
    for (level, &mode) in perm.iter().enumerate() {
        inv[mode] = level;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_valid() {
        let p = identity_perm(5);
        assert!(is_valid_perm(&p, 5));
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn orientation_puts_mode_first() {
        for order in 1..6 {
            for mode in 0..order {
                let p = mode_orientation(order, mode);
                assert!(is_valid_perm(&p, order));
                assert_eq!(p[0], mode);
                // Remaining modes ascend.
                let rest: Vec<_> = p[1..].to_vec();
                let mut sorted = rest.clone();
                sorted.sort_unstable();
                assert_eq!(rest, sorted);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn orientation_rejects_bad_mode() {
        mode_orientation(3, 3);
    }

    #[test]
    fn invert_round_trips() {
        let p = vec![2, 0, 3, 1];
        let inv = invert_perm(&p);
        for (level, &mode) in p.iter().enumerate() {
            assert_eq!(inv[mode], level);
        }
    }

    #[test]
    fn permute_coord_reorders() {
        let coord = [10u32, 20, 30];
        let perm = mode_orientation(3, 2); // [2, 0, 1]
        let mut out = Vec::new();
        permute_coord(&coord, &perm, &mut out);
        assert_eq!(out, vec![30, 10, 20]);
    }

    #[test]
    fn invalid_perms_detected() {
        assert!(!is_valid_perm(&[0, 0, 1], 3));
        assert!(!is_valid_perm(&[0, 1], 3));
        assert!(!is_valid_perm(&[0, 1, 3], 3));
        assert!(is_valid_perm(&[2, 1, 0], 3));
    }
}
