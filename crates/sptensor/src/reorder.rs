//! Nonzero- and index-reordering strategies.
//!
//! The paper's conclusion lists "various reordering methods (Z-order
//! sorting, graph and hypergraph partitioning)" as complementary
//! optimizations to integrate with HB-CSF. This module implements the
//! lightweight members of that family:
//!
//! * [`morton_sort`] — Z-order (Morton) sorting of nonzeros, which
//!   clusters spatially-near nonzeros and improves factor-row reuse for
//!   nonzero-parallel kernels (HiCOO's layout idea applied to plain COO).
//! * [`relabel_mode_heavy_first`] — renumbers one mode's indices by
//!   descending slice volume. Since GPU kernels launch blocks in slice
//!   order, this is the classic LPT (longest-processing-time-first)
//!   heuristic applied to the block schedule.
//! * [`relabel_mode_random`] — seeded random renumbering, the control
//!   baseline for reordering experiments.
//!
//! All functions are value-preserving permutations: the returned tensor
//! holds exactly the same nonzeros (relabeling also returns the index map
//! so factor matrices / results can be permuted consistently).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{CooTensor, Index};

/// Sorts nonzeros by the Morton (Z-order) code of their coordinates.
/// Supports orders up to 8 (32 bits per coordinate, 128-bit keys hold
/// 8 × 16 interleaved bits; extents above 2^16 lose low-bit precision in
/// the interleave for order > 4, which only blurs — never breaks — the
/// ordering's locality).
pub fn morton_sort(t: &CooTensor) -> CooTensor {
    let order = t.order();
    assert!(order <= 8, "morton_sort supports order <= 8");
    let n = t.nnz();
    // Bits per coordinate that fit the 128-bit key.
    let bits = (128 / order).min(32) as u32;
    let mut keyed: Vec<(u128, u32)> = (0..n)
        .map(|z| {
            let mut key: u128 = 0;
            for b in (0..bits).rev() {
                for m in 0..order {
                    let c = t.mode_indices(m)[z];
                    let bit = if b < 32 { (c >> b) & 1 } else { 0 };
                    key = (key << 1) | bit as u128;
                }
            }
            (key, z as u32)
        })
        .collect();
    keyed.sort_unstable_by_key(|&(k, _)| k);

    let inds = (0..order)
        .map(|m| {
            let src = t.mode_indices(m);
            keyed.iter().map(|&(_, z)| src[z as usize]).collect()
        })
        .collect();
    let vals = keyed.iter().map(|&(_, z)| t.values()[z as usize]).collect();
    CooTensor::from_parts(t.dims().to_vec(), inds, vals)
}

/// Renumbers mode `mode` so the index with the most nonzeros becomes 0,
/// the next-heaviest 1, and so on (ties by original index, so the result
/// is deterministic). Returns the relabeled tensor and the map
/// `new_index[old_index]`.
pub fn relabel_mode_heavy_first(t: &CooTensor, mode: usize) -> (CooTensor, Vec<Index>) {
    let extent = t.dims()[mode] as usize;
    let mut volume = vec![0u32; extent];
    for &i in t.mode_indices(mode) {
        volume[i as usize] += 1;
    }
    let mut order_v: Vec<u32> = (0..extent as u32).collect();
    order_v.sort_by_key(|&i| (std::cmp::Reverse(volume[i as usize]), i));
    let mut map = vec![0 as Index; extent];
    for (new, &old) in order_v.iter().enumerate() {
        map[old as usize] = new as Index;
    }
    (apply_mode_map(t, mode, &map), map)
}

/// Renumbers mode `mode` with a seeded random permutation (the control
/// for reordering experiments). Returns the tensor and the map.
pub fn relabel_mode_random(t: &CooTensor, mode: usize, seed: u64) -> (CooTensor, Vec<Index>) {
    use rand::seq::SliceRandom;
    let extent = t.dims()[mode] as usize;
    let mut map: Vec<Index> = (0..extent as Index).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    map.shuffle(&mut rng);
    (apply_mode_map(t, mode, &map), map)
}

/// Applies `map` (a bijection on mode-`mode` indices) to every nonzero.
pub fn apply_mode_map(t: &CooTensor, mode: usize, map: &[Index]) -> CooTensor {
    assert_eq!(map.len(), t.dims()[mode] as usize, "map length mismatch");
    debug_assert!(is_bijection(map), "map must be a bijection");
    let inds = (0..t.order())
        .map(|m| {
            let src = t.mode_indices(m);
            if m == mode {
                src.iter().map(|&i| map[i as usize]).collect()
            } else {
                src.to_vec()
            }
        })
        .collect();
    CooTensor::from_parts(t.dims().to_vec(), inds, t.values().to_vec())
}

/// Permutes the rows of a dense factor to follow a relabeled mode:
/// `out.row(map[i]) = input.row(i)`. Keeps MTTKRP results consistent
/// across a relabel.
pub fn permute_factor_rows(rows: &[Vec<f32>], map: &[Index]) -> Vec<Vec<f32>> {
    assert_eq!(rows.len(), map.len());
    let mut out = vec![Vec::new(); rows.len()];
    for (i, row) in rows.iter().enumerate() {
        out[map[i] as usize] = row.clone();
    }
    out
}

fn is_bijection(map: &[Index]) -> bool {
    let mut seen = vec![false; map.len()];
    for &m in map {
        if m as usize >= map.len() || seen[m as usize] {
            return false;
        }
        seen[m as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::identity_perm;
    use crate::synth::uniform_random;

    fn entry_set(t: &CooTensor) -> Vec<(Vec<Index>, u32)> {
        let mut v: Vec<_> = t
            .iter_entries()
            .map(|e| (e.coords, e.val.to_bits()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn morton_preserves_entries() {
        let t = uniform_random(&[40, 50, 60], 800, 31);
        let m = morton_sort(&t);
        assert_eq!(entry_set(&m), entry_set(&t));
    }

    #[test]
    fn morton_clusters_neighbours() {
        // Two spatial clusters; after Morton sorting each cluster's
        // entries must be contiguous.
        let mut t = CooTensor::new(vec![256, 256, 256]);
        for d in 0..20u32 {
            t.push(&[d % 4, (d * 3) % 4, d % 4], 1.0); // cluster at origin
            t.push(&[200 + d % 4, 200, 200 + (d * 7) % 4], 2.0); // far cluster
        }
        let m = morton_sort(&t);
        // All value-1.0 entries precede all value-2.0 entries.
        let first_far = m.values().iter().position(|&v| v == 2.0).unwrap();
        assert!(m.values()[first_far..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn morton_order4_works() {
        let t = uniform_random(&[16, 16, 16, 16], 500, 32);
        let m = morton_sort(&t);
        assert_eq!(entry_set(&m), entry_set(&t));
    }

    #[test]
    fn heavy_first_sorts_volumes_descending() {
        let mut t = CooTensor::new(vec![4, 8, 8]);
        // volumes: idx0=1, idx1=3, idx2=0, idx3=2
        t.push(&[0, 0, 0], 1.0);
        for j in 0..3 {
            t.push(&[1, j, 0], 1.0);
        }
        for j in 0..2 {
            t.push(&[3, j, 1], 1.0);
        }
        let (r, map) = relabel_mode_heavy_first(&t, 0);
        assert_eq!(map, vec![2, 0, 3, 1]); // new labels per old index
                                           // New volumes must be non-increasing.
        let mut vol = vec![0u32; 4];
        for &i in r.mode_indices(0) {
            vol[i as usize] += 1;
        }
        assert!(vol.windows(2).all(|w| w[0] >= w[1]), "{vol:?}");
        assert_eq!(r.nnz(), t.nnz());
    }

    #[test]
    fn random_relabel_is_seeded_bijection() {
        let t = uniform_random(&[30, 10, 10], 300, 33);
        let (a, map_a) = relabel_mode_random(&t, 0, 5);
        let (b, map_b) = relabel_mode_random(&t, 0, 5);
        assert_eq!(a, b);
        assert_eq!(map_a, map_b);
        assert!(is_bijection(&map_a));
        let (c, _) = relabel_mode_random(&t, 0, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn relabel_then_inverse_round_trips() {
        let t = uniform_random(&[20, 15, 10], 250, 34);
        let (r, map) = relabel_mode_heavy_first(&t, 0);
        // Invert the map.
        let mut inv = vec![0 as Index; map.len()];
        for (old, &new) in map.iter().enumerate() {
            inv[new as usize] = old as Index;
        }
        let mut back = apply_mode_map(&r, 0, &inv);
        back.sort_by_perm(&identity_perm(3));
        let mut orig = t.clone();
        orig.sort_by_perm(&identity_perm(3));
        assert_eq!(back, orig);
    }

    #[test]
    fn permute_factor_rows_follows_map() {
        let rows = vec![vec![1.0f32], vec![2.0], vec![3.0]];
        let map = vec![2 as Index, 0, 1];
        let out = permute_factor_rows(&rows, &map);
        assert_eq!(out, vec![vec![2.0], vec![3.0], vec![1.0]]);
    }
}
