//! Shared typed errors for tensor I/O and structural validation.
//!
//! One enum serves both layers that can reject data: the readers in
//! [`crate::io`] (malformed text/binary input) and the `validate()`
//! methods on [`crate::CooTensor`] and the compressed formats in the
//! `tensor-formats` crate (violated structural invariants). Before this
//! existed every failure was a bare `String`; callers could print but
//! never branch. The enum is `thiserror`-shaped by hand — the workspace
//! vendors its dependencies and deliberately carries no proc-macro error
//! crate.

use std::fmt;

/// Result alias for fallible tensor operations.
pub type TensorResult<T> = Result<T, TensorError>;

/// Why a tensor could not be read or failed validation.
#[derive(Debug)]
pub enum TensorError {
    /// An underlying I/O failure (short read, broken pipe, ...).
    Io(std::io::Error),
    /// A malformed line in text input. `line` is 1-based, pointing at the
    /// offending line of the `.tns` file.
    Parse { line: usize, msg: String },
    /// A structural invariant violation: in-memory data (or a decoded
    /// binary file) that no valid tensor/format instance can have.
    /// `context` names the structure, e.g. `"coo"` or `"csf"`.
    Invalid { context: &'static str, msg: String },
    /// Two nonzeros with identical coordinates in input whose duplicate
    /// policy is [`crate::io::DuplicatePolicy::Reject`]. Which entry
    /// "wins" is a semantic choice the caller must make explicitly
    /// (sum? keep? abort?) — never a silent default. `line` is the
    /// 1-based line of the *second* occurrence (0 for binary input).
    Duplicate { line: usize, coords: Vec<u32> },
}

impl TensorError {
    /// A parse error at 0-based line `lineno` (stored 1-based).
    pub fn parse_at(lineno: usize, msg: impl Into<String>) -> Self {
        TensorError::Parse {
            line: lineno + 1,
            msg: msg.into(),
        }
    }

    /// An invariant violation in structure `context`.
    pub fn invalid(context: &'static str, msg: impl Into<String>) -> Self {
        TensorError::Invalid {
            context,
            msg: msg.into(),
        }
    }

    /// A rejected duplicate coordinate (1-based `line` of the second
    /// occurrence; pass 0 when the source has no line structure).
    pub fn duplicate(line: usize, coords: Vec<u32>) -> Self {
        TensorError::Duplicate { line, coords }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Io(e) => write!(f, "i/o error: {e}"),
            TensorError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            TensorError::Invalid { context, msg } => write!(f, "invalid {context}: {msg}"),
            TensorError::Duplicate { line, coords } => {
                let ones: Vec<String> = coords.iter().map(|&c| (c + 1).to_string()).collect();
                if *line > 0 {
                    write!(
                        f,
                        "line {line}: duplicate coordinate ({}) — pass an explicit \
                         DuplicatePolicy (Sum/Keep) to accept duplicates",
                        ones.join(", ")
                    )
                } else {
                    write!(
                        f,
                        "duplicate coordinate ({}) — pass an explicit DuplicatePolicy \
                         (Sum/Keep) to accept duplicates",
                        ones.join(", ")
                    )
                }
            }
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e)
    }
}

/// Lets `TensorResult` flow into `io::Result` call chains unchanged.
impl From<TensorError> for std::io::Error {
    fn from(e: TensorError) -> Self {
        match e {
            TensorError::Io(inner) => inner,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TensorError::parse_at(4, "bad value");
        assert_eq!(e.to_string(), "line 5: bad value");
        let e = TensorError::invalid("csf", "pointer not monotone");
        assert_eq!(e.to_string(), "invalid csf: pointer not monotone");
    }

    #[test]
    fn io_round_trip_preserves_kind() {
        let io_err = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short");
        let te: TensorError = io_err.into();
        let back: std::io::Error = te.into();
        assert_eq!(back.kind(), std::io::ErrorKind::UnexpectedEof);
        let back2: std::io::Error = TensorError::parse_at(0, "x").into();
        assert_eq!(back2.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error;
        let te = TensorError::from(std::io::Error::other("inner"));
        assert!(te.source().is_some());
        assert!(TensorError::parse_at(0, "x").source().is_none());
    }
}
