//! Typed tensor ingestion: the [`TensorSource`] API.
//!
//! This replaces the loose free-function readers (`read_tns`,
//! `read_tns_with`, `read_bin`) with a pull-based chunk protocol. A
//! [`TensorSource`] yields fixed-size batches of raw nonzeros
//! ([`CooChunk`]) instead of one resident `CooTensor`, so the same
//! parsers drive both the in-core assembly path ([`ingest`]) and the
//! bounded-memory spill path ([`crate::spill`]). Ingestion behavior —
//! duplicate policy, chunk size, host-memory budget, progress events —
//! is configured through [`IngestOptions`].
//!
//! Contract: for any chunk size, [`ingest`] produces exactly the tensor
//! (and exactly the errors, down to line numbers) that the legacy
//! whole-file readers produced. Chunk boundaries are invisible.

use std::io::{BufRead, Read, Seek, SeekFrom};
use std::sync::Arc;

use crate::io::DuplicatePolicy;
use crate::{CooTensor, Index, TensorError, TensorResult, Value};

/// One batch of raw nonzeros, structure-of-arrays: `coords[mode][i]` is
/// the mode-`mode` coordinate of the chunk's `i`-th entry. `lines[i]` is
/// the entry's 1-based source line (text) or ordinal (binary/synthetic),
/// carried so duplicate errors and merge tie-breaks can name the exact
/// source position regardless of how entries were batched or re-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooChunk {
    pub coords: Vec<Vec<Index>>,
    pub vals: Vec<Value>,
    pub lines: Vec<u64>,
}

impl CooChunk {
    /// An empty chunk shaped for `order` modes.
    pub fn with_order(order: usize) -> Self {
        CooChunk {
            coords: vec![Vec::new(); order],
            vals: Vec::new(),
            lines: Vec::new(),
        }
    }

    pub fn order(&self) -> usize {
        self.coords.len()
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Drops all entries, keeping the mode arity and capacity.
    pub fn clear(&mut self) {
        for arr in &mut self.coords {
            arr.clear();
        }
        self.vals.clear();
        self.lines.clear();
    }

    /// Re-shapes to `order` modes and clears.
    pub fn reset(&mut self, order: usize) {
        self.coords.resize(order, Vec::new());
        self.coords.truncate(order);
        self.clear();
    }

    /// Appends one entry.
    ///
    /// # Panics
    /// If `coords.len()` mismatches the chunk's arity.
    pub fn push(&mut self, coords: &[Index], val: Value, line: u64) {
        assert_eq!(coords.len(), self.order(), "chunk arity mismatch");
        for (arr, &c) in self.coords.iter_mut().zip(coords) {
            arr.push(c);
        }
        self.vals.push(val);
        self.lines.push(line);
    }

    /// The coordinate tuple of entry `i` (allocates; use the raw arrays
    /// in hot code).
    pub fn coords_of(&self, i: usize) -> Vec<Index> {
        self.coords.iter().map(|arr| arr[i]).collect()
    }

    /// Approximate resident bytes of one entry at this arity.
    pub fn entry_bytes(order: usize) -> usize {
        order * std::mem::size_of::<Index>()
            + std::mem::size_of::<Value>()
            + std::mem::size_of::<u64>()
    }
}

/// Progress events emitted through [`IngestOptions::with_progress`].
#[derive(Debug, Clone, PartialEq)]
pub enum IngestEvent {
    /// A chunk of raw entries was parsed from the source.
    ChunkRead { entries: usize, total_entries: u64 },
    /// A sorted run was spilled to disk (bounded-memory path only).
    RunSpilled { run: usize, entries: usize },
    /// The k-way merge over spilled runs began.
    MergeStarted { runs: usize },
    /// Ingestion finished with this many surviving entries.
    Done { entries: u64 },
}

/// Callback type for ingestion progress events.
pub type ProgressSink = Arc<dyn Fn(&IngestEvent) + Send + Sync>;

/// Ingestion configuration: duplicate policy, chunk size, host-memory
/// budget, and an optional progress-event sink. Built fluently:
///
/// ```
/// use sptensor::{IngestOptions, io::DuplicatePolicy};
/// let opts = IngestOptions::new()
///     .with_policy(DuplicatePolicy::Sum)
///     .with_chunk_nnz(1 << 16)
///     .with_host_budget(256 << 20);
/// assert_eq!(opts.policy(), DuplicatePolicy::Sum);
/// ```
#[derive(Clone, Default)]
pub struct IngestOptions {
    policy: DuplicatePolicy,
    chunk_nnz: Option<usize>,
    host_budget: Option<u64>,
    progress: Option<ProgressSink>,
}

impl std::fmt::Debug for IngestOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestOptions")
            .field("policy", &self.policy)
            .field("chunk_nnz", &self.chunk_nnz)
            .field("host_budget", &self.host_budget)
            .field("progress", &self.progress.as_ref().map(|_| "sink"))
            .finish()
    }
}

/// Default entries per chunk when neither a chunk size nor a budget is
/// configured (1M entries ≈ 16-28 MB of working set at orders 3-4).
pub const DEFAULT_CHUNK_NNZ: usize = 1 << 20;

impl IngestOptions {
    pub fn new() -> Self {
        IngestOptions::default()
    }

    pub fn with_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Entries per parsed chunk. Clamped to at least 1.
    pub fn with_chunk_nnz(mut self, chunk_nnz: usize) -> Self {
        self.chunk_nnz = Some(chunk_nnz.max(1));
        self
    }

    /// Peak-host-memory budget in bytes for the ingestion working set.
    /// Chunk sizes are derated so chunk buffers plus sort scratch stay
    /// within a fraction of this budget; the enforcement check (peak RSS
    /// below budget) is done by the caller against `/proc` ground truth.
    pub fn with_host_budget(mut self, bytes: u64) -> Self {
        self.host_budget = Some(bytes);
        self
    }

    /// Installs a progress-event callback.
    pub fn with_progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    pub fn policy(&self) -> DuplicatePolicy {
        self.policy
    }

    pub fn host_budget(&self) -> Option<u64> {
        self.host_budget
    }

    /// The chunk size actually used for an order-`order` source: the
    /// configured size, derated so one chunk's parse + sort working set
    /// (entry payload, sort permutation, spill buffer — roughly 4x the
    /// raw entry bytes) consumes at most a quarter of the host budget.
    pub fn effective_chunk_nnz(&self, order: usize) -> usize {
        let mut chunk = self.chunk_nnz.unwrap_or(DEFAULT_CHUNK_NNZ);
        if let Some(budget) = self.host_budget {
            let per_entry = 4 * CooChunk::entry_bytes(order.max(1)) as u64;
            let cap = (budget / 4) / per_entry.max(1);
            chunk = chunk.min(cap.max(1024) as usize);
        }
        chunk.max(1)
    }

    pub(crate) fn emit(&self, event: IngestEvent) {
        if let Some(sink) = &self.progress {
            sink(&event);
        }
    }
}

/// A pull-based producer of raw tensor nonzeros.
///
/// Sources yield entries in their native order, duplicates and all;
/// policy application, extent inference, and assembly are the ingestion
/// layer's job ([`ingest`] for in-core, [`crate::spill`] for
/// bounded-memory). Implementations validate what only they can see —
/// token syntax, header integrity, index ranges against declared
/// extents — and surface everything else untouched.
pub trait TensorSource {
    /// Short format tag used in error contexts (`"tns"`, `"spt1"`, ...).
    fn format_name(&self) -> &'static str;

    /// Mode extents declared by the source itself (binary header,
    /// synthetic spec). `None` when extents must be inferred from the
    /// data as per-mode maxima (`.tns`).
    fn declared_dims(&self) -> Option<Vec<Index>>;

    /// Total entries the source expects to yield, when known upfront.
    fn nnz_hint(&self) -> Option<u64>;

    /// Clears `out` and fills it with up to `max_entries` entries.
    /// Returns the number appended; `0` means the source is exhausted.
    fn fill_chunk(&mut self, max_entries: usize, out: &mut CooChunk) -> TensorResult<usize>;
}

// ---------------------------------------------------------------------
// .tns text source
// ---------------------------------------------------------------------

/// Streaming FROSTT `.tns` parser: one nonzero per line, 1-based
/// whitespace-separated indices then the value, `#` comments. Order is
/// inferred from the first data line; extents are left to the consumer
/// (per-mode maxima, as FROSTT itself defines them).
pub struct TnsSource<R: BufRead> {
    reader: R,
    /// 0-based count of physical lines consumed so far.
    lineno: usize,
    order: Option<usize>,
    line_buf: String,
    coords: Vec<Index>,
    done: bool,
}

impl<R: BufRead> TnsSource<R> {
    pub fn new(reader: R) -> Self {
        TnsSource {
            reader,
            lineno: 0,
            order: None,
            line_buf: String::new(),
            coords: Vec::new(),
            done: false,
        }
    }

    /// Parses one data line into `self.coords` + value. `Ok(None)` on EOF.
    fn next_entry(&mut self) -> TensorResult<Option<Value>> {
        loop {
            self.line_buf.clear();
            let n = self.reader.read_line(&mut self.line_buf)?;
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            let lineno = self.lineno;
            self.lineno += 1;
            let trimmed = self.line_buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut toks = trimmed.split_whitespace();
            // Count columns without collecting: indices are every token
            // but the last.
            let ntoks = trimmed.split_whitespace().count();
            if ntoks < 2 {
                return Err(bad_line(lineno, "need at least one index and a value"));
            }
            let n = ntoks - 1;
            match self.order {
                None => self.order = Some(n),
                Some(o) if o != n => {
                    return Err(bad_line(lineno, "inconsistent number of columns"));
                }
                _ => {}
            }
            self.coords.clear();
            for _ in 0..n {
                let tok = toks.next().expect("counted");
                let idx: u64 = tok.parse().map_err(|_| bad_line(lineno, "invalid index"))?;
                if idx == 0 {
                    return Err(bad_line(lineno, "indices are 1-based; got 0"));
                }
                // Two guards: the Index (u32) range, and — on 32-bit
                // hosts — the usize range row counts flow through.
                if idx > u64::from(Index::MAX) || usize::try_from(idx).is_err() {
                    return Err(bad_line(lineno, "index exceeds representable range"));
                }
                self.coords.push((idx - 1) as Index);
            }
            let v: Value = toks
                .next()
                .expect("counted")
                .parse()
                .map_err(|_| bad_line(lineno, "invalid value"))?;
            if !v.is_finite() {
                return Err(bad_line(lineno, "non-finite value (NaN/inf) rejected"));
            }
            return Ok(Some(v));
        }
    }
}

fn bad_line(lineno: usize, msg: &str) -> TensorError {
    TensorError::parse_at(lineno, msg)
}

impl<R: BufRead> TensorSource for TnsSource<R> {
    fn format_name(&self) -> &'static str {
        "tns"
    }

    fn declared_dims(&self) -> Option<Vec<Index>> {
        None
    }

    fn nnz_hint(&self) -> Option<u64> {
        None
    }

    fn fill_chunk(&mut self, max_entries: usize, out: &mut CooChunk) -> TensorResult<usize> {
        out.reset(self.order.unwrap_or(0));
        if self.done {
            return Ok(0);
        }
        let mut appended = 0usize;
        while appended < max_entries {
            match self.next_entry()? {
                None => break,
                Some(v) => {
                    if out.order() != self.coords.len() {
                        // First data line of the stream fixed the order
                        // just now; shape the chunk to match.
                        out.reset(self.coords.len());
                    }
                    out.push(&self.coords, v, self.lineno as u64);
                    appended += 1;
                }
            }
        }
        Ok(appended)
    }
}

// ---------------------------------------------------------------------
// SPT1 binary source
// ---------------------------------------------------------------------

/// Reads and validates an SPT1 header; returns `(dims, nnz)` and leaves
/// the reader at the first index byte. Shared by [`BinSource`] and the
/// legacy whole-file reader.
pub(crate) fn read_bin_header<R: Read>(r: &mut R) -> TensorResult<(Vec<Index>, u64)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != crate::io::BIN_MAGIC {
        return Err(TensorError::invalid("spt1", "not an SPT1 binary tensor"));
    }
    let mut b1 = [0u8; 1];
    r.read_exact(&mut b1)?;
    let order = b1[0] as usize;
    if order == 0 {
        return Err(TensorError::invalid("spt1", "zero order"));
    }
    let mut u32buf = [0u8; 4];
    let mut dims = Vec::with_capacity(order);
    for m in 0..order {
        r.read_exact(&mut u32buf)?;
        let d = u32::from_le_bytes(u32buf);
        if d == 0 {
            return Err(TensorError::invalid(
                "spt1",
                format!("mode {m} extent is zero"),
            ));
        }
        dims.push(d);
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let nnz = u64::from_le_bytes(u64buf);
    if usize::try_from(nnz).is_err() {
        return Err(TensorError::invalid("spt1", "nonzero count exceeds usize"));
    }
    // (order + 1) arrays of 4-byte entries must be addressable.
    if nnz
        .checked_mul(order as u64 + 1)
        .and_then(|n| n.checked_mul(4))
        .is_none()
    {
        return Err(TensorError::invalid("spt1", "total byte size overflows"));
    }
    Ok((dims, nnz))
}

/// Chunked reader for the crate's SPT1 binary format. The on-disk layout
/// is *columnar* (each mode's whole index array, then all values), so
/// batching entries requires one seek per mode per chunk — cheap against
/// a file, and the price of never holding more than one chunk of any
/// array in memory.
pub struct BinSource<R: Read + Seek> {
    reader: R,
    dims: Vec<Index>,
    nnz: u64,
    /// Next entry ordinal to yield.
    cursor: u64,
    /// Byte offset of the first index byte (end of header).
    data_start: u64,
}

impl<R: Read + Seek> BinSource<R> {
    /// Reads and validates the header, leaving the source positioned at
    /// the first entry.
    pub fn new(mut reader: R) -> TensorResult<Self> {
        let (dims, nnz) = read_bin_header(&mut reader)?;
        let data_start = reader.stream_position().map_err(TensorError::from)?;
        Ok(BinSource {
            reader,
            dims,
            nnz,
            cursor: 0,
            data_start,
        })
    }

    pub fn dims(&self) -> &[Index] {
        &self.dims
    }

    pub fn nnz(&self) -> u64 {
        self.nnz
    }
}

impl BinSource<std::io::BufReader<std::fs::File>> {
    /// Opens an SPT1 file for chunked reading.
    pub fn open(path: &std::path::Path) -> TensorResult<Self> {
        let f = std::fs::File::open(path)?;
        BinSource::new(std::io::BufReader::new(f))
    }
}

impl<R: Read + Seek> TensorSource for BinSource<R> {
    fn format_name(&self) -> &'static str {
        "spt1"
    }

    fn declared_dims(&self) -> Option<Vec<Index>> {
        Some(self.dims.clone())
    }

    fn nnz_hint(&self) -> Option<u64> {
        Some(self.nnz)
    }

    fn fill_chunk(&mut self, max_entries: usize, out: &mut CooChunk) -> TensorResult<usize> {
        let order = self.dims.len();
        out.reset(order);
        let remaining = self.nnz - self.cursor;
        let take = (max_entries as u64).min(remaining) as usize;
        if take == 0 {
            return Ok(0);
        }
        let mut bytes = vec![0u8; take * 4];
        for (m, arr) in out.coords.iter_mut().enumerate() {
            let off = self.data_start + (m as u64 * self.nnz + self.cursor) * 4;
            self.reader.seek(SeekFrom::Start(off))?;
            self.reader.read_exact(&mut bytes)?;
            arr.reserve(take);
            for w in bytes.chunks_exact(4) {
                let idx = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
                if idx >= self.dims[m] {
                    return Err(TensorError::invalid(
                        "spt1",
                        format!("mode {m} index {idx} out of range"),
                    ));
                }
                arr.push(idx);
            }
        }
        let voff = self.data_start + (order as u64 * self.nnz + self.cursor) * 4;
        self.reader.seek(SeekFrom::Start(voff))?;
        self.reader.read_exact(&mut bytes)?;
        for w in bytes.chunks_exact(4) {
            out.vals.push(f32::from_le_bytes([w[0], w[1], w[2], w[3]]));
        }
        for i in 0..take {
            out.lines.push(self.cursor + i as u64 + 1);
        }
        self.cursor += take as u64;
        Ok(take)
    }
}

// ---------------------------------------------------------------------
// In-memory source
// ---------------------------------------------------------------------

/// Adapts a resident [`CooTensor`] to the source protocol: entries in
/// stored order, ordinals as line numbers. The bridge that lets the
/// streaming pipeline and its tests run over in-memory data.
pub struct CooSource {
    t: CooTensor,
    cursor: usize,
}

impl CooSource {
    pub fn new(t: CooTensor) -> Self {
        CooSource { t, cursor: 0 }
    }
}

impl TensorSource for CooSource {
    fn format_name(&self) -> &'static str {
        "coo"
    }

    fn declared_dims(&self) -> Option<Vec<Index>> {
        Some(self.t.dims().to_vec())
    }

    fn nnz_hint(&self) -> Option<u64> {
        Some(self.t.nnz() as u64)
    }

    fn fill_chunk(&mut self, max_entries: usize, out: &mut CooChunk) -> TensorResult<usize> {
        out.reset(self.t.order());
        let take = max_entries.min(self.t.nnz() - self.cursor);
        let (lo, hi) = (self.cursor, self.cursor + take);
        for (m, arr) in out.coords.iter_mut().enumerate() {
            arr.extend_from_slice(&self.t.mode_indices(m)[lo..hi]);
        }
        out.vals.extend_from_slice(&self.t.values()[lo..hi]);
        out.lines.extend((lo..hi).map(|i| i as u64 + 1));
        self.cursor = hi;
        Ok(take)
    }
}

// ---------------------------------------------------------------------
// In-core assembly
// ---------------------------------------------------------------------

/// Assembles a resident [`CooTensor`] from any source, applying the
/// configured [`DuplicatePolicy`] with whole-stream semantics: the
/// dedup state persists across chunks, so the result (tensor or typed
/// error, including the reported line) is identical for every chunk
/// size — and identical to what the legacy whole-file readers produced.
pub fn ingest<S: TensorSource>(mut source: S, opts: &IngestOptions) -> TensorResult<CooTensor> {
    use std::collections::HashMap;

    let declared = source.declared_dims();
    let policy = opts.policy();
    let mut inds: Vec<Vec<Index>> = Vec::new();
    let mut vals: Vec<Value> = Vec::new();
    let mut order: Option<usize> = None;
    // First-occurrence index of each coordinate tuple (Reject/Sum only).
    let mut seen: HashMap<Vec<Index>, usize> = HashMap::new();
    let mut chunk = CooChunk::default();
    let mut total: u64 = 0;

    loop {
        let chunk_nnz = opts.effective_chunk_nnz(order.unwrap_or(3));
        let n = source.fill_chunk(chunk_nnz, &mut chunk)?;
        if n == 0 {
            break;
        }
        total += n as u64;
        match order {
            None => {
                order = Some(chunk.order());
                inds = vec![Vec::new(); chunk.order()];
            }
            Some(o) if o != chunk.order() => {
                return Err(TensorError::invalid(
                    source.format_name(),
                    "source changed arity mid-stream",
                ));
            }
            _ => {}
        }
        for i in 0..n {
            let coords = chunk.coords_of(i);
            let v = chunk.vals[i];
            match policy {
                DuplicatePolicy::Keep => {}
                _ => {
                    if let Some(&first) = seen.get(&coords) {
                        match policy {
                            DuplicatePolicy::Reject => {
                                return Err(TensorError::duplicate(
                                    chunk.lines[i] as usize,
                                    coords,
                                ));
                            }
                            DuplicatePolicy::Sum => {
                                vals[first] += v;
                                continue;
                            }
                            DuplicatePolicy::Keep => unreachable!(),
                        }
                    }
                    seen.insert(coords.clone(), vals.len());
                }
            }
            for (arr, &c) in inds.iter_mut().zip(&coords) {
                arr.push(c);
            }
            vals.push(v);
        }
        opts.emit(IngestEvent::ChunkRead {
            entries: n,
            total_entries: total,
        });
    }

    let t = match declared {
        Some(dims) => {
            if vals.is_empty() {
                CooTensor::new(dims)
            } else {
                CooTensor::from_parts(dims, inds, vals)
            }
        }
        None => {
            let order = order.ok_or_else(|| {
                TensorError::invalid(source.format_name(), "no data lines in input")
            })?;
            let mut dims = Vec::with_capacity(order);
            for arr in &inds {
                let max = arr.iter().copied().max().unwrap_or(0);
                let extent = max.checked_add(1).ok_or_else(|| {
                    TensorError::invalid(source.format_name(), "mode extent overflows u32")
                })?;
                dims.push(extent);
            }
            CooTensor::from_parts(dims, inds, vals)
        }
    };
    opts.emit(IngestEvent::Done {
        entries: t.nnz() as u64,
    });
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn tns(text: &str) -> TnsSource<BufReader<&[u8]>> {
        TnsSource::new(BufReader::new(text.as_bytes()))
    }

    #[test]
    fn ingest_matches_simple_document() {
        let t = ingest(tns("1 2 3 1.5\n3 2 1 2.5\n"), &IngestOptions::new()).unwrap();
        assert_eq!(t.dims(), &[3, 2, 3]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.values(), &[1.5, 2.5]);
    }

    #[test]
    fn ingest_is_chunk_size_invariant() {
        let text = "1 1 1 1.0\n2 2 2 2.0\n3 3 3 3.0\n1 2 3 4.0\n2 3 1 5.0\n";
        let base = ingest(tns(text), &IngestOptions::new()).unwrap();
        for chunk in [1usize, 2, 3, 7, 64] {
            let t = ingest(tns(text), &IngestOptions::new().with_chunk_nnz(chunk)).unwrap();
            assert_eq!(t, base, "chunk size {chunk} changed the result");
        }
    }

    #[test]
    fn duplicate_across_chunk_boundary_still_rejected_with_line() {
        // Entries 1 and 3 collide; chunk size 1 puts them in different
        // chunks, but the error must still name line 3.
        let text = "1 2 3 1.0\n2 2 2 5.0\n1 2 3 4.0\n";
        let err = ingest(tns(text), &IngestOptions::new().with_chunk_nnz(1))
            .expect_err("duplicate must reject");
        match err {
            TensorError::Duplicate { line, ref coords } => {
                assert_eq!(line, 3);
                assert_eq!(coords, &[0, 1, 2]);
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
    }

    #[test]
    fn sum_folds_across_chunk_boundaries() {
        let text = "1 2 3 1.0\n2 2 2 5.0\n1 2 3 4.0\n";
        for chunk in [1usize, 2, 16] {
            let t = ingest(
                tns(text),
                &IngestOptions::new()
                    .with_policy(DuplicatePolicy::Sum)
                    .with_chunk_nnz(chunk),
            )
            .unwrap();
            assert_eq!(t.nnz(), 2);
            assert_eq!(t.values(), &[5.0, 5.0], "chunk size {chunk}");
        }
    }

    #[test]
    fn bin_source_round_trips_chunked() {
        let t = crate::synth::uniform_random(&[20, 30, 40], 500, 9);
        let mut buf = Vec::new();
        crate::io::write_bin(&t, &mut buf).unwrap();
        for chunk in [1usize, 7, 100, 1 << 20] {
            let src = BinSource::new(std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(src.nnz(), t.nnz() as u64);
            let back = ingest(
                src,
                &IngestOptions::new()
                    .with_policy(DuplicatePolicy::Keep)
                    .with_chunk_nnz(chunk),
            )
            .unwrap();
            assert_eq!(back, t, "chunk size {chunk}");
        }
    }

    #[test]
    fn coo_source_is_identity() {
        let t = crate::synth::uniform_random(&[9, 9, 9], 200, 3);
        let back = ingest(
            CooSource::new(t.clone()),
            &IngestOptions::new().with_policy(DuplicatePolicy::Keep),
        )
        .unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn budget_derates_chunk_size() {
        let opts = IngestOptions::new()
            .with_chunk_nnz(1 << 24)
            .with_host_budget(64 << 20);
        assert!(opts.effective_chunk_nnz(3) < 1 << 24);
        let unbounded = IngestOptions::new().with_chunk_nnz(1 << 24);
        assert_eq!(unbounded.effective_chunk_nnz(3), 1 << 24);
    }

    #[test]
    fn progress_events_fire() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let chunks = Arc::new(AtomicUsize::new(0));
        let c2 = chunks.clone();
        let opts = IngestOptions::new()
            .with_chunk_nnz(2)
            .with_progress(Arc::new(move |e: &IngestEvent| {
                if matches!(e, IngestEvent::ChunkRead { .. }) {
                    c2.fetch_add(1, Ordering::Relaxed);
                }
            }));
        let text = "1 1 1 1.0\n2 2 2 2.0\n3 3 3 3.0\n";
        ingest(tns(text), &opts).unwrap();
        assert_eq!(chunks.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_tns_is_typed_error() {
        let err = ingest(tns("# only comments\n"), &IngestOptions::new());
        assert!(matches!(err, Err(TensorError::Invalid { .. })));
    }
}
