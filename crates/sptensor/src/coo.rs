//! Canonical coordinate-format (COO) sparse tensor.
//!
//! COO is the paper's baseline representation (Section III-A): each nonzero
//! stores one index per mode plus its value. We keep a structure-of-arrays
//! layout (one index array per mode) so that per-mode sorting, CSF
//! construction, and the MTTKRP kernels all stream contiguous memory.

use crate::dims::{is_valid_perm, ModePerm};
use crate::{Index, Value};

/// A single nonzero: its full coordinate tuple and value.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub coords: Vec<Index>,
    pub val: Value,
}

/// An order-`N` sparse tensor in coordinate format.
///
/// Invariants (checked by [`CooTensor::validate`] and upheld by all
/// constructors): every index array has the same length as `vals`, and every
/// stored index is strictly less than the corresponding mode's extent.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    dims: Vec<Index>,
    /// `inds[mode][z]` is the mode-`mode` coordinate of nonzero `z`.
    inds: Vec<Vec<Index>>,
    vals: Vec<Value>,
}

impl CooTensor {
    /// An empty tensor with the given mode extents.
    ///
    /// # Panics
    /// If `dims` is empty or any extent is zero.
    pub fn new(dims: Vec<Index>) -> Self {
        assert!(!dims.is_empty(), "tensor must have at least one mode");
        assert!(dims.iter().all(|&d| d > 0), "mode extents must be positive");
        let order = dims.len();
        CooTensor {
            dims,
            inds: vec![Vec::new(); order],
            vals: Vec::new(),
        }
    }

    /// Builds a tensor from an entry list.
    ///
    /// # Panics
    /// If any entry's order mismatches `dims` or an index is out of range.
    pub fn from_entries(dims: Vec<Index>, entries: impl IntoIterator<Item = Entry>) -> Self {
        let mut t = CooTensor::new(dims);
        for e in entries {
            t.push(&e.coords, e.val);
        }
        t
    }

    /// Builds directly from parallel arrays (one index vector per mode).
    ///
    /// # Panics
    /// If array lengths disagree or any index is out of range.
    pub fn from_parts(dims: Vec<Index>, inds: Vec<Vec<Index>>, vals: Vec<Value>) -> Self {
        assert_eq!(inds.len(), dims.len(), "one index array per mode required");
        for (m, arr) in inds.iter().enumerate() {
            assert_eq!(arr.len(), vals.len(), "index array {m} length mismatch");
            assert!(
                arr.iter().all(|&i| i < dims[m]),
                "mode-{m} index out of range"
            );
        }
        CooTensor { dims, inds, vals }
    }

    /// Appends one nonzero.
    ///
    /// # Panics
    /// If `coords.len() != order` or any coordinate is out of range.
    pub fn push(&mut self, coords: &[Index], val: Value) {
        assert_eq!(coords.len(), self.order(), "coordinate arity mismatch");
        for (m, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < d, "mode-{m} index {c} out of range (extent {d})");
        }
        for (arr, &c) in self.inds.iter_mut().zip(coords) {
            arr.push(c);
        }
        self.vals.push(val);
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode extents.
    #[inline]
    pub fn dims(&self) -> &[Index] {
        &self.dims
    }

    /// Number of stored nonzeros (duplicates count until folded).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The index array of one mode (length [`nnz`](Self::nnz)).
    #[inline]
    pub fn mode_indices(&self, mode: usize) -> &[Index] {
        &self.inds[mode]
    }

    /// All values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// Mutable access to values (structure is fixed; only magnitudes change).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.vals
    }

    /// The coordinate tuple of nonzero `z`.
    pub fn coords_of(&self, z: usize) -> Vec<Index> {
        self.inds.iter().map(|arr| arr[z]).collect()
    }

    /// Iterator over entries (allocates one coordinate vector per item; use
    /// the raw arrays in hot code).
    pub fn iter_entries(&self) -> impl Iterator<Item = Entry> + '_ {
        (0..self.nnz()).map(move |z| Entry {
            coords: self.coords_of(z),
            val: self.vals[z],
        })
    }

    /// Fraction of cells that are nonzero: `nnz / prod(dims)` in `f64`.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.dims.iter().map(|&d| d as f64).product();
        self.nnz() as f64 / cells
    }

    /// Checks the structural invariants. All constructors already enforce
    /// them; this exists for tests and for data read from external files.
    pub fn validate(&self) -> Result<(), crate::TensorError> {
        let fail = |msg: String| Err(crate::TensorError::invalid("coo", msg));
        if self.dims.is_empty() {
            return fail("empty dims".into());
        }
        for (m, arr) in self.inds.iter().enumerate() {
            if arr.len() != self.vals.len() {
                return fail(format!("mode {m} index array length mismatch"));
            }
            if let Some(&bad) = arr.iter().find(|&&i| i >= self.dims[m]) {
                return fail(format!("mode {m} index {bad} >= extent {}", self.dims[m]));
            }
        }
        Ok(())
    }

    /// Sorts nonzeros lexicographically by the coordinates *as reordered by
    /// `perm`* — i.e. primary key `inds[perm[0]]`, secondary `inds[perm[1]]`,
    /// and so on. This is the preparation step for building a CSF tree whose
    /// level `l` enumerates mode `perm[l]`.
    ///
    /// # Panics
    /// If `perm` is not a permutation of the modes.
    pub fn sort_by_perm(&mut self, perm: &ModePerm) {
        assert!(
            is_valid_perm(perm, self.order()),
            "invalid mode permutation"
        );
        let n = self.nnz();
        let mut order: Vec<u32> = (0..n as u32).collect();
        {
            let inds = &self.inds;
            order.sort_unstable_by(|&a, &b| {
                for &m in perm {
                    let (ia, ib) = (inds[m][a as usize], inds[m][b as usize]);
                    match ia.cmp(&ib) {
                        core::cmp::Ordering::Equal => continue,
                        other => return other,
                    }
                }
                core::cmp::Ordering::Equal
            });
        }
        self.apply_order(&order);
    }

    /// Like [`CooTensor::sort_by_perm`], but entries with identical
    /// coordinate tuples keep their original relative order. This makes
    /// the canonical sort a *total*, algorithm-independent order for
    /// data still carrying duplicates — the same (coords, arrival) key
    /// the external spill-merge sorts by, so in-core and out-of-core
    /// pipelines fold duplicates in the same value order bit for bit.
    ///
    /// # Panics
    /// If `perm` is not a permutation of the modes.
    pub fn sort_by_perm_stable(&mut self, perm: &ModePerm) {
        assert!(
            is_valid_perm(perm, self.order()),
            "invalid mode permutation"
        );
        let n = self.nnz();
        let mut order: Vec<u32> = (0..n as u32).collect();
        {
            let inds = &self.inds;
            order.sort_unstable_by(|&a, &b| {
                for &m in perm {
                    let (ia, ib) = (inds[m][a as usize], inds[m][b as usize]);
                    match ia.cmp(&ib) {
                        core::cmp::Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.cmp(&b)
            });
        }
        self.apply_order(&order);
    }

    /// True if the nonzeros are sorted under `perm` (ties allowed).
    pub fn is_sorted_by_perm(&self, perm: &ModePerm) -> bool {
        (1..self.nnz()).all(|z| {
            for &m in perm {
                match self.inds[m][z - 1].cmp(&self.inds[m][z]) {
                    core::cmp::Ordering::Less => return true,
                    core::cmp::Ordering::Greater => return false,
                    core::cmp::Ordering::Equal => continue,
                }
            }
            true
        })
    }

    /// Sums values of nonzeros with identical coordinates. Requires the
    /// tensor to be sorted (any orientation); the relative order of surviving
    /// entries is preserved. Returns the number of folded duplicates.
    pub fn fold_duplicates(&mut self) -> usize {
        let n = self.nnz();
        if n == 0 {
            return 0;
        }
        let order = self.order();
        let mut write = 0usize;
        for read in 1..n {
            let same = (0..order).all(|m| self.inds[m][read] == self.inds[m][write]);
            if same {
                self.vals[write] += self.vals[read];
            } else {
                write += 1;
                for m in 0..order {
                    self.inds[m][write] = self.inds[m][read];
                }
                self.vals[write] = self.vals[read];
            }
        }
        let kept = write + 1;
        for arr in &mut self.inds {
            arr.truncate(kept);
        }
        self.vals.truncate(kept);
        n - kept
    }

    /// Reorders all parallel arrays by `order` (a permutation of `0..nnz`).
    fn apply_order(&mut self, order: &[u32]) {
        for arr in &mut self.inds {
            let reordered: Vec<Index> = order.iter().map(|&z| arr[z as usize]).collect();
            *arr = reordered;
        }
        self.vals = order.iter().map(|&z| self.vals[z as usize]).collect();
    }

    /// A copy of this tensor with its modes physically permuted:
    /// `out.dims()[l] == self.dims()[perm[l]]` and each nonzero's coordinate
    /// tuple reordered to match. Useful for testing mode-generic code.
    pub fn permute_modes(&self, perm: &ModePerm) -> CooTensor {
        assert!(
            is_valid_perm(perm, self.order()),
            "invalid mode permutation"
        );
        let dims = perm.iter().map(|&m| self.dims[m]).collect();
        let inds = perm.iter().map(|&m| self.inds[m].clone()).collect();
        CooTensor {
            dims,
            inds,
            vals: self.vals.clone(),
        }
    }

    /// Sum of all values; cheap sanity invariant preserved by every format
    /// conversion (splitting fibers/slices never changes the value multiset).
    pub fn value_sum(&self) -> f64 {
        self.vals.iter().map(|&v| v as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::identity_perm;

    fn small() -> CooTensor {
        let mut t = CooTensor::new(vec![4, 5, 6]);
        t.push(&[3, 4, 5], 1.0);
        t.push(&[0, 0, 0], 2.0);
        t.push(&[0, 2, 1], 3.0);
        t.push(&[3, 4, 0], 4.0);
        t
    }

    #[test]
    fn push_and_query() {
        let t = small();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.coords_of(0), vec![3, 4, 5]);
        assert_eq!(t.values()[1], 2.0);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_oob() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[2, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_rejects_wrong_arity() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[1], 1.0);
    }

    #[test]
    fn sort_identity_orders_lexicographically() {
        let mut t = small();
        t.sort_by_perm(&identity_perm(3));
        assert!(t.is_sorted_by_perm(&identity_perm(3)));
        assert_eq!(t.coords_of(0), vec![0, 0, 0]);
        assert_eq!(t.coords_of(1), vec![0, 2, 1]);
        assert_eq!(t.coords_of(2), vec![3, 4, 0]);
        assert_eq!(t.coords_of(3), vec![3, 4, 5]);
    }

    #[test]
    fn sort_by_nonidentity_perm() {
        let mut t = small();
        let perm = vec![2, 0, 1]; // primary key: mode 2
        t.sort_by_perm(&perm);
        assert!(t.is_sorted_by_perm(&perm));
        let mode2: Vec<_> = t.mode_indices(2).to_vec();
        let mut sorted = mode2.clone();
        sorted.sort_unstable();
        assert_eq!(mode2, sorted);
    }

    #[test]
    fn fold_duplicates_sums_values() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 1], 1.0);
        t.push(&[0, 1], 2.5);
        t.push(&[1, 1], 4.0);
        t.sort_by_perm(&identity_perm(2));
        let folded = t.fold_duplicates();
        assert_eq!(folded, 1);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.values(), &[3.5, 4.0]);
    }

    #[test]
    fn fold_duplicates_empty_ok() {
        let mut t = CooTensor::new(vec![3]);
        assert_eq!(t.fold_duplicates(), 0);
    }

    #[test]
    fn density_small() {
        let t = small();
        let expected = 4.0 / (4.0 * 5.0 * 6.0);
        assert!((t.density() - expected).abs() < 1e-12);
    }

    #[test]
    fn permute_modes_round_trip() {
        let t = small();
        let perm = vec![1, 2, 0];
        let p = t.permute_modes(&perm);
        assert_eq!(p.dims(), &[5, 6, 4]);
        assert_eq!(p.coords_of(0), vec![4, 5, 3]);
        let inv = crate::dims::invert_perm(&perm);
        let back = p.permute_modes(&inv);
        assert_eq!(back, t);
    }

    #[test]
    fn value_sum_stable_under_sort() {
        let mut t = small();
        let before = t.value_sum();
        t.sort_by_perm(&vec![2, 1, 0]);
        assert_eq!(before, t.value_sum());
    }
}
