//! Property-based invariants of the COO core.

use proptest::prelude::*;
use sptensor::dims::{identity_perm, invert_perm, mode_orientation};
use sptensor::{CooTensor, Entry};

/// Strategy: a small random tensor of order 2-4.
fn arb_tensor() -> impl Strategy<Value = CooTensor> {
    (2usize..=4)
        .prop_flat_map(|order| {
            let dims = proptest::collection::vec(1u32..12, order);
            dims.prop_flat_map(move |dims| {
                let entry = dims.iter().map(|&d| (0..d).boxed()).collect::<Vec<_>>();
                let coords = entry;
                let one = (
                    coords.into_iter().collect::<Vec<BoxedStrategy<u32>>>(),
                    -10.0f32..10.0,
                )
                    .prop_map(|(c, v)| Entry { coords: c, val: v });
                proptest::collection::vec(one, 0..60)
                    .prop_map(move |es| CooTensor::from_entries(dims.clone(), es))
            })
        })
        .boxed()
}

proptest! {
    #[test]
    fn sort_preserves_multiset(t in arb_tensor()) {
        let mut sorted = t.clone();
        sorted.sort_by_perm(&identity_perm(t.order()));
        prop_assert!(sorted.is_sorted_by_perm(&identity_perm(t.order())));
        prop_assert_eq!(sorted.nnz(), t.nnz());
        // Same entries, order-insensitively.
        let mut a: Vec<_> = t.iter_entries().map(|e| (e.coords, e.val.to_bits())).collect();
        let mut b: Vec<_> = sorted.iter_entries().map(|e| (e.coords, e.val.to_bits())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sorting_under_any_orientation_sorts(t in arb_tensor(), mode_sel in 0usize..4) {
        let mode = mode_sel % t.order();
        let perm = mode_orientation(t.order(), mode);
        let mut s = t.clone();
        s.sort_by_perm(&perm);
        prop_assert!(s.is_sorted_by_perm(&perm));
        prop_assert_eq!(s.value_sum(), t.value_sum());
    }

    #[test]
    fn fold_duplicates_preserves_value_sum(t in arb_tensor()) {
        let mut s = t.clone();
        s.sort_by_perm(&identity_perm(t.order()));
        let before = s.value_sum();
        let folded = s.fold_duplicates();
        prop_assert!((s.value_sum() - before).abs() < 1e-3);
        prop_assert_eq!(s.nnz() + folded, t.nnz());
        // No duplicates remain.
        for z in 1..s.nnz() {
            let same = (0..s.order()).all(|m| s.mode_indices(m)[z] == s.mode_indices(m)[z - 1]);
            prop_assert!(!same, "duplicate survived at {z}");
        }
    }

    #[test]
    fn tns_text_round_trips(t in arb_tensor()) {
        // Values written in decimal survive up to f32 print precision;
        // compare structurally with a tolerance on values.
        prop_assume!(t.nnz() > 0);
        let mut buf = Vec::new();
        sptensor::io::write_tns(&t, &mut buf).unwrap();
        // arb_tensor() may emit duplicate coordinates; Keep preserves them
        // verbatim (the default Reject policy is exercised in io's own tests).
        let back = sptensor::ingest(
            sptensor::TnsSource::new(std::io::BufReader::new(&buf[..])),
            &sptensor::IngestOptions::new().with_policy(sptensor::DuplicatePolicy::Keep),
        )
        .unwrap();
        prop_assert_eq!(back.nnz(), t.nnz());
        // Extents are per-mode maxima, never larger than the original.
        for m in 0..t.order() {
            prop_assert!(back.dims()[m] <= t.dims()[m]);
        }
        for (a, b) in back.iter_entries().zip(t.iter_entries()) {
            prop_assert_eq!(a.coords, b.coords);
            prop_assert!((a.val - b.val).abs() <= 1e-5 * b.val.abs().max(1.0));
        }
    }

    #[test]
    fn binary_round_trips_exactly(t in arb_tensor()) {
        let mut buf = Vec::new();
        sptensor::io::write_bin(&t, &mut buf).unwrap();
        let src = sptensor::BinSource::new(std::io::Cursor::new(&buf)).unwrap();
        let back = sptensor::ingest(
            src,
            &sptensor::IngestOptions::new().with_policy(sptensor::DuplicatePolicy::Keep),
        )
        .unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn tns_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Arbitrary bytes must produce Ok or Err, never a panic.
        let opts = sptensor::IngestOptions::new();
        let _ = sptensor::ingest(
            sptensor::TnsSource::new(std::io::BufReader::new(&bytes[..])),
            &opts,
        );
        if let Ok(src) = sptensor::BinSource::new(std::io::Cursor::new(&bytes)) {
            let _ = sptensor::ingest(src, &opts);
        }
    }

    #[test]
    fn streaming_ingest_equals_incore_across_chunk_sizes(
        t in arb_tensor(),
        // 1 (worst case), a prime, and >= any generated nnz.
        chunk_sel in 0usize..3,
    ) {
        prop_assume!(t.nnz() > 0);
        let mut buf = Vec::new();
        sptensor::io::write_tns(&t, &mut buf).unwrap();
        let chunk = [1usize, 13, 1 << 16][chunk_sel];
        for policy in [sptensor::DuplicatePolicy::Sum, sptensor::DuplicatePolicy::Keep] {
            let opts = sptensor::IngestOptions::new().with_policy(policy);
            let incore = sptensor::ingest(
                sptensor::TnsSource::new(std::io::BufReader::new(&buf[..])),
                &opts,
            )
            .unwrap();
            let chunked = sptensor::ingest(
                sptensor::TnsSource::new(std::io::BufReader::new(&buf[..])),
                &opts.clone().with_chunk_nnz(chunk),
            )
            .unwrap();
            prop_assert_eq!(&chunked, &incore, "chunk {} policy {:?}", chunk, policy);
        }
        // The spilled pipeline under Sum folds duplicates in first-seen
        // order over globally sorted coordinates: exactly what a stable
        // canonical sort + fold of the Keep tensor produces.
        let dir = std::env::temp_dir().join(format!("sptk_props_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sum_opts = sptensor::IngestOptions::new()
            .with_policy(sptensor::DuplicatePolicy::Sum)
            .with_chunk_nnz(chunk);
        let spilled = sptensor::SpilledTensor::ingest(
            sptensor::TnsSource::new(std::io::BufReader::new(&buf[..])),
            &sum_opts,
            &dir,
        )
        .unwrap();
        let streamed = spilled.to_coo().unwrap();
        let mut expect = sptensor::ingest(
            sptensor::TnsSource::new(std::io::BufReader::new(&buf[..])),
            &sptensor::IngestOptions::new().with_policy(sptensor::DuplicatePolicy::Keep),
        )
        .unwrap();
        expect.sort_by_perm_stable(&identity_perm(expect.order()));
        expect.fold_duplicates();
        prop_assert_eq!(streamed, expect, "spilled Sum != stable-sorted fold");
    }

    #[test]
    fn morton_sort_preserves_multiset(t in arb_tensor()) {
        let m = sptensor::reorder::morton_sort(&t);
        let mut a: Vec<_> = t.iter_entries().map(|e| (e.coords, e.val.to_bits())).collect();
        let mut b: Vec<_> = m.iter_entries().map(|e| (e.coords, e.val.to_bits())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn heavy_first_relabel_is_volume_sorted(t in arb_tensor()) {
        let (r, map) = sptensor::reorder::relabel_mode_heavy_first(&t, 0);
        prop_assert_eq!(r.nnz(), t.nnz());
        let mut vol = vec![0u32; t.dims()[0] as usize];
        for &i in r.mode_indices(0) {
            vol[i as usize] += 1;
        }
        prop_assert!(vol.windows(2).all(|w| w[0] >= w[1]));
        // Map is a bijection.
        let mut seen = vec![false; map.len()];
        for &m in &map {
            prop_assert!(!seen[m as usize]);
            seen[m as usize] = true;
        }
    }

    #[test]
    fn permute_modes_round_trip(t in arb_tensor()) {
        // Reverse-order permutation is its own class of shuffle.
        let perm: Vec<usize> = (0..t.order()).rev().collect();
        let p = t.permute_modes(&perm);
        let back = p.permute_modes(&invert_perm(&perm));
        prop_assert_eq!(back, t);
    }
}
