//! The service core: admission control, the bounded queue, dispatch, the
//! retry ladder, and per-tenant accounting — all in deterministic
//! virtual time.
//!
//! # Admission (in check order)
//!
//! 1. **Catalog** — the dataset must be registered, else
//!    [`RejectReason::UnknownDataset`].
//! 2. **Validation** — plan capture through the shared [`PlanCache`]
//!    must succeed, else [`RejectReason::InvalidLaunch`] (e.g. a
//!    third-order-only kernel against an order-4 tensor).
//! 3. **Memory** — the plan's resident set (factors + output, the part
//!    no tiling can evict) must fit one device, else
//!    [`RejectReason::InsufficientMemory`].
//! 4. **Backpressure** — the bounded queue must have room, else
//!    [`ShedReason::QueueFull`].
//!
//! Admitted jobs wait FIFO; a job whose deadline passes while queued is
//! shed with [`ShedReason::DeadlineExpired`] instead of being launched
//! into guaranteed-late work.
//!
//! # The retry ladder
//!
//! Each dispatched job walks down until a rung finishes inside its
//! timeout: **sharded** (requested devices; device losses are re-sharded
//! around) → **single-device** (skipped unless the footprint fits one
//! device) → **ooc-tiled** (capacity-capped memory, tiling ladder) →
//! **cpu-reference** (always accepted — the terminal rung cannot time
//! out, so every dispatched job completes). A timed-out attempt charges
//! its full timeout plus exponential backoff and emits a `job-retry`
//! event; each attempt re-rolls fault draws via
//! [`FaultPlan::with_attempt`](gpu_sim::FaultPlan::with_attempt).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use dense::Matrix;
use gpu_sim::DeviceMemory;
use gpu_sim::Interconnect;
use mttkrp::gpu::{
    Executor, GpuContext, GridSpec, KernelKind, LaunchArgs, OocOptions, Plan, ShardModel,
};
use mttkrp::{cpd_als, cpd_als_resilient_durable, CpdOptions, DurableOptions, ResilienceOptions};
use simprof::{CheckpointRecord, FieldValue, Histogram, ServiceRecord, TenantRecord};
use sptensor::CooTensor;

use crate::cache::{structure_hash, PlanCache, PlanKey};
use crate::job::{JobKind, JobOutcome, JobRecord, JobSpec, RejectReason, ShedReason};
use crate::report::ServiceReport;

/// Service-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Devices in the simulated grid (jobs requesting more are clamped).
    pub devices: usize,
    /// Inter-device link model for sharded jobs.
    pub interconnect: Interconnect,
    /// Per-device memory capacity in bytes (`u64::MAX` = unlimited).
    pub capacity_per_device: u64,
    /// Bounded admission queue depth; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// First retry backoff, µs (doubles per retry).
    pub backoff_base_us: f64,
    /// CPU-reference rung slowdown relative to the modeled GPU time.
    pub cpu_slowdown: f64,
    /// When set, CPD jobs write durable, crash-consistent checkpoints
    /// under this directory (per-job subdirectories) and warm-restart
    /// from the newest valid file on every attempt. Each [`Service::run`]
    /// starts from a clean `run/` namespace so same-seed runs stay
    /// byte-identical; [`Service::standalone_check`] replays against its
    /// own cleaned `check/` namespace so verification holds exactly even
    /// when `crash:RATE` faults tear files mid-write.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            devices: 4,
            interconnect: Interconnect::nvlink(),
            capacity_per_device: u64::MAX,
            queue_depth: 8,
            backoff_base_us: 50.0,
            cpu_slowdown: 25.0,
            checkpoint_dir: None,
        }
    }
}

/// A dispatched job in flight: done at `finish_us` virtual time, holding
/// `devices` of the pool until then.
struct Running {
    finish_us: f64,
    devices: usize,
    spec: JobSpec,
    outcome: JobOutcome,
}

/// What one trip down the retry ladder produced.
struct LadderResult {
    rung: &'static str,
    retries: u32,
    device_losses: u64,
    /// Modeled execution time of the *successful* rung, µs.
    duration_us: f64,
    /// Virtual µs charged to timed-out attempts (timeouts + backoff).
    charged_us: f64,
    check: f64,
}

/// The multi-tenant CPD/MTTKRP service over a simulated device grid.
///
/// Register tensors, then [`Service::run`] a batch of [`JobSpec`]s: the
/// whole run — admission, queueing, the ladder, fault draws, the report —
/// is a deterministic discrete-event simulation in virtual time.
pub struct Service {
    cfg: ServiceConfig,
    ctx: GpuContext,
    cache: PlanCache,
    tensors: BTreeMap<String, Arc<CooTensor>>,
}

impl Service {
    /// A service over `ctx` (faults, telemetry, and registry all flow
    /// from it) with policy `cfg`.
    pub fn new(cfg: ServiceConfig, ctx: GpuContext) -> Service {
        Service {
            cfg,
            ctx,
            cache: PlanCache::new(),
            tensors: BTreeMap::new(),
        }
    }

    /// Registers `tensor` under `name` in the dataset catalog.
    pub fn register(&mut self, name: &str, tensor: CooTensor) {
        self.tensors.insert(name.to_string(), Arc::new(tensor));
    }

    pub fn tensor(&self, name: &str) -> Option<&Arc<CooTensor>> {
        self.tensors.get(name)
    }

    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    pub fn ctx(&self) -> &GpuContext {
        &self.ctx
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Runs `jobs` to completion through the discrete-event loop and
    /// returns the deterministic report. Jobs are processed in
    /// `(arrival_us, id)` order; completions at time `t` free their
    /// devices before arrivals at the same `t` are admitted.
    pub fn run(&self, jobs: &[JobSpec]) -> ServiceReport {
        // Durable checkpoints are scratch state scoped to one run; start
        // from an empty namespace so crash draws (keyed on file sequence
        // numbers) and warm restarts evolve identically on every
        // same-seed run.
        if let Some(root) = &self.cfg.checkpoint_dir {
            let _ = std::fs::remove_dir_all(root.join("run"));
        }
        let mut arrivals: Vec<&JobSpec> = jobs.iter().collect();
        arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us).then(a.id.cmp(&b.id)));
        let mut next_arrival = 0usize;

        let mut queue: VecDeque<JobSpec> = VecDeque::new();
        let mut running: Vec<Running> = Vec::new();
        let mut free = self.cfg.devices;
        let mut finished: Vec<(JobSpec, JobOutcome)> = Vec::new();

        loop {
            // Earliest completion, ties broken by job id for determinism.
            let next_done = running
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.finish_us
                        .total_cmp(&b.finish_us)
                        .then(a.spec.id.cmp(&b.spec.id))
                })
                .map(|(i, r)| (i, r.finish_us));

            let arrival_due = next_arrival < arrivals.len();
            let (completion_first, now) = match (next_done, arrival_due) {
                (Some((_, t_done)), true) => {
                    let t_arr = arrivals[next_arrival].arrival_us;
                    // Completions win ties: devices free up before the
                    // simultaneous arrival is considered for dispatch.
                    (t_done <= t_arr, t_done.min(t_arr))
                }
                (Some((_, t_done)), false) => (true, t_done),
                (None, true) => (false, arrivals[next_arrival].arrival_us),
                (None, false) => {
                    if queue.is_empty() {
                        break;
                    }
                    // Nothing running, nothing arriving, jobs queued:
                    // only possible transiently; dispatch below drains it.
                    (false, 0.0)
                }
            };

            if completion_first {
                if let Some((idx, _)) = next_done {
                    let done = running.swap_remove(idx);
                    free += done.devices;
                    finished.push((done.spec, done.outcome));
                }
            } else if arrival_due {
                let spec = arrivals[next_arrival].clone();
                next_arrival += 1;
                match self.admit(&spec, queue.len()) {
                    Ok(()) => {
                        self.emit_event(
                            "job-admitted",
                            &spec,
                            &[("queue_depth", FieldValue::from(queue.len()))],
                        );
                        queue.push_back(spec);
                    }
                    Err(outcome) => {
                        if let JobOutcome::Shed(reason) = &outcome {
                            self.emit_event(
                                "job-shed",
                                &spec,
                                &[("reason", FieldValue::from(reason.to_string()))],
                            );
                        }
                        finished.push((spec, outcome));
                    }
                }
            }

            // Dispatch FIFO while the head job's device ask fits the pool.
            while let Some(head) = queue.front() {
                if now >= head.deadline_us {
                    // Guaranteed-late: shed instead of launching.
                    let spec = match queue.pop_front() {
                        Some(s) => s,
                        None => break,
                    };
                    self.emit_event(
                        "job-shed",
                        &spec,
                        &[(
                            "reason",
                            FieldValue::from(ShedReason::DeadlineExpired.to_string()),
                        )],
                    );
                    finished.push((spec, JobOutcome::Shed(ShedReason::DeadlineExpired)));
                    continue;
                }
                let want = head.devices.clamp(1, self.cfg.devices);
                if want > free {
                    break;
                }
                let spec = match queue.pop_front() {
                    Some(s) => s,
                    None => break,
                };
                free -= want;
                let ladder = self.run_ladder(&spec, want, "run");
                let finish_us = now + ladder.charged_us + ladder.duration_us;
                let latency_us = finish_us - spec.arrival_us;
                let outcome = JobOutcome::Completed {
                    rung: ladder.rung,
                    retries: ladder.retries,
                    device_losses: ladder.device_losses,
                    latency_us,
                    deadline_met: finish_us <= spec.deadline_us,
                    check: ladder.check,
                };
                running.push(Running {
                    finish_us,
                    devices: want,
                    spec,
                    outcome,
                });
            }
        }

        self.build_report(jobs.len(), finished)
    }

    /// Runs `spec` alone — no queue, no other tenants — and returns the
    /// check value its ladder produces (`‖Y‖_F` / final fit). Ladder
    /// decisions and fault draws depend only on the spec and the
    /// context, so a job the service completed must reproduce this value
    /// exactly; [`ServiceReport::verify`](crate::ServiceReport::verify)
    /// compares the two within 1e-9 relative.
    pub fn standalone_check(&self, spec: &JobSpec) -> f64 {
        // Replay against a fresh per-job checkpoint namespace: starting
        // from the same empty state the service run started from makes
        // the crash-draw and warm-restart sequence — and therefore the
        // check value — reproduce exactly.
        if let Some(root) = &self.cfg.checkpoint_dir {
            let _ = std::fs::remove_dir_all(root.join("check").join(format!("job{}", spec.id)));
        }
        let want = spec.devices.clamp(1, self.cfg.devices);
        self.run_ladder(spec, want, "check").check
    }

    /// Admission checks, in documented order. `Ok(())` means enqueue.
    fn admit(&self, spec: &JobSpec, queue_len: usize) -> Result<(), JobOutcome> {
        let Some(t) = self.tensors.get(&spec.dataset) else {
            return Err(JobOutcome::Rejected(RejectReason::UnknownDataset(
                spec.dataset.clone(),
            )));
        };
        // Capture (or replay from cache) the plan every rung will share.
        // CPD jobs are admitted on their mode-0 plan; the remaining modes
        // are captured at dispatch through the same cache.
        let mode = match spec.kind {
            JobKind::Mttkrp { mode } => mode,
            JobKind::Cpd { .. } => 0,
        };
        let plan = self
            .plan_for(t, spec.kernel, mode, spec.rank)
            .map_err(|e| JobOutcome::Rejected(RejectReason::InvalidLaunch(e)))?;
        let resident = plan.footprint().resident_bytes();
        if resident > self.cfg.capacity_per_device {
            return Err(JobOutcome::Rejected(RejectReason::InsufficientMemory {
                resident_bytes: resident,
                capacity_bytes: self.cfg.capacity_per_device,
            }));
        }
        if queue_len >= self.cfg.queue_depth {
            return Err(JobOutcome::Shed(ShedReason::QueueFull { depth: queue_len }));
        }
        Ok(())
    }

    fn plan_for(
        &self,
        t: &CooTensor,
        kernel: KernelKind,
        mode: usize,
        rank: usize,
    ) -> Result<Arc<Plan>, mttkrp::gpu::LaunchError> {
        let key = PlanKey {
            structure: structure_hash(t),
            kernel,
            mode,
            rank,
        };
        self.cache.get_or_capture(&self.ctx, t, key)
    }

    /// The context one attempt executes under: fault draws re-rolled per
    /// `(job, retry)` so a straggler that killed attempt 0 doesn't
    /// deterministically kill every retry.
    fn attempt_ctx(&self, spec: &JobSpec, retries: u32) -> GpuContext {
        match &self.ctx.faults {
            Some(fp) => {
                let attempt = (spec.id as u32)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(retries);
                self.ctx.clone().with_faults(fp.with_attempt(attempt))
            }
            None => self.ctx.clone(),
        }
    }

    /// Walks the degradation ladder for one dispatched job. The terminal
    /// CPU rung always completes, so this cannot fail. `scope` names the
    /// checkpoint namespace (`"run"` for service runs, `"check"` for
    /// standalone replays) so the two never share files.
    fn run_ladder(&self, spec: &JobSpec, want: usize, scope: &str) -> LadderResult {
        let mut retries: u32 = 0;
        let mut device_losses: u64 = 0;
        let mut charged_us: f64 = 0.0;

        // Rung order; single-device is skipped when the resident set
        // cannot fit one device in-core.
        let mut rungs: Vec<&'static str> = Vec::new();
        if want > 1 {
            rungs.push("sharded");
        }
        rungs.push("single-device");
        rungs.push("ooc-tiled");
        rungs.push("cpu-reference");

        for (i, rung) in rungs.iter().enumerate() {
            let last = i + 1 == rungs.len();
            let Some((seconds, losses, check)) = self.run_rung(spec, want, rung, retries, scope)
            else {
                continue; // rung not applicable (e.g. footprint too big)
            };
            device_losses += losses;
            let duration_us = seconds * 1e6;
            if duration_us <= spec.timeout_us || last {
                return LadderResult {
                    rung,
                    retries,
                    device_losses,
                    duration_us,
                    charged_us,
                    check,
                };
            }
            // Timed out: charge the budget plus backoff, descend.
            let backoff = self.cfg.backoff_base_us * f64::from(1u32 << retries.min(20));
            charged_us += spec.timeout_us + backoff;
            self.emit_event(
                "job-retry",
                spec,
                &[
                    ("rung", FieldValue::from(*rung)),
                    ("retries", FieldValue::from(u64::from(retries) + 1)),
                    ("backoff_us", FieldValue::from(backoff)),
                ],
            );
            retries += 1;
        }
        // Unreachable: the CPU rung always returns. Keep a typed result
        // anyway so this path cannot panic.
        LadderResult {
            rung: "cpu-reference",
            retries,
            device_losses,
            duration_us: 0.0,
            charged_us,
            check: 0.0,
        }
    }

    /// Executes one rung: returns `(modeled seconds, device losses,
    /// check value)`, or `None` if the rung is not applicable.
    fn run_rung(
        &self,
        spec: &JobSpec,
        want: usize,
        rung: &str,
        retries: u32,
        scope: &str,
    ) -> Option<(f64, u64, f64)> {
        let t = Arc::clone(self.tensors.get(&spec.dataset)?);
        let ctx = self.attempt_ctx(spec, retries);
        match spec.kind {
            JobKind::Mttkrp { mode } => {
                let plan = self.plan_for(&t, spec.kernel, mode, spec.rank).ok()?;
                let factors = mttkrp::reference::random_factors(&t, spec.rank, spec.seed);
                self.run_rung_mttkrp(&ctx, &t, &plan, &factors, want, rung)
                    .map(|(s, l, y)| (s, l, y.fro_norm()))
            }
            JobKind::Cpd { iters } => {
                let opts = CpdOptions {
                    rank: spec.rank,
                    max_iters: iters,
                    tol: 0.0, // fixed-length runs keep durations comparable
                    seed: spec.seed,
                };
                let mut plans: Vec<Arc<Plan>> = Vec::with_capacity(t.order());
                for mode in 0..t.order() {
                    plans.push(self.plan_for(&t, spec.kernel, mode, spec.rank).ok()?);
                }
                let mut seconds = 0.0f64;
                let mut losses = 0u64;
                let mut failed = false;
                let mut mttkrp_fn = |factors: &[Matrix], mode: usize| {
                    if failed {
                        return Matrix::zeros(plans[mode].out_rows(), spec.rank);
                    }
                    match self.run_rung_mttkrp(&ctx, &t, &plans[mode], factors, want, rung) {
                        Some((s, l, y)) => {
                            seconds += s;
                            losses += l;
                            y
                        }
                        None => {
                            failed = true;
                            Matrix::zeros(plans[mode].out_rows(), spec.rank)
                        }
                    }
                };
                let result = match self.durable_opts(spec, scope) {
                    Some((ropts, dopts)) => {
                        match cpd_als_resilient_durable(
                            &t,
                            &opts,
                            &ropts,
                            &dopts,
                            &mut mttkrp_fn,
                            None,
                            Some(&ctx),
                        ) {
                            Ok((result, _stats, record)) => {
                                self.record_checkpointing(&record);
                                result
                            }
                            Err(e) => {
                                // Checkpoint I/O failed outright (not an
                                // injected crash — those are absorbed).
                                // Losing durability must not lose the job.
                                self.emit_event(
                                    "checkpoint-error",
                                    spec,
                                    &[("detail", FieldValue::from(e.to_string()))],
                                );
                                cpd_als(&t, &opts, &mut mttkrp_fn)
                            }
                        }
                    }
                    None => cpd_als(&t, &opts, &mut mttkrp_fn),
                };
                if failed {
                    return None;
                }
                Some((seconds, losses, result.final_fit()))
            }
        }
    }

    /// Checkpointing knobs for one CPD attempt, or `None` when the
    /// service runs without a checkpoint directory. The label keys the
    /// crash-fault draws per job; `resume` makes every attempt (retry or
    /// standalone replay) warm-restart from the newest valid file.
    fn durable_opts(
        &self,
        spec: &JobSpec,
        scope: &str,
    ) -> Option<(ResilienceOptions, DurableOptions)> {
        let root = self.cfg.checkpoint_dir.as_ref()?;
        let label = format!("job{}", spec.id);
        let ropts = ResilienceOptions {
            checkpoint_every: 1,
            ..ResilienceOptions::default()
        };
        let dopts = DurableOptions {
            dir: root.join(scope).join(&label),
            label,
            resume: true,
            // A torn write is a lost snapshot, not a dead job: the
            // computation keeps going so every admitted job still
            // reaches a typed terminal state.
            halt_on_crash: false,
        };
        Some((ropts, dopts))
    }

    fn record_checkpointing(&self, rec: &CheckpointRecord) {
        let reg = &self.ctx.registry;
        if !reg.enabled() {
            return;
        }
        reg.add("serve.checkpoint.writes", rec.writes);
        reg.add("serve.checkpoint.crashes", rec.crashes);
        reg.add("serve.checkpoint.resumes", rec.resumes);
        reg.add("serve.checkpoint.torn_skipped", rec.torn_skipped);
    }

    /// One MTTKRP through the named rung. `None` = rung not applicable.
    fn run_rung_mttkrp(
        &self,
        ctx: &GpuContext,
        t: &CooTensor,
        plan: &Plan,
        factors: &[Matrix],
        want: usize,
        rung: &str,
    ) -> Option<(f64, u64, Matrix)> {
        match rung {
            "sharded" => {
                let grid = GridSpec {
                    devices: want,
                    interconnect: self.cfg.interconnect.clone(),
                    capacity_per_device: self.cfg.capacity_per_device,
                };
                let model = ShardModel::build(ctx, plan, &grid, &OocOptions::default());
                let (run, report) = model.execute(ctx, plan, factors, Some(t)).ok()?;
                Some((
                    report.total_seconds.max(run.sim.time_s),
                    report.lost_devices.len() as u64,
                    run.y,
                ))
            }
            "single-device" => {
                if !plan.footprint().fits_within(self.cfg.capacity_per_device) {
                    return None;
                }
                let exec = Executor::new(ctx.clone());
                let done = exec
                    .execute(plan, &LaunchArgs::new(factors).with_tensor(t))
                    .ok()?;
                Some((done.run.sim.time_s, 0, done.run.y))
            }
            "ooc-tiled" => {
                let capped = ctx.clone().with_memory(Arc::new(
                    if self.cfg.capacity_per_device == u64::MAX {
                        DeviceMemory::unlimited()
                    } else {
                        DeviceMemory::with_capacity(self.cfg.capacity_per_device)
                    },
                ));
                let exec = Executor::new(capped);
                let done = exec
                    .execute(plan, &LaunchArgs::new(factors).with_tensor(t))
                    .ok()?;
                Some((done.run.sim.time_s, 0, done.run.y))
            }
            _ => {
                // cpu-reference: exact values, modeled as a fixed
                // slowdown over the clean single-device simulation.
                let y = mttkrp::reference::mttkrp(t, factors, plan.mode());
                let seconds = ctx.simulate(plan.launch()).time_s * self.cfg.cpu_slowdown;
                Some((seconds, 0, y))
            }
        }
    }

    fn emit_event(&self, kind: &str, spec: &JobSpec, extra: &[(&str, FieldValue)]) {
        let tel = &self.ctx.telemetry;
        if !tel.enabled() {
            return;
        }
        let mut fields: Vec<(&str, FieldValue)> = vec![
            ("job", FieldValue::from(spec.id)),
            ("tenant", FieldValue::from(spec.tenant)),
            ("kind", FieldValue::from(spec.kind.as_str())),
            ("kernel", FieldValue::from(spec.kernel.as_str())),
        ];
        fields.extend(extra.iter().cloned());
        tel.emit(kind, None, tel.new_span(), &fields);
    }

    /// Aggregates finished jobs into the deterministic report, sorted by
    /// job id, with per-tenant latency percentiles.
    fn build_report(
        &self,
        submitted: usize,
        mut finished: Vec<(JobSpec, JobOutcome)>,
    ) -> ServiceReport {
        finished.sort_by_key(|(s, _)| s.id);

        let mut record = ServiceRecord {
            submitted: submitted as u64,
            plan_cache_hits: self.cache.hits(),
            plan_cache_misses: self.cache.misses(),
            ..ServiceRecord::default()
        };
        let mut tenants: BTreeMap<usize, (TenantRecord, Histogram)> = BTreeMap::new();
        let mut jobs = Vec::with_capacity(finished.len());

        for (spec, outcome) in &finished {
            let (tenant, hist) = tenants.entry(spec.tenant).or_insert_with(|| {
                (
                    TenantRecord {
                        tenant: spec.tenant,
                        ..TenantRecord::default()
                    },
                    Histogram::new(),
                )
            });
            tenant.submitted += 1;
            match outcome {
                JobOutcome::Completed {
                    retries,
                    device_losses,
                    latency_us,
                    deadline_met,
                    ..
                } => {
                    record.admitted += 1;
                    record.completed += 1;
                    record.retries += u64::from(*retries);
                    record.device_losses += device_losses;
                    tenant.completed += 1;
                    let us = latency_us.max(0.0).round() as u64;
                    hist.observe(us);
                    if self.ctx.registry.enabled() {
                        self.ctx
                            .registry
                            .observe(&format!("serve.tenant{}.latency_us", spec.tenant), us);
                    }
                    if !deadline_met {
                        record.deadline_misses += 1;
                        tenant.deadline_misses += 1;
                    }
                }
                JobOutcome::Rejected(_) => {
                    record.rejected += 1;
                    tenant.rejected += 1;
                }
                JobOutcome::Shed(_) => {
                    record.shed += 1;
                    tenant.shed += 1;
                }
            }
            jobs.push(JobRecord::new(spec, outcome));
        }

        record.per_tenant = tenants
            .into_values()
            .map(|(mut t, h)| {
                t.latency = h.snapshot();
                t
            })
            .collect();

        ServiceReport {
            devices: self.cfg.devices,
            queue_depth: self.cfg.queue_depth,
            interconnect: self.cfg.interconnect.to_string(),
            record,
            jobs,
        }
    }
}
