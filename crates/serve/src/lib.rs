//! simserve: a resilient multi-tenant CPD/MTTKRP job service over the
//! simulated GPU grid.
//!
//! The library turns the capture/replay split ([`mttkrp::gpu::Plan`])
//! and the [`mttkrp::gpu::Executor`] ladder into a long-running service
//! abstraction: many tenants submit MTTKRP and CPD jobs against a
//! catalog of registered tensors, and the service stays *correct* (every
//! completed job's numbers match a standalone run) and *live* (overload
//! sheds jobs with typed outcomes, lost devices are re-sharded around,
//! slow rungs degrade down the ladder) no matter what the fault plan and
//! the arrival pattern throw at it.
//!
//! Everything is a deterministic discrete-event simulation in virtual
//! time: job durations come from the GPU model's simulated seconds,
//! arrivals from the seeded workload generator, and fault draws from the
//! pure-hash [`gpu_sim::FaultPlan`] — so a whole service run, report
//! included, is reproducible byte for byte. See DESIGN.md §14.
//!
//! - [`cache`]: the shared plan cache keyed on tensor structure hashes.
//! - [`job`]: job specs and typed `Completed`/`Rejected`/`Shed` outcomes.
//! - [`service`]: admission control, the bounded queue, the retry
//!   ladder, deadlines, and per-tenant accounting.
//! - [`workload`]: the seeded synthetic multi-tenant workload.
//! - [`report`]: the deterministic JSON report and standalone
//!   re-verification of completed jobs.

#![deny(clippy::unwrap_used)]
#![deny(clippy::expect_used)]

pub mod cache;
pub mod job;
pub mod report;
pub mod service;
pub mod workload;

pub use cache::{structure_hash, PlanCache, PlanKey};
pub use job::{JobKind, JobOutcome, JobRecord, JobSpec, RejectReason, ShedReason};
pub use report::ServiceReport;
pub use service::{Service, ServiceConfig};
pub use workload::{Workload, WorkloadConfig};
