//! The shared plan cache: capture once per tensor *structure*, replay
//! for every request on that structure.
//!
//! A [`mttkrp::gpu::Plan`] depends only on a tensor's sparsity structure
//! (which indices exist), the kernel, the output mode, and the rank —
//! never on the values or the requesting tenant. The cache therefore
//! keys on a [`structure_hash`] of the index pattern plus
//! `(kernel, mode, rank)`, and every tenant submitting jobs against the
//! same structure shares one captured plan. Capture (format build +
//! schedule recording) is the expensive phase; replay is cheap — exactly
//! the split the service's admission latency relies on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mttkrp::gpu::{
    AnyFormat, BuildOptions, GpuContext, KernelKind, LaunchError, MttkrpKernel, Plan,
};
use simprof::FieldValue;
use sptensor::CooTensor;

/// FNV-1a over bytes (the same mixer family the fault plans use).
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hash of a tensor's sparsity *structure*: order, dims,
/// nnz, and every index of every mode — values excluded, because plans
/// capture structure only. Two tensors with the same index pattern but
/// different values share plans; any structural difference separates
/// them.
pub fn structure_hash(t: &CooTensor) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = fnv1a(h, &(t.order() as u64).to_le_bytes());
    for &d in t.dims() {
        h = fnv1a(h, &u64::from(d).to_le_bytes());
    }
    h = fnv1a(h, &(t.nnz() as u64).to_le_bytes());
    for mode in 0..t.order() {
        for &ix in t.mode_indices(mode) {
            h ^= u64::from(ix);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = splitmix64(h);
    }
    splitmix64(h)
}

/// What a cached plan is keyed on: everything capture depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`structure_hash`] of the tensor.
    pub structure: u64,
    pub kernel: KernelKind,
    pub mode: usize,
    pub rank: usize,
}

/// A thread-safe capture-once/replay-many plan cache with hit/miss
/// telemetry. Captures run outside the map lock — they are
/// deterministic, so a racing duplicate capture produces the identical
/// plan and the last insert wins harmlessly.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The cached plan for `key`, capturing it on first use. Emits
    /// `plan-cache-hit` / `plan-cache-miss` events (cache `"service"`)
    /// through the context's telemetry.
    pub fn get_or_capture(
        &self,
        ctx: &GpuContext,
        t: &CooTensor,
        key: PlanKey,
    ) -> Result<Arc<Plan>, LaunchError> {
        if let Some(plan) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.note(ctx, "plan-cache-hit", &key);
            return Ok(plan);
        }
        let format = AnyFormat::build(key.kernel, t, key.mode, &BuildOptions::default())?;
        let plan = Arc::new(format.capture(ctx, key.rank));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.note(ctx, "plan-cache-miss", &key);
        if let Ok(mut map) = self.plans.lock() {
            map.insert(key, Arc::clone(&plan));
        }
        Ok(plan)
    }

    fn lookup(&self, key: &PlanKey) -> Option<Arc<Plan>> {
        self.plans.lock().ok()?.get(key).cloned()
    }

    fn note(&self, ctx: &GpuContext, kind: &str, key: &PlanKey) {
        let tel = &ctx.telemetry;
        if tel.enabled() {
            tel.emit(
                kind,
                None,
                tel.new_span(),
                &[
                    ("kernel", FieldValue::from(key.kernel.as_str())),
                    ("mode", FieldValue::from(key.mode)),
                    ("rank", FieldValue::from(key.rank)),
                    ("cache", FieldValue::from("service")),
                ],
            );
        }
    }

    /// Replays served from an already-captured plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Captures performed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().map(|m| m.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::expect_used)]

    use super::*;
    use sptensor::synth::uniform_random;

    #[test]
    fn structure_hash_ignores_values_and_sees_structure() {
        let a = uniform_random(&[10, 12, 14], 300, 7);
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 2.0;
        }
        assert_eq!(structure_hash(&a), structure_hash(&b), "values are ignored");
        let c = uniform_random(&[10, 12, 14], 300, 8);
        assert_ne!(structure_hash(&a), structure_hash(&c), "indices matter");
        let d = uniform_random(&[10, 12, 15], 300, 7);
        assert_ne!(structure_hash(&a), structure_hash(&d), "dims matter");
    }

    #[test]
    fn cache_hits_after_first_capture() {
        let t = uniform_random(&[10, 12, 14], 300, 7);
        let ctx = GpuContext::tiny();
        let cache = PlanCache::new();
        let key = PlanKey {
            structure: structure_hash(&t),
            kernel: KernelKind::Hbcsf,
            mode: 0,
            rank: 8,
        };
        let p1 = cache.get_or_capture(&ctx, &t, key).expect("capture");
        let p2 = cache.get_or_capture(&ctx, &t, key).expect("hit");
        assert!(
            Arc::ptr_eq(&p1, &p2),
            "second request replays the same plan"
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Another mode is a different key.
        let key2 = PlanKey { mode: 1, ..key };
        cache.get_or_capture(&ctx, &t, key2).expect("capture");
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }
}
