//! Seeded synthetic multi-tenant workloads.
//!
//! Everything — tensor structures, arrival times, tenants, kernels, job
//! kinds, device asks — derives from one `u64` seed through a splitmix64
//! chain, so the same [`WorkloadConfig`] always produces byte-identical
//! jobs and therefore (through the deterministic service) byte-identical
//! reports. No wall clock, no OS randomness.

use mttkrp::gpu::KernelKind;
use sptensor::{synth::uniform_random, CooTensor};

use crate::job::{JobKind, JobSpec};

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Knobs of the synthetic workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed: every draw chains from it.
    pub seed: u64,
    pub tenants: usize,
    /// Total jobs across all tenants.
    pub jobs: usize,
    /// Nonzeros per synthetic tensor.
    pub nnz: usize,
    /// Decomposition / MTTKRP rank of every job.
    pub rank: usize,
    /// Mean inter-arrival gap, virtual µs (exponential-ish draws).
    pub arrival_mean_us: f64,
    /// Deadline relative to arrival, µs.
    pub deadline_us: f64,
    /// Per-attempt execution budget, µs.
    pub timeout_us: f64,
    /// Device asks are drawn uniformly from `1..=max_devices`.
    pub max_devices: usize,
    /// Percentage of jobs that are CPD decompositions (the rest are
    /// single MTTKRPs).
    pub cpd_fraction_pct: u32,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x5EED,
            tenants: 3,
            jobs: 24,
            nnz: 4000,
            rank: 8,
            arrival_mean_us: 200.0,
            deadline_us: 500_000.0,
            timeout_us: 100_000.0,
            max_devices: 4,
            cpd_fraction_pct: 25,
        }
    }
}

/// A generated workload: the dataset catalog plus the job stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `(name, tensor)` pairs to register with the service.
    pub tensors: Vec<(String, CooTensor)>,
    /// Jobs in submission order (ids are their indices).
    pub jobs: Vec<JobSpec>,
}

/// Kernels the generator draws from — the any-order formats, so every
/// synthetic tensor is a valid target.
const KERNEL_POOL: [KernelKind; 4] = [
    KernelKind::Hbcsf,
    KernelKind::Bcsf,
    KernelKind::Csl,
    KernelKind::Csf,
];

/// Structures of the three catalog tensors (all third-order, distinct
/// dims so their structure hashes — and plans — never collide).
const TENSOR_DIMS: [[u32; 3]; 3] = [[40, 50, 60], [64, 48, 56], [30, 72, 44]];

impl Workload {
    /// Generates the workload for `cfg`, deterministically.
    pub fn generate(cfg: &WorkloadConfig) -> Workload {
        let mut state = splitmix64(cfg.seed);
        let mut next = || {
            state = splitmix64(state);
            state
        };

        let tensors: Vec<(String, CooTensor)> = TENSOR_DIMS
            .iter()
            .enumerate()
            .map(|(i, dims)| {
                let name = format!("synth-{}", char::from(b'a' + i as u8));
                (name, uniform_random(dims, cfg.nnz, next()))
            })
            .collect();

        let mut jobs = Vec::with_capacity(cfg.jobs);
        let mut arrival = 0.0f64;
        for id in 0..cfg.jobs as u64 {
            // Exponential-ish inter-arrival gap with mean
            // `arrival_mean_us`, clamped away from 0 so ids still break
            // ties deterministically.
            let gap = -u01(next()).max(1e-12).ln() * cfg.arrival_mean_us;
            arrival += gap.clamp(1.0, cfg.arrival_mean_us * 8.0);

            let tenant = (next() % cfg.tenants.max(1) as u64) as usize;
            let dataset = tensors[(next() % tensors.len() as u64) as usize].0.clone();
            let kernel = KERNEL_POOL[(next() % KERNEL_POOL.len() as u64) as usize];
            let kind = if (next() % 100) < u64::from(cfg.cpd_fraction_pct) {
                JobKind::Cpd { iters: 2 }
            } else {
                JobKind::Mttkrp {
                    mode: (next() % 3) as usize,
                }
            };
            let devices = 1 + (next() % cfg.max_devices.max(1) as u64) as usize;
            jobs.push(JobSpec {
                id,
                tenant,
                dataset,
                kernel,
                kind,
                rank: cfg.rank,
                devices,
                seed: next(),
                arrival_us: arrival,
                deadline_us: arrival + cfg.deadline_us,
                timeout_us: cfg.timeout_us,
            });
        }
        Workload { tensors, jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let cfg = WorkloadConfig::default();
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.dataset, y.dataset);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.arrival_us.to_bits(), y.arrival_us.to_bits());
        }
        for ((na, ta), (nb, tb)) in a.tensors.iter().zip(&b.tensors) {
            assert_eq!(na, nb);
            assert_eq!(ta.nnz(), tb.nnz());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&WorkloadConfig::default());
        let b = Workload::generate(&WorkloadConfig {
            seed: 0xBEEF,
            ..WorkloadConfig::default()
        });
        assert!(
            a.jobs
                .iter()
                .zip(&b.jobs)
                .any(|(x, y)| x.seed != y.seed || x.arrival_us != y.arrival_us),
            "seeds must steer the stream"
        );
    }

    #[test]
    fn jobs_are_well_formed() {
        let cfg = WorkloadConfig {
            jobs: 50,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(&cfg);
        assert_eq!(w.jobs.len(), 50);
        let mut prev = 0.0;
        for j in &w.jobs {
            assert!(j.tenant < cfg.tenants);
            assert!(w.tensors.iter().any(|(n, _)| *n == j.dataset));
            assert!(j.devices >= 1 && j.devices <= cfg.max_devices);
            assert!(j.arrival_us > prev, "arrivals strictly increase");
            assert!(j.deadline_us > j.arrival_us);
            prev = j.arrival_us;
        }
    }
}
