//! The deterministic service report and standalone re-verification.
//!
//! A [`ServiceReport`] is everything one service run produced: the
//! aggregate [`simprof::ServiceRecord`] (admission/shed/retry counts,
//! plan-cache behavior, per-tenant latency percentiles) plus one
//! [`JobRecord`] per submitted job, sorted by id. Serialized through
//! [`ServiceReport::to_json_string`] it is byte-identical across runs of
//! the same seed — the `serve-smoke` CI job diffs two runs to prove it.

use crate::job::JobRecord;
use crate::job::JobSpec;
use crate::service::Service;

/// The full outcome of one [`Service::run`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ServiceReport {
    /// Devices in the service grid.
    pub devices: usize,
    /// Bounded queue depth the run enforced.
    pub queue_depth: usize,
    /// Human-readable interconnect description.
    pub interconnect: String,
    /// Aggregate counters and per-tenant percentiles (the same record
    /// that lands in `RunManifest.service`).
    pub record: simprof::ServiceRecord,
    /// Every submitted job's typed outcome, sorted by job id.
    pub jobs: Vec<JobRecord>,
}

impl ServiceReport {
    /// Pretty JSON; deterministic for a deterministic run.
    pub fn to_json_string(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Completed jobs only.
    pub fn completed(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| j.outcome == "completed")
    }

    /// Re-executes every completed job standalone — same service
    /// context, no queue, no other tenants — and checks each recorded
    /// check value (`‖Y‖_F` / final fit) matches within `tol` relative.
    /// This is the multi-tenant isolation invariant: concurrency and
    /// queueing must never change a job's numbers.
    ///
    /// `specs` are the submitted jobs (the report alone doesn't carry
    /// seeds/modes). Returns the number of jobs verified.
    pub fn verify(&self, service: &Service, specs: &[JobSpec], tol: f64) -> Result<usize, String> {
        let mut verified = 0usize;
        for rec in self.completed() {
            let Some(spec) = specs.iter().find(|s| s.id == rec.id) else {
                return Err(format!("job {} missing from the submitted specs", rec.id));
            };
            let solo = service.standalone_check(spec);
            let scale = rec.check.abs().max(solo.abs()).max(1.0);
            let rel = (rec.check - solo).abs() / scale;
            if rel > tol {
                return Err(format!(
                    "job {} ({} on {}): service check {} vs standalone {} \
                     (relative error {rel:.3e} > {tol:.1e})",
                    rec.id, rec.kind, rec.dataset, rec.check, solo
                ));
            }
            verified += 1;
        }
        Ok(verified)
    }
}
