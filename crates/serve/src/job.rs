//! Job specifications and typed outcomes.
//!
//! Every job the service sees ends in exactly one of three typed
//! outcomes — [`JobOutcome::Completed`], [`JobOutcome::Rejected`] (it
//! never entered the queue), or [`JobOutcome::Shed`] (admitted work
//! dropped to protect liveness). Nothing in the service path panics on a
//! bad job; the reasons carry enough structure for callers to react and
//! for the report to explain.

use mttkrp::gpu::{KernelKind, LaunchError};

/// What a job computes once dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One MTTKRP along `mode`.
    Mttkrp { mode: usize },
    /// A CPD-ALS decomposition of `iters` iterations (every mode's
    /// MTTKRP per iteration).
    Cpd { iters: usize },
}

impl JobKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobKind::Mttkrp { .. } => "mttkrp",
            JobKind::Cpd { .. } => "cpd",
        }
    }
}

/// One tenant's job request, in virtual time.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique, monotone job id (the report sorts by it).
    pub id: u64,
    pub tenant: usize,
    /// Name of a tensor registered with the service.
    pub dataset: String,
    pub kernel: KernelKind,
    pub kind: JobKind,
    pub rank: usize,
    /// Devices requested (clamped to the service's grid size).
    pub devices: usize,
    /// Factor-initialization seed (determines the job's numbers).
    pub seed: u64,
    /// Virtual arrival time, µs.
    pub arrival_us: f64,
    /// Absolute virtual deadline, µs. Queued jobs past it are shed;
    /// completed jobs past it count as deadline misses.
    pub deadline_us: f64,
    /// Per-attempt execution budget, µs: a rung that models longer is
    /// killed and the ladder degrades.
    pub timeout_us: f64,
}

/// Why admission refused a job outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The named dataset is not registered.
    UnknownDataset(String),
    /// The launch failed validation or format construction.
    InvalidLaunch(LaunchError),
    /// The plan's resident set (factors + output) exceeds per-device
    /// capacity — no rung, not even OOC tiling, can hold it.
    InsufficientMemory {
        resident_bytes: u64,
        capacity_bytes: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            RejectReason::InvalidLaunch(e) => write!(f, "invalid launch: {e}"),
            RejectReason::InsufficientMemory {
                resident_bytes,
                capacity_bytes,
            } => write!(
                f,
                "resident footprint {resident_bytes} B exceeds device capacity {capacity_bytes} B"
            ),
        }
    }
}

/// Why load shedding dropped an admitted (or admissible) job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full at arrival — backpressure.
    QueueFull { depth: usize },
    /// The deadline passed while the job waited in the queue.
    DeadlineExpired,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            ShedReason::DeadlineExpired => write!(f, "deadline expired while queued"),
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    Completed {
        /// Ladder rung that produced the result (`"sharded"`,
        /// `"single-device"`, `"ooc-tiled"`, `"cpu-reference"`).
        rung: &'static str,
        /// Attempts abandoned on timeout before this rung.
        retries: u32,
        /// Device losses absorbed (re-sharded around) across attempts.
        device_losses: u64,
        /// Arrival-to-completion virtual latency, µs.
        latency_us: f64,
        deadline_met: bool,
        /// The job's numeric fingerprint: `‖Y‖_F` for MTTKRP, the final
        /// fit for CPD — what verification compares against a
        /// standalone run.
        check: f64,
    },
    Rejected(RejectReason),
    Shed(ShedReason),
}

impl JobOutcome {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobOutcome::Completed { .. } => "completed",
            JobOutcome::Rejected(_) => "rejected",
            JobOutcome::Shed(_) => "shed",
        }
    }
}

/// One job's row in the deterministic service report (serializable,
/// stringly-typed where the typed enums don't derive).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct JobRecord {
    pub id: u64,
    pub tenant: usize,
    pub dataset: String,
    pub kernel: String,
    pub kind: String,
    pub devices: usize,
    pub outcome: String,
    /// Reject/shed reason, or the completing rung.
    pub detail: String,
    pub retries: u32,
    pub device_losses: u64,
    pub arrival_us: f64,
    pub latency_us: f64,
    pub deadline_met: bool,
    pub check: f64,
}

impl JobRecord {
    /// Builds the report row for a finished job.
    pub fn new(spec: &JobSpec, outcome: &JobOutcome) -> JobRecord {
        let (detail, retries, losses, latency, met, check) = match outcome {
            JobOutcome::Completed {
                rung,
                retries,
                device_losses,
                latency_us,
                deadline_met,
                check,
            } => (
                (*rung).to_string(),
                *retries,
                *device_losses,
                *latency_us,
                *deadline_met,
                *check,
            ),
            JobOutcome::Rejected(r) => (r.to_string(), 0, 0, 0.0, false, 0.0),
            JobOutcome::Shed(s) => (s.to_string(), 0, 0, 0.0, false, 0.0),
        };
        JobRecord {
            id: spec.id,
            tenant: spec.tenant,
            dataset: spec.dataset.clone(),
            kernel: spec.kernel.as_str().to_string(),
            kind: spec.kind.as_str().to_string(),
            devices: spec.devices,
            outcome: outcome.as_str().to_string(),
            detail,
            retries,
            device_losses: losses,
            arrival_us: spec.arrival_us,
            latency_us: latency,
            deadline_met: met,
            check,
        }
    }
}
