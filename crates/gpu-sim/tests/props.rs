//! Property-based invariants of the machine model: the makespan must obey
//! its scheduling-theoretic bounds and metrics must stay in range.

use gpu_sim::{
    simulate, simulate_faulted, BlockWork, CostModel, DeviceProfile, FaultPlan, KernelLaunch, Op,
    WarpWork,
};
use proptest::prelude::*;

fn arb_launch() -> impl Strategy<Value = KernelLaunch> {
    let op = prop_oneof![
        (1u32..50).prop_map(Op::Fma),
        (1u32..20).prop_map(Op::Alu),
        (0u64..200).prop_map(Op::Load),
        (0u64..200).prop_map(Op::Store),
        ((0u32..8), (0u64..40)).prop_map(|(row, seg)| Op::AtomicAdd { row, seg }),
        (1u32..10).prop_map(Op::Sync),
    ];
    let warp = proptest::collection::vec(op, 1..20).prop_map(|ops| WarpWork { ops });
    let block = proptest::collection::vec(warp, 1..6).prop_map(|warps| BlockWork { warps });
    proptest::collection::vec(block, 0..20).prop_map(|blocks| KernelLaunch {
        name: "prop".into(),
        blocks,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_obeys_list_scheduling_bounds(launch in arb_launch()) {
        let dev = DeviceProfile::tiny();
        let cost = CostModel::default();
        let r = simulate(&dev, &cost, &launch);
        // Metrics in range.
        prop_assert!(r.sm_efficiency >= 0.0 && r.sm_efficiency <= 100.0 + 1e-9);
        prop_assert!(r.achieved_occupancy >= 0.0 && r.achieved_occupancy <= 100.0 + 1e-9);
        prop_assert!(r.l2_hit_rate >= 0.0 && r.l2_hit_rate <= 100.0);
        // Makespan at least the heaviest block, at most the serial sum.
        prop_assert!(r.makespan_cycles + 1e-9 >= r.max_block_cycles);
        let serial = r.mean_block_cycles * r.num_blocks as f64;
        prop_assert!(r.makespan_cycles <= serial + 1e-6);
        // Greedy list scheduling is within 2x of the lower bound
        // max(serial / machines, max block).
        let lower = (serial / dev.num_sms as f64).max(r.max_block_cycles);
        if r.num_blocks > 0 {
            prop_assert!(
                r.makespan_cycles <= 2.0 * lower + 1e-6,
                "makespan {} exceeds 2x lower bound {}",
                r.makespan_cycles,
                lower
            );
        }
    }

    #[test]
    fn more_sms_never_slower(launch in arb_launch()) {
        let cost = CostModel::default();
        let small = DeviceProfile::tiny();
        let mut big = DeviceProfile::tiny();
        big.num_sms *= 4;
        let rs = simulate(&small, &cost, &launch);
        let rb = simulate(&big, &cost, &launch);
        prop_assert!(rb.makespan_cycles <= rs.makespan_cycles + 1e-6);
    }

    #[test]
    fn flops_independent_of_device(launch in arb_launch()) {
        let cost = CostModel::default();
        let a = simulate(&DeviceProfile::tiny(), &cost, &launch);
        // Same warp size → same flops; scheduling must not change work.
        let mut dev2 = DeviceProfile::tiny();
        dev2.num_sms = 1;
        let b = simulate(&dev2, &cost, &launch);
        prop_assert_eq!(a.total_flops, b.total_flops);
        prop_assert_eq!(a.mem_segments, b.mem_segments);
        prop_assert_eq!(a.atomic_ops, b.atomic_ops);
    }

    #[test]
    fn cache_counters_are_conserved(segs in proptest::collection::vec(0u64..500, 0..400)) {
        let mut c = gpu_sim::L2Cache::new(16 * 1024, 128, 4);
        for &s in &segs {
            c.access(s);
        }
        prop_assert_eq!((c.hits() + c.misses()) as usize, segs.len());
    }

    #[test]
    fn cache_fitting_working_set_hits_on_second_pass(
        n in 1usize..32, // 16 KiB / 128 B = 128 lines; stay well inside
    ) {
        let mut c = gpu_sim::L2Cache::new(16 * 1024, 128, 4);
        // Use a stride of 1 so at most ceil(n/4) lines land per set (4-way).
        for pass in 0..2 {
            for s in 0..n as u64 {
                let hit = c.access(s);
                if pass == 1 {
                    prop_assert!(hit, "segment {s} missed on second pass");
                }
            }
        }
    }

    #[test]
    fn inert_fault_plans_stay_bit_identical(launch in arb_launch(), seed in any::<u64>()) {
        // An all-zero-rate plan — whatever its seed — must leave the
        // faulted entry point on the exact fault-free code path:
        // bit-for-bit identical metrics, not merely close ones.
        let dev = DeviceProfile::tiny();
        let cost = CostModel::default();
        let inert = FaultPlan::parse("none", seed).expect("'none' parses");
        prop_assert!(!inert.is_active());
        let registry = simprof::Registry::disabled();
        let clean = simulate(&dev, &cost, &launch);
        let (faulted, _) = simulate_faulted(&dev, &cost, &launch, &registry, &inert);
        prop_assert_eq!(clean, faulted);
    }

    #[test]
    fn cheaper_memory_never_slower(launch in arb_launch()) {
        let dev = DeviceProfile::tiny();
        let base = CostModel::default();
        let mut fast = CostModel::default();
        fast.l2_hit_throughput /= 2.0;
        fast.dram_throughput /= 2.0;
        fast.l2_hit_latency /= 2.0;
        fast.dram_latency /= 2.0;
        let a = simulate(&dev, &base, &launch);
        let b = simulate(&dev, &fast, &launch);
        prop_assert!(b.makespan_cycles <= a.makespan_cycles + 1e-6);
    }
}
