//! Kernel work descriptions: grids, blocks, warps, and synthetic addresses.
//!
//! A simulated kernel does two things at once: it computes the real MTTKRP
//! output in plain Rust (so correctness is testable against the sequential
//! reference), and it *emits* the instruction stream each warp would
//! execute — warp-wide FMAs plus coalesced 128-byte segment accesses over
//! synthetic array addresses. The emission side is what this module
//! describes.

use crate::device::DeviceProfile;

/// One warp-level operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `n` warp-wide fused multiply-add instructions (each is
    /// `warp_size × 2` flops).
    Fma(u32),
    /// `n` warp-wide non-FMA ALU/addressing instructions (no flops).
    Alu(u32),
    /// Read of one 128-byte segment (already coalesced by the kernel).
    Load(u64),
    /// Write of one 128-byte segment.
    Store(u64),
    /// Atomic read-modify-write on one segment; `row` identifies the output
    /// row for cross-block conflict accounting.
    AtomicAdd { row: u32, seg: u64 },
    /// `n` additional LSU transactions that re-touch already-resident data
    /// (guaranteed L2 hits): the cost of *divergent* per-lane access
    /// patterns, where one warp instruction issues up to 32 separate
    /// transactions instead of one coalesced segment. Lane-per-nonzero
    /// kernels (F-COO's thread-sequential rank loop) pay this on every
    /// factor-row read; rank-on-lanes kernels never emit it.
    Replay(u32),
    /// Fixed extra cycles (barriers, reduction shuffles).
    Sync(u32),
}

/// The instruction stream of one warp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpWork {
    pub ops: Vec<Op>,
}

impl WarpWork {
    pub fn new() -> WarpWork {
        WarpWork::default()
    }

    #[inline]
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Emits loads covering `bytes` bytes starting at `addr` (coalesced:
    /// one `Load` per touched 128-B segment).
    pub fn load_span(&mut self, addr: u64, bytes: u64) {
        for seg in segments(addr, bytes) {
            self.ops.push(Op::Load(seg));
        }
    }

    /// Emits stores covering `bytes` bytes starting at `addr`.
    pub fn store_span(&mut self, addr: u64, bytes: u64) {
        for seg in segments(addr, bytes) {
            self.ops.push(Op::Store(seg));
        }
    }

    /// Emits atomic adds covering `bytes` at `addr`, tagged with `row`.
    pub fn atomic_span(&mut self, row: u32, addr: u64, bytes: u64) {
        for seg in segments(addr, bytes) {
            self.ops.push(Op::AtomicAdd { row, seg });
        }
    }

    /// True when the warp does nothing (skipped by the scheduler).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Segment size used for coalescing and L2 lines (fixed at 128 bytes, the
/// CUDA global-memory transaction size; `DeviceProfile::line_bytes` must
/// match).
pub const SEG_BYTES: u64 = 128;

/// The 128-B segment ids touched by `[addr, addr + bytes)`.
pub fn segments(addr: u64, bytes: u64) -> impl Iterator<Item = u64> {
    let first = addr / SEG_BYTES;
    let last = if bytes == 0 {
        first
    } else {
        (addr + bytes - 1) / SEG_BYTES + 1
    };
    let end = if bytes == 0 { first } else { last };
    first..end
}

/// One thread block's work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockWork {
    pub warps: Vec<WarpWork>,
}

impl BlockWork {
    pub fn new() -> BlockWork {
        BlockWork::default()
    }

    pub fn is_empty(&self) -> bool {
        self.warps.iter().all(WarpWork::is_empty)
    }
}

/// A full kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelLaunch {
    pub name: String,
    pub blocks: Vec<BlockWork>,
}

impl KernelLaunch {
    pub fn new(name: impl Into<String>) -> KernelLaunch {
        KernelLaunch {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    pub fn num_warps(&self) -> usize {
        self.blocks.iter().map(|b| b.warps.len()).sum()
    }
}

/// Bump allocator handing out synthetic device addresses, 128-B aligned.
/// Each tensor/factor array gets an [`ArraySpan`]; kernels derive element
/// and row addresses from it so the cache model sees realistic layouts.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    pub fn new() -> AddressSpace {
        AddressSpace { next: 0 }
    }

    /// Reserves `bytes` bytes; returns the array descriptor.
    pub fn alloc(&mut self, bytes: u64) -> ArraySpan {
        let base = self.next;
        let padded = bytes.div_ceil(SEG_BYTES) * SEG_BYTES;
        self.next += padded.max(SEG_BYTES);
        ArraySpan { base, bytes }
    }

    /// Reserves space for `n` elements of `elem` bytes.
    pub fn alloc_elems(&mut self, n: usize, elem: u64) -> ArraySpan {
        self.alloc((n as u64).saturating_mul(elem))
    }

    /// Total bytes reserved so far (segment-padded) — a plan's complete
    /// device-memory footprint once every array has been laid out.
    pub fn total_bytes(&self) -> u64 {
        self.next
    }
}

/// A contiguous synthetic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpan {
    pub base: u64,
    pub bytes: u64,
}

impl ArraySpan {
    /// Address of element `i` with `elem`-byte elements.
    #[inline]
    pub fn elem(&self, i: usize, elem: u64) -> u64 {
        self.base + i as u64 * elem
    }

    /// Address of row `r` of a row-major matrix with `row_bytes` rows —
    /// the factor-matrix access every MTTKRP kernel performs.
    #[inline]
    pub fn row(&self, r: usize, row_bytes: u64) -> u64 {
        self.base + r as u64 * row_bytes
    }

    /// Bytes this span occupies in an [`AddressSpace`]: the request padded
    /// to whole 128-B segments (matching [`AddressSpace::alloc`]).
    pub fn padded_bytes(&self) -> u64 {
        (self.bytes.div_ceil(SEG_BYTES).saturating_mul(SEG_BYTES)).max(SEG_BYTES)
    }
}

/// Convenience: warp capacity helper — how many warps a block of
/// `threads` threads holds on `dev`.
pub fn warps_for_threads(dev: &DeviceProfile, threads: usize) -> usize {
    threads.div_ceil(dev.warp_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_cover_span() {
        assert_eq!(segments(0, 128).collect::<Vec<_>>(), vec![0]);
        assert_eq!(segments(0, 129).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(segments(120, 16).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(segments(256, 0).count(), 0);
        assert_eq!(segments(130, 1).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn load_span_emits_coalesced_ops() {
        let mut w = WarpWork::new();
        w.load_span(100, 128); // crosses a boundary -> 2 segments
        assert_eq!(w.ops.len(), 2);
        assert_eq!(w.ops[0], Op::Load(0));
        assert_eq!(w.ops[1], Op::Load(1));
    }

    #[test]
    fn address_space_is_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(300);
        assert_eq!(x.base % SEG_BYTES, 0);
        assert_eq!(y.base % SEG_BYTES, 0);
        assert!(y.base >= x.base + 100);
        // Rows of a 32-col f32 matrix are 128 B apart.
        assert_eq!(y.row(3, 128) - y.row(2, 128), 128);
    }

    #[test]
    fn zero_sized_alloc_still_advances() {
        let mut a = AddressSpace::new();
        let x = a.alloc(0);
        let y = a.alloc(0);
        assert_ne!(x.base, y.base);
    }

    #[test]
    fn warps_for_threads_rounds_up() {
        let d = DeviceProfile::p100();
        assert_eq!(warps_for_threads(&d, 1), 1);
        assert_eq!(warps_for_threads(&d, 32), 1);
        assert_eq!(warps_for_threads(&d, 33), 2);
        assert_eq!(warps_for_threads(&d, 512), 16);
    }
}
