//! Device profiles: the machine parameters of the simulated GPU.

/// Static machine description. The default profile mirrors the paper's
/// NVIDIA Tesla P100 (56 SMs, 4 MiB L2, 16 GB HBM2, 9.3 SP TFLOPS).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (lockstep lanes).
    pub warp_size: usize,
    /// Resident-warp capacity of one SM (occupancy denominator).
    pub max_warps_per_sm: usize,
    /// Resident-block capacity of one SM.
    pub max_blocks_per_sm: usize,
    /// Warp-wide FP32 FMA instructions an SM retires per cycle
    /// (P100: 64 FP32 lanes = 2 warps' worth).
    pub compute_width_warps: f64,
    /// Core clock in GHz used to convert cycles to seconds.
    pub clock_ghz: f64,
    /// Device (global) memory capacity in bytes.
    pub mem_bytes: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 line size in bytes; also the coalescing segment size.
    pub line_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
}

impl DeviceProfile {
    /// The paper's evaluation platform.
    pub fn p100() -> DeviceProfile {
        DeviceProfile {
            name: "Tesla P100 (Pascal)",
            num_sms: 56,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            compute_width_warps: 2.0,
            clock_ghz: 1.33,
            mem_bytes: 16 * 1024 * 1024 * 1024,
            l2_bytes: 4 * 1024 * 1024,
            line_bytes: 128,
            l2_assoc: 16,
        }
    }

    /// A Tesla V100 (Volta) profile — the P100's successor, for
    /// device-generation sweeps: more SMs, bigger L2, higher clock.
    pub fn v100() -> DeviceProfile {
        DeviceProfile {
            name: "Tesla V100 (Volta)",
            num_sms: 80,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            compute_width_warps: 2.0,
            clock_ghz: 1.53,
            mem_bytes: 16 * 1024 * 1024 * 1024,
            l2_bytes: 6 * 1024 * 1024,
            line_bytes: 128,
            l2_assoc: 16,
        }
    }

    /// A deliberately small device for unit tests: imbalance effects show
    /// at tiny scales and cache behaviour is easy to reason about.
    pub fn tiny() -> DeviceProfile {
        DeviceProfile {
            name: "tiny-test-device",
            num_sms: 4,
            warp_size: 32,
            max_warps_per_sm: 16,
            max_blocks_per_sm: 8,
            compute_width_warps: 1.0,
            clock_ghz: 1.0,
            mem_bytes: 256 * 1024,
            l2_bytes: 16 * 1024,
            line_bytes: 128,
            l2_assoc: 4,
        }
    }

    /// Single-precision peak in GFLOP/s (FMA = 2 flops), a sanity ceiling
    /// for simulated throughput.
    pub fn peak_gflops(&self) -> f64 {
        self.num_sms as f64
            * self.compute_width_warps
            * self.warp_size as f64
            * 2.0
            * self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_peak_matches_spec() {
        let d = DeviceProfile::p100();
        // 56 SM × 64 lanes × 2 flops × 1.33 GHz ≈ 9.5 TFLOPS (spec: 9.3).
        let peak = d.peak_gflops();
        assert!((9_000.0..10_000.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn l2_geometry_is_consistent() {
        for d in [
            DeviceProfile::p100(),
            DeviceProfile::v100(),
            DeviceProfile::tiny(),
        ] {
            let lines = d.l2_bytes / d.line_bytes;
            assert_eq!(lines % d.l2_assoc, 0, "{}: sets must be integral", d.name);
        }
    }

    #[test]
    fn v100_outranks_p100() {
        let p = DeviceProfile::p100();
        let v = DeviceProfile::v100();
        assert!(v.peak_gflops() > p.peak_gflops());
        assert!(v.num_sms > p.num_sms);
        assert!(v.l2_bytes > p.l2_bytes);
    }
}
