//! simfault: deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes *which* faults a launch suffers: bit flips
//! in per-block accumulation results, block aborts that force an
//! ECC-style re-execution, straggler SMs running at a reduced clock,
//! whole-device losses (`device-loss`) that a multi-device grid must
//! re-shard around, interconnect link faults (`link-degrade`,
//! `link-loss`) that re-price or disable the ring all-reduce, mid-write
//! checkpoint crashes (`crash`) that tear durable checkpoint files, and
//! — through [`crate::mem::DeviceMemory`] — allocation failures (`oom`)
//! and fragmentation pressure (`frag`) on the device heap.
//! Every draw is a pure hash of `(seed, kernel, attempt, site)` — no RNG
//! state — so the same plan replayed over the same launch injects the
//! same faults, two independent observers of the same site (the scheduler
//! charging time, the kernel corrupting data) agree on what happened, and
//! bumping `attempt` (a retry) re-rolls every draw.
//!
//! With all rates zero the plan is inert: fault-aware code paths are
//! skipped entirely and results are bit-for-bit those of a fault-free run.

#![deny(clippy::unwrap_used)]

/// Bits eligible for injection: the f32 exponent byte (bits 23..=30).
/// Exponent flips change a value's magnitude by at least 2×, which is what
/// makes them *detectable* above f32 summation noise — low-order mantissa
/// flips perturb results below checksum resolution and below numerical
/// materiality, so injecting them would only measure the tolerance, not
/// the recovery machinery.
pub const FLIP_BIT_LO: u32 = 23;
/// One past the highest eligible flip bit (exclusive).
pub const FLIP_BIT_HI: u32 = 31;

/// A transient bit flip drawn for one thread block: which bit of which
/// (hash-selected) element of the block's committed accumulation flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct BitFlip {
    /// Flipped bit position in the f32 word, in `FLIP_BIT_LO..FLIP_BIT_HI`.
    pub bit: u32,
    /// Hash used by the kernel to pick *which* element of the block's
    /// accumulation is corrupted (e.g. `lane % rank` selects the column).
    pub lane: u64,
}

/// What kind of fault hit a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silent data corruption of the block's committed accumulation.
    BitFlip { bit: u32 },
    /// The block aborted and was ECC-retried: its result is correct but it
    /// paid for two executions.
    Abort,
    /// The block landed on a straggler SM running at a reduced clock.
    Straggler { sm: usize },
}

// The vendored serde derive handles named-field structs and unit enums
// only, so the payload-carrying `FaultKind` is serialized by hand as a
// tagged object.
impl serde::Serialize for FaultKind {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        let kind = match self {
            FaultKind::BitFlip { bit } => {
                m.insert("bit".to_string(), serde::Serialize::serialize(bit));
                "bitflip"
            }
            FaultKind::Abort => "abort",
            FaultKind::Straggler { sm } => {
                m.insert("sm".to_string(), serde::Serialize::serialize(sm));
                "straggler"
            }
        };
        m.insert("kind".to_string(), serde::Value::String(kind.to_string()));
        serde::Value::Object(m)
    }
}

/// One injected fault, attributed to a scheduled block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct InjectedFault {
    /// Index in scheduled-block order (matches `SimProfile::blocks`).
    pub block: usize,
    pub kind: FaultKind,
}

/// A malformed fault spec, with enough structure for callers to format
/// their own diagnostics (the CLI prefixes the flag name, the service
/// layer maps it into a typed rejection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// A term is not of the `kind:rate` shape.
    NotKindRate { term: String },
    /// A term's rate failed to parse as a number.
    BadNumber { term: String },
    /// A term's rate is outside the accepted `0..=1e6` range.
    RateOutOfRange { term: String },
    /// A term names no documented fault kind.
    UnknownKind { kind: String },
    /// A probability-valued rate exceeds 1.
    ProbabilityAboveOne { kind: &'static str },
    /// `slowdown` below 1 would make stragglers faster than the clock.
    SlowdownBelowOne,
    /// `frag` of 1 (or more) leaves no capacity at all.
    FragAtLeastOne,
    /// `link-degrade` factor below 1 would make degraded links faster.
    DegradeFactorBelowOne,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::NotKindRate { term } => {
                write!(f, "fault term '{term}' is not 'kind:rate'")
            }
            FaultSpecError::BadNumber { term } => {
                write!(f, "fault term '{term}': bad number")
            }
            FaultSpecError::RateOutOfRange { term } => {
                write!(f, "fault term '{term}': rate out of range")
            }
            FaultSpecError::UnknownKind { kind } => write!(f, "unknown fault kind '{kind}'"),
            FaultSpecError::ProbabilityAboveOne { kind } => {
                write!(f, "fault rate '{kind}' is a probability; must be <= 1")
            }
            FaultSpecError::SlowdownBelowOne => write!(f, "straggler slowdown must be >= 1"),
            FaultSpecError::FragAtLeastOne => write!(f, "fragmentation fraction must be < 1"),
            FaultSpecError::DegradeFactorBelowOne => {
                write!(f, "link-degrade factor must be >= 1")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic, serializable fault-injection plan.
///
/// Rates are per-site probabilities: `bitflip_rate`/`abort_rate` per
/// thread block, `straggler_rate` per SM per launch. `attempt` is mixed
/// into every draw so a retried kernel sees fresh faults — exactly how a
/// transient fault behaves on re-execution.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability a block's committed accumulation suffers one exponent
    /// bit flip.
    pub bitflip_rate: f64,
    /// Probability a block aborts and is ECC-retried (timing-only fault).
    pub abort_rate: f64,
    /// Probability an SM is a straggler for the whole launch.
    pub straggler_rate: f64,
    /// Cycle multiplier applied to blocks placed on straggler SMs.
    pub straggler_slowdown: f64,
    /// Probability a checked device-memory allocation spuriously fails
    /// (per allocation site; see [`crate::mem::DeviceMemory::try_lease`]).
    pub oom_rate: f64,
    /// Fraction of device-memory capacity held back by fragmentation
    /// (`0.0..1.0`); shrinks the effective capacity, not a per-site draw.
    pub frag_frac: f64,
    /// Probability a whole simulated device drops out of a multi-device
    /// run (per device per launch). Device losses never corrupt data:
    /// the grid re-shards around the dead device, so they are neither
    /// execution nor memory faults (see [`FaultPlan::has_device_faults`]).
    pub device_loss_rate: f64,
    /// Probability an interconnect link runs degraded for a collective
    /// (per link per launch). A ring all-reduce is bottlenecked by its
    /// slowest link, so one degraded link re-prices the whole collective;
    /// degradation never perturbs values, only modeled time.
    pub link_degrade_rate: f64,
    /// Bandwidth division factor applied to degraded links (`>= 1`).
    pub link_degrade_factor: f64,
    /// Probability an interconnect link is down for a collective (per
    /// link per launch). A lost link breaks the ring, so the grid falls
    /// back to the bit-exact single-device execution path.
    pub link_loss_rate: f64,
    /// Probability a durable checkpoint write crashes mid-write (per
    /// write), leaving a torn file at the final path — modeling a rename
    /// that was not yet durable when the process died. Crash faults touch
    /// only the checkpoint filesystem, never kernel state.
    pub crash_rate: f64,
    /// Retry attempt number; mixed into every draw.
    pub attempt: u32,
}

impl FaultPlan {
    /// An inert plan: all rates zero, nothing is injected.
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            bitflip_rate: 0.0,
            abort_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 2.0,
            oom_rate: 0.0,
            frag_frac: 0.0,
            device_loss_rate: 0.0,
            link_degrade_rate: 0.0,
            link_degrade_factor: 4.0,
            link_loss_rate: 0.0,
            crash_rate: 0.0,
            attempt: 0,
        }
    }

    /// A plan injecting only bit flips at `rate`, seeded with `seed`.
    pub fn bitflips(rate: f64, seed: u64) -> Self {
        FaultPlan {
            bitflip_rate: rate,
            seed,
            ..FaultPlan::disabled()
        }
    }

    /// Whether any fault can ever fire. Inactive plans take the exact
    /// fault-free code paths.
    pub fn is_active(&self) -> bool {
        self.has_exec_faults()
            || self.has_mem_faults()
            || self.has_device_faults()
            || self.has_link_faults()
            || self.has_crash_faults()
    }

    /// Whether any *execution* fault (bit flip, abort, straggler) can
    /// fire. These are the faults that perturb kernel output or timing —
    /// the ones ABFT checksumming and the faulted simulator care about.
    pub fn has_exec_faults(&self) -> bool {
        self.bitflip_rate > 0.0 || self.abort_rate > 0.0 || self.straggler_rate > 0.0
    }

    /// Whether any *memory* fault (allocation failure, fragmentation) can
    /// fire. Memory faults never corrupt data — they refuse allocations —
    /// so plans with only memory faults keep the bit-exact parallel
    /// replay path.
    pub fn has_mem_faults(&self) -> bool {
        self.oom_rate > 0.0 || self.frag_frac > 0.0
    }

    /// Whether a whole device can drop out of a multi-device run. Like
    /// memory faults, device losses never perturb committed values — the
    /// grid re-shards the dead device's blocks onto the survivors, whose
    /// consecutive-range fold is bit-identical to a clean run on the
    /// surviving device set — so plans carrying only device losses keep
    /// the bit-exact parallel replay path.
    pub fn has_device_faults(&self) -> bool {
        self.device_loss_rate > 0.0
    }

    /// Whether an interconnect link can degrade or drop. Link faults
    /// never perturb committed values: degradation only re-prices the
    /// all-reduce on the modeled clock, and loss falls back to the
    /// bit-exact single-device path — so plans carrying only link faults
    /// keep the bit-exact parallel replay path.
    pub fn has_link_faults(&self) -> bool {
        self.link_degrade_rate > 0.0 || self.link_loss_rate > 0.0
    }

    /// Whether a durable checkpoint write can crash mid-write. Crash
    /// faults touch only checkpoint files on disk — kernel execution,
    /// memory, and timing are untouched.
    pub fn has_crash_faults(&self) -> bool {
        self.crash_rate > 0.0
    }

    /// The same plan with a different retry attempt (re-rolls all draws).
    pub fn with_attempt(&self, attempt: u32) -> Self {
        FaultPlan {
            attempt,
            ..self.clone()
        }
    }

    /// Parses a CLI fault spec: comma-separated `kind:rate` terms, e.g.
    /// `bitflip:1e-3,abort:1e-4,straggler:0.05,slowdown:2.5,oom:0.01,frag:0.2,device-loss:0.1,link-loss:0.05,crash:0.1`,
    /// or `none`. `link-degrade` additionally accepts a bandwidth factor
    /// as a third component: `link-degrade:RATE:FACTOR` (factor >= 1,
    /// default 4).
    pub fn parse(spec: &str, seed: u64) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::disabled()
        };
        if spec.trim() == "none" {
            return Ok(plan);
        }
        for term in spec.split(',') {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            let (key, val) = term
                .split_once(':')
                .ok_or_else(|| FaultSpecError::NotKindRate {
                    term: term.to_string(),
                })?;
            let in_range = |v: f64| (0.0..=1e6).contains(&v);
            // `link-degrade` is the one three-part term: its value may be
            // `RATE` or `RATE:FACTOR`, so it is split again before the
            // generic `kind:rate` number parse below.
            if key.trim() == "link-degrade" {
                let (rate_s, factor_s) = match val.trim().split_once(':') {
                    Some((r, fac)) => (r, Some(fac)),
                    None => (val.trim(), None),
                };
                let bad = || FaultSpecError::BadNumber {
                    term: term.to_string(),
                };
                let rate: f64 = rate_s.trim().parse().map_err(|_| bad())?;
                let factor: f64 = match factor_s {
                    Some(s) => s.trim().parse().map_err(|_| bad())?,
                    None => plan.link_degrade_factor,
                };
                if !in_range(rate) || !in_range(factor) {
                    return Err(FaultSpecError::RateOutOfRange {
                        term: term.to_string(),
                    });
                }
                plan.link_degrade_rate = rate;
                plan.link_degrade_factor = factor;
                continue;
            }
            let v: f64 = val.trim().parse().map_err(|_| FaultSpecError::BadNumber {
                term: term.to_string(),
            })?;
            if !in_range(v) {
                return Err(FaultSpecError::RateOutOfRange {
                    term: term.to_string(),
                });
            }
            match key.trim() {
                "bitflip" => plan.bitflip_rate = v,
                "abort" => plan.abort_rate = v,
                "straggler" => plan.straggler_rate = v,
                "slowdown" => plan.straggler_slowdown = v,
                "oom" => plan.oom_rate = v,
                "frag" => plan.frag_frac = v,
                "device-loss" => plan.device_loss_rate = v,
                "link-loss" => plan.link_loss_rate = v,
                "crash" => plan.crash_rate = v,
                other => {
                    return Err(FaultSpecError::UnknownKind {
                        kind: other.to_string(),
                    })
                }
            }
        }
        for (kind, rate) in [
            ("bitflip", plan.bitflip_rate),
            ("abort", plan.abort_rate),
            ("straggler", plan.straggler_rate),
            ("oom", plan.oom_rate),
            ("device-loss", plan.device_loss_rate),
            ("link-degrade", plan.link_degrade_rate),
            ("link-loss", plan.link_loss_rate),
            ("crash", plan.crash_rate),
        ] {
            if rate > 1.0 {
                return Err(FaultSpecError::ProbabilityAboveOne { kind });
            }
        }
        if plan.straggler_slowdown < 1.0 {
            return Err(FaultSpecError::SlowdownBelowOne);
        }
        if plan.frag_frac >= 1.0 {
            return Err(FaultSpecError::FragAtLeastOne);
        }
        if plan.link_degrade_factor < 1.0 {
            return Err(FaultSpecError::DegradeFactorBelowOne);
        }
        Ok(plan)
    }

    /// The bit flip (if any) hitting block `block` of kernel `kernel`.
    pub fn block_bitflip(&self, kernel: &str, block: usize) -> Option<BitFlip> {
        if self.bitflip_rate <= 0.0 {
            return None;
        }
        let h = self.site_hash(kernel, 0x1, block as u64);
        if u01(h) >= self.bitflip_rate {
            return None;
        }
        let h2 = splitmix64(h ^ 0x9e37_79b9_7f4a_7c15);
        Some(BitFlip {
            bit: FLIP_BIT_LO + (h2 % u64::from(FLIP_BIT_HI - FLIP_BIT_LO)) as u32,
            lane: splitmix64(h2),
        })
    }

    /// Whether block `block` of kernel `kernel` aborts and is ECC-retried.
    pub fn block_aborts(&self, kernel: &str, block: usize) -> bool {
        self.abort_rate > 0.0 && u01(self.site_hash(kernel, 0x2, block as u64)) < self.abort_rate
    }

    /// Whether SM `sm` is a straggler for this kernel launch.
    pub fn sm_straggler(&self, kernel: &str, sm: usize) -> bool {
        self.straggler_rate > 0.0
            && u01(self.site_hash(kernel, 0x3, sm as u64)) < self.straggler_rate
    }

    /// Whether the checked device-memory allocation at `site` of kernel
    /// `kernel` spuriously fails. Sites are chosen by the caller (e.g. the
    /// out-of-core executor keys them on `(ladder rung, tile index)`);
    /// like every draw, the outcome re-rolls when `attempt` changes.
    pub fn alloc_fails(&self, kernel: &str, site: u64) -> bool {
        self.oom_rate > 0.0 && u01(self.site_hash(kernel, 0x4, site)) < self.oom_rate
    }

    /// Whether device `device` drops out of this kernel's multi-device
    /// launch. Like every draw it is a pure hash — the scheduler deciding
    /// to re-shard and the reporter attributing the loss agree on which
    /// devices died.
    pub fn device_lost(&self, kernel: &str, device: usize) -> bool {
        self.device_loss_rate > 0.0
            && u01(self.site_hash(kernel, 0x5, device as u64)) < self.device_loss_rate
    }

    /// How far through its shard device `device` got before dying, in
    /// `[0, 1)` — the fraction of the shard's modeled compute time that
    /// was wasted. Drawn on an independent stream so the loss decision
    /// and the loss point are uncorrelated.
    pub fn device_loss_progress(&self, kernel: &str, device: usize) -> f64 {
        u01(self.site_hash(kernel, 0x6, device as u64))
    }

    /// Whether ring link `link` runs degraded (bandwidth divided by
    /// [`FaultPlan::link_degrade_factor`]) for this kernel's collective.
    pub fn link_degraded(&self, kernel: &str, link: usize) -> bool {
        self.link_degrade_rate > 0.0
            && u01(self.site_hash(kernel, 0x7, link as u64)) < self.link_degrade_rate
    }

    /// Whether ring link `link` is down for this kernel's collective,
    /// breaking the ring and forcing single-device fallback.
    pub fn link_lost(&self, kernel: &str, link: usize) -> bool {
        self.link_loss_rate > 0.0
            && u01(self.site_hash(kernel, 0x8, link as u64)) < self.link_loss_rate
    }

    /// Whether the durable checkpoint write `seq` under `label` crashes
    /// mid-write. `Some(frac)` means the write died after committing
    /// `frac` (in `[0, 1)`) of the file's bytes — the torn fraction is
    /// drawn on a chained hash so the crash decision and the tear point
    /// are uncorrelated.
    pub fn write_crash(&self, label: &str, seq: u64) -> Option<f64> {
        if self.crash_rate <= 0.0 {
            return None;
        }
        let h = self.site_hash(label, 0x9, seq);
        if u01(h) >= self.crash_rate {
            return None;
        }
        Some(u01(splitmix64(h ^ 0x9e37_79b9_7f4a_7c15)))
    }

    /// One hash per (plan, kernel, stream, site): the whole entropy source.
    fn site_hash(&self, kernel: &str, stream: u64, site: u64) -> u64 {
        let mut h = self.seed ^ fnv1a(kernel.as_bytes());
        h = splitmix64(h ^ (u64::from(self.attempt) << 32) ^ stream);
        splitmix64(h ^ site)
    }
}

/// SplitMix64: a full-period 64-bit mixer — the standard way to turn a
/// counter into well-distributed bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, for mixing kernel names into the seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps a hash to a uniform float in `[0, 1)` (53-bit mantissa).
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        assert!(!p.is_active());
        for b in 0..1000 {
            assert!(p.block_bitflip("k", b).is_none());
            assert!(!p.block_aborts("k", b));
            assert!(!p.sm_straggler("k", b));
            assert!(!p.alloc_fails("k", b as u64));
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let p = FaultPlan::bitflips(0.3, 42);
        let a: Vec<_> = (0..200).map(|b| p.block_bitflip("bcsf", b)).collect();
        let b: Vec<_> = (0..200).map(|b| p.block_bitflip("bcsf", b)).collect();
        assert_eq!(a, b, "same plan, same draws");
        let q = FaultPlan::bitflips(0.3, 43);
        let c: Vec<_> = (0..200).map(|b| q.block_bitflip("bcsf", b)).collect();
        assert_ne!(a, c, "different seed, different draws");
        let d: Vec<_> = (0..200).map(|b| p.block_bitflip("csl", b)).collect();
        assert_ne!(a, d, "different kernel, different draws");
        let e: Vec<_> = (0..200)
            .map(|b| p.with_attempt(1).block_bitflip("bcsf", b))
            .collect();
        assert_ne!(a, e, "retry attempt re-rolls the faults");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let p = FaultPlan::bitflips(0.1, 7);
        let hits = (0..20_000)
            .filter(|&b| p.block_bitflip("k", b).is_some())
            .count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&frac), "hit rate {frac}");
    }

    #[test]
    fn flip_bits_stay_in_exponent_byte() {
        let p = FaultPlan::bitflips(1.0, 3);
        for b in 0..500 {
            let f = p.block_bitflip("k", b).expect("rate 1 always fires");
            assert!((FLIP_BIT_LO..FLIP_BIT_HI).contains(&f.bit));
        }
    }

    #[test]
    fn parse_round_trips_the_spec_language() {
        let p = FaultPlan::parse("bitflip:1e-3,abort:1e-4,straggler:0.05,slowdown:2.5", 9)
            .expect("valid spec");
        assert_eq!(p.seed, 9);
        assert!((p.bitflip_rate - 1e-3).abs() < 1e-12);
        assert!((p.abort_rate - 1e-4).abs() < 1e-12);
        assert!((p.straggler_rate - 0.05).abs() < 1e-12);
        assert!((p.straggler_slowdown - 2.5).abs() < 1e-12);
        assert!(p.is_active());

        assert!(!FaultPlan::parse("none", 0)
            .expect("none is valid")
            .is_active());

        // Every documented kind round-trips into its field.
        let all = FaultPlan::parse(
            "bitflip:0.01,abort:0.02,straggler:0.03,slowdown:3.0,oom:0.04,frag:0.05,device-loss:0.06,link-degrade:0.07:5.0,link-loss:0.08,crash:0.09",
            1,
        )
        .expect("valid spec");
        assert!((all.bitflip_rate - 0.01).abs() < 1e-12);
        assert!((all.abort_rate - 0.02).abs() < 1e-12);
        assert!((all.straggler_rate - 0.03).abs() < 1e-12);
        assert!((all.straggler_slowdown - 3.0).abs() < 1e-12);
        assert!((all.oom_rate - 0.04).abs() < 1e-12);
        assert!((all.frag_frac - 0.05).abs() < 1e-12);
        assert!((all.device_loss_rate - 0.06).abs() < 1e-12);
        assert!((all.link_degrade_rate - 0.07).abs() < 1e-12);
        assert!((all.link_degrade_factor - 5.0).abs() < 1e-12);
        assert!((all.link_loss_rate - 0.08).abs() < 1e-12);
        assert!((all.crash_rate - 0.09).abs() < 1e-12);

        // `link-degrade` without a factor keeps the default factor.
        let short = FaultPlan::parse("link-degrade:0.25", 1).expect("valid spec");
        assert!((short.link_degrade_rate - 0.25).abs() < 1e-12);
        assert!((short.link_degrade_factor - 4.0).abs() < 1e-12);
        assert!(short.is_active() && short.has_link_faults());
    }

    #[test]
    fn malformed_specs_yield_typed_errors() {
        assert_eq!(
            FaultPlan::parse("bitflip", 0),
            Err(FaultSpecError::NotKindRate {
                term: "bitflip".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("gamma:0.1", 0),
            Err(FaultSpecError::UnknownKind {
                kind: "gamma".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("bitflip:2.0", 0),
            Err(FaultSpecError::ProbabilityAboveOne { kind: "bitflip" })
        );
        assert_eq!(
            FaultPlan::parse("bitflip:nope", 0),
            Err(FaultSpecError::BadNumber {
                term: "bitflip:nope".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("abort:-0.5", 0),
            Err(FaultSpecError::RateOutOfRange {
                term: "abort:-0.5".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("slowdown:0.5", 0),
            Err(FaultSpecError::SlowdownBelowOne)
        );
        assert_eq!(
            FaultPlan::parse("oom:1.5", 0),
            Err(FaultSpecError::ProbabilityAboveOne { kind: "oom" })
        );
        assert_eq!(
            FaultPlan::parse("frag:1.0", 0),
            Err(FaultSpecError::FragAtLeastOne)
        );
        assert_eq!(
            FaultPlan::parse("device-loss:1.5", 0),
            Err(FaultSpecError::ProbabilityAboveOne {
                kind: "device-loss"
            })
        );
        assert_eq!(
            FaultPlan::parse("link-loss:1.5", 0),
            Err(FaultSpecError::ProbabilityAboveOne { kind: "link-loss" })
        );
        assert_eq!(
            FaultPlan::parse("crash:2.0", 0),
            Err(FaultSpecError::ProbabilityAboveOne { kind: "crash" })
        );
        assert_eq!(
            FaultPlan::parse("link-degrade:1.5", 0),
            Err(FaultSpecError::ProbabilityAboveOne {
                kind: "link-degrade"
            })
        );
        assert_eq!(
            FaultPlan::parse("link-degrade:0.5:0.5", 0),
            Err(FaultSpecError::DegradeFactorBelowOne)
        );
        assert_eq!(
            FaultPlan::parse("link-degrade:0.5:nope", 0),
            Err(FaultSpecError::BadNumber {
                term: "link-degrade:0.5:nope".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("link-degrade:nope:2", 0),
            Err(FaultSpecError::BadNumber {
                term: "link-degrade:nope:2".to_string()
            })
        );
        assert_eq!(
            FaultPlan::parse("link-degrade:-0.1", 0),
            Err(FaultSpecError::RateOutOfRange {
                term: "link-degrade:-0.1".to_string()
            })
        );
        // The errors render as messages the CLI can print directly.
        let msg = FaultPlan::parse("gamma:0.1", 0)
            .expect_err("must fail")
            .to_string();
        assert!(msg.contains("gamma"), "message names the bad kind: {msg}");
    }

    #[test]
    fn link_and_crash_faults_are_their_own_classes() {
        let link = FaultPlan::parse("link-degrade:0.5:3,link-loss:0.2", 11).expect("valid spec");
        assert!(link.is_active() && link.has_link_faults());
        assert!(
            !link.has_exec_faults() && !link.has_mem_faults() && !link.has_device_faults(),
            "link faults must not activate ABFT, OOM, or re-shard paths"
        );

        let crash = FaultPlan::parse("crash:0.5", 11).expect("valid spec");
        assert!(crash.is_active() && crash.has_crash_faults());
        assert!(
            !crash.has_exec_faults()
                && !crash.has_mem_faults()
                && !crash.has_device_faults()
                && !crash.has_link_faults(),
            "crash faults touch only the checkpoint filesystem"
        );

        // Link draws are deterministic and re-rolled by attempt.
        let a: Vec<bool> = (0..200).map(|l| link.link_degraded("hbcsf", l)).collect();
        let b: Vec<bool> = (0..200).map(|l| link.link_degraded("hbcsf", l)).collect();
        assert_eq!(a, b, "same plan, same degraded links");
        let c: Vec<bool> = (0..200)
            .map(|l| link.with_attempt(1).link_degraded("hbcsf", l))
            .collect();
        assert_ne!(a, c, "retry attempt re-rolls link degradation");
        let lost: Vec<bool> = (0..200).map(|l| link.link_lost("hbcsf", l)).collect();
        assert_ne!(a, lost, "degrade and loss draw on independent streams");
        let hits = lost.iter().filter(|&&x| x).count();
        assert!((20..70).contains(&hits), "rate 0.2 over 200 links: {hits}");

        // Crash draws fire at the configured rate and report a torn
        // fraction in [0, 1).
        let crashes: Vec<Option<f64>> = (0..200).map(|s| crash.write_crash("job3", s)).collect();
        let fired = crashes.iter().flatten().count();
        assert!(
            (60..140).contains(&fired),
            "rate 0.5 over 200 writes: {fired}"
        );
        for frac in crashes.iter().flatten() {
            assert!((0.0..1.0).contains(frac));
        }
        assert_eq!(
            crashes,
            (0..200)
                .map(|s| crash.write_crash("job3", s))
                .collect::<Vec<_>>(),
            "crash draws are deterministic"
        );
        assert!(
            (0..200).all(|s| FaultPlan::disabled().write_crash("job3", s).is_none()),
            "inert plans never crash a write"
        );
    }

    #[test]
    fn device_loss_is_its_own_fault_class() {
        let p = FaultPlan::parse("device-loss:0.5", 3).expect("valid spec");
        assert!(p.is_active());
        assert!(p.has_device_faults());
        assert!(
            !p.has_exec_faults() && !p.has_mem_faults(),
            "device losses must not activate ABFT or OOM paths"
        );

        // Draws are deterministic, kernel-keyed, and re-rolled by attempt.
        let a: Vec<bool> = (0..200).map(|d| p.device_lost("hbcsf", d)).collect();
        let b: Vec<bool> = (0..200).map(|d| p.device_lost("hbcsf", d)).collect();
        assert_eq!(a, b, "same plan, same losses");
        let c: Vec<bool> = (0..200)
            .map(|d| p.with_attempt(1).device_lost("hbcsf", d))
            .collect();
        assert_ne!(a, c, "retry attempt re-rolls device losses");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(
            (60..140).contains(&hits),
            "rate 0.5 over 200 devices: {hits}"
        );

        // Loss progress is a fraction in [0, 1).
        for d in 0..50 {
            let f = p.device_loss_progress("hbcsf", d);
            assert!((0.0..1.0).contains(&f));
        }

        // An inert rate never fires.
        let none = FaultPlan::disabled();
        assert!((0..100).all(|d| !none.device_lost("hbcsf", d)));
    }

    #[test]
    fn memory_faults_are_split_from_exec_faults() {
        let mem_only = FaultPlan::parse("oom:0.2,frag:0.1", 5).expect("valid spec");
        assert!(mem_only.is_active());
        assert!(mem_only.has_mem_faults());
        assert!(!mem_only.has_exec_faults());
        assert!((mem_only.oom_rate - 0.2).abs() < 1e-12);
        assert!((mem_only.frag_frac - 0.1).abs() < 1e-12);

        let exec_only = FaultPlan::bitflips(0.1, 5);
        assert!(exec_only.has_exec_faults() && !exec_only.has_mem_faults());

        // OOM draws are deterministic, site-keyed, and re-rolled by attempt.
        let a: Vec<bool> = (0..200).map(|s| mem_only.alloc_fails("k", s)).collect();
        let b: Vec<bool> = (0..200).map(|s| mem_only.alloc_fails("k", s)).collect();
        assert_eq!(a, b);
        let c: Vec<bool> = (0..200)
            .map(|s| mem_only.with_attempt(1).alloc_fails("k", s))
            .collect();
        assert_ne!(a, c, "retry attempt re-rolls OOM draws");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(hits > 10 && hits < 80, "rate 0.2 over 200 sites: {hits}");
    }

    #[test]
    fn plan_serializes() {
        let p = FaultPlan::bitflips(1e-3, 7);
        let js = serde_json::to_string(&p).expect("serialize");
        assert!(js.contains("\"bitflip_rate\":0.001"));
        assert!(js.contains("\"seed\":7"));
    }
}
