//! The two-level scheduler and metric computation.
//!
//! **Warp level.** Each warp's instruction stream is folded into three
//! numbers: compute cycles, memory-latency cycles (its serial critical
//! path), and memory-throughput cycles (segment-cycles consumed on the
//! SM's load/store path, L2-aware).
//!
//! **Block level.** A block's duration is a roofline-style max of
//! (a) total compute / the SM's warp issue width, (b) total memory
//! throughput cycles, and (c) the critical (slowest) warp. (c) is where
//! *inter-warp* imbalance appears: one heavy fiber makes one warp's latency
//! chain dominate the whole block — the paper's Section IV-B pathology.
//!
//! **Grid level.** Blocks are greedily list-scheduled onto SMs in launch
//! order. *Inter-thread-block* imbalance appears here: one heavy slice
//! keeps one SM busy long after the rest drained — the Section IV-A
//! pathology, visible as low `sm_efficiency`.
//!
//! Atomic updates carry a serialization surcharge proportional to the
//! number of *other* blocks that update the same output row, which is what
//! makes unsplit COO kernels (ParTI) pay for hot rows and makes slc-split's
//! extra atomics "well tolerated" (few writers per row).

use std::collections::BinaryHeap;
use std::collections::HashMap;

use simprof::{FieldValue, Registry, Telemetry};

use crate::cache::L2Cache;
use crate::cost::CostModel;
use crate::device::DeviceProfile;
use crate::fault::{FaultKind, FaultPlan, InjectedFault};
use crate::grid::{KernelLaunch, Op};
use crate::memtrace::{LaunchTrace, MemTraceRecorder, TraceAccess};

/// Optional observability hooks threaded through
/// [`simulate_instrumented`]: a telemetry event stream and a memory-trace
/// recorder. Both are purely observational — attaching either never
/// changes a single simulated number (the bit-for-bit equivalence tests
/// below enforce it).
#[derive(Clone, Copy, Default)]
pub struct SimInstruments<'a> {
    pub telemetry: Option<&'a Telemetry>,
    pub trace: Option<&'a MemTraceRecorder>,
}

/// Simulation output: the nvprof-style metrics Table II reports, plus
/// derived throughput.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SimResult {
    pub kernel: String,
    pub makespan_cycles: f64,
    /// Seconds at the device clock.
    pub time_s: f64,
    /// Percentage of time the average SM was busy (nvprof `sm_efficiency`).
    pub sm_efficiency: f64,
    /// Active warps per active cycle / max warps, in percent
    /// (nvprof `achieved_occupancy`).
    pub achieved_occupancy: f64,
    /// L2 hit rate in percent.
    pub l2_hit_rate: f64,
    /// Useful floating-point operations executed (FMA = 2 flops).
    pub total_flops: u64,
    pub gflops: f64,
    pub num_blocks: usize,
    pub num_warps: usize,
    pub mem_segments: u64,
    pub atomic_ops: u64,
    pub max_block_cycles: f64,
    pub mean_block_cycles: f64,
}

/// Per-SM busy intervals of a simulated launch: `spans[sm]` is the ordered
/// list of `(start_cycle, end_cycle)` of each block that SM executed.
/// Produced by [`simulate_with_timeline`]; the raw material for Gantt-style
/// load-balance visualizations (see the `balance_viz` example).
#[derive(Debug, Clone)]
pub struct Timeline {
    pub spans: Vec<Vec<(f64, f64)>>,
}

impl Timeline {
    /// Fraction of `[0, makespan]` during which SM `sm` was busy.
    /// An out-of-range `sm` (or an empty/degenerate window) is 0.0, never
    /// a panic: callers probe SM indices from configs that may not match
    /// the device that produced the timeline.
    pub fn busy_fraction(&self, sm: usize, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            return 0.0;
        }
        match self.spans.get(sm) {
            Some(spans) => spans.iter().map(|(s, e)| e - s).sum::<f64>() / makespan,
            None => 0.0,
        }
    }

    /// Busy fraction of SM `sm` within the window `[t0, t1)`. Out-of-range
    /// `sm` or an empty window yields 0.0.
    pub fn busy_in_window(&self, sm: usize, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let Some(spans) = self.spans.get(sm) else {
            return 0.0;
        };
        let overlap: f64 = spans
            .iter()
            .map(|&(s, e)| (e.min(t1) - s.max(t0)).max(0.0))
            .sum();
        overlap / (t1 - t0)
    }
}

/// Which leg of the roofline `max` determined a block's duration — the
/// per-block answer to "why was this block slow".
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum StallReason {
    /// Aggregate compute over the SM's warp issue width was the ceiling.
    ComputeBound,
    /// Segment-cycles on the load/store path were the ceiling.
    MemoryThroughputBound,
    /// One slow warp's serial latency chain was the ceiling — the paper's
    /// inter-warp (fiber) imbalance pathology.
    CriticalWarpBound,
}

impl StallReason {
    /// Kebab-case label, used as the Chrome-trace `cat` so Perfetto can
    /// color slices by bottleneck.
    pub fn as_str(&self) -> &'static str {
        match self {
            StallReason::ComputeBound => "compute-bound",
            StallReason::MemoryThroughputBound => "memory-throughput-bound",
            StallReason::CriticalWarpBound => "critical-warp-bound",
        }
    }
}

/// The roofline decomposition of one scheduled block: every leg of the
/// cost `max`, plus the block's share of the launch-wide counters.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct BlockCost {
    /// Aggregate compute cycles / SM issue width (roofline leg a).
    pub compute_cycles: f64,
    /// Memory-throughput segment-cycles (roofline leg b).
    pub mem_throughput_cycles: f64,
    /// The critical (slowest) warp's compute+latency chain (roofline leg c).
    pub critical_warp_cycles: f64,
    /// Fixed launch/drain overhead added on top of the max.
    pub overhead_cycles: f64,
    /// Total block duration: `max(a, b, c) + overhead`.
    pub cycles: f64,
    pub warps: usize,
    pub flops: u64,
    pub mem_segments: u64,
    pub atomic_ops: u64,
    /// Atomic serialization surcharge cycles charged to this block
    /// (accumulated over its atomics' conflict terms).
    pub atomic_conflict_cycles: f64,
}

impl BlockCost {
    /// Which roofline leg won the `max` (ties resolve compute over
    /// memory over critical-warp, matching the order of the cost terms).
    pub fn stall_reason(&self) -> StallReason {
        if self.compute_cycles >= self.mem_throughput_cycles
            && self.compute_cycles >= self.critical_warp_cycles
        {
            StallReason::ComputeBound
        } else if self.mem_throughput_cycles >= self.critical_warp_cycles {
            StallReason::MemoryThroughputBound
        } else {
            StallReason::CriticalWarpBound
        }
    }
}

/// Where one block ran: produced by the list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct BlockPlacement {
    /// Index into [`SimProfile::blocks`] (scheduled-block order).
    pub block: usize,
    pub sm: usize,
    /// Start cycle on that SM.
    pub start: f64,
    /// End cycle (`start + cycles`).
    pub end: f64,
}

/// Atomic serialization charges attributed to one output row.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct AtomicRowCharge {
    pub row: u32,
    /// Distinct thread blocks updating this row.
    pub writer_blocks: u32,
    /// Atomic operations issued against this row.
    pub ops: u64,
    /// Total conflict-surcharge cycles charged for this row.
    pub conflict_cycles: f64,
}

/// Everything [`simulate_profiled`] knows beyond the [`SimResult`]: the
/// per-SM timeline, per-block cost decompositions, block→SM placements,
/// and per-output-row atomic serialization charges (hottest rows first).
#[derive(Debug, Clone)]
pub struct SimProfile {
    pub timeline: Timeline,
    pub blocks: Vec<BlockCost>,
    pub placements: Vec<BlockPlacement>,
    pub atomic_rows: Vec<AtomicRowCharge>,
    /// Faults injected into this launch, per block, in scheduling order.
    /// Always empty without an active [`FaultPlan`] (see
    /// [`simulate_faulted`]).
    pub faults: Vec<InjectedFault>,
}

/// Shared first half of the machine model: replay the launch through the
/// L2 in launch order, apply the instruction cost model, and fold every
/// block into its roofline cost. Both schedulers ([`simulate`] and
/// [`co_resident_makespan`]) consume this.
struct CostPass {
    blocks: Vec<BlockCost>,
    total_flops: u64,
    mem_segments: u64,
    atomic_ops: u64,
    num_warps: usize,
    l2_hit_rate: f64,
    /// Per-row atomic charges, hottest first. Only populated when the
    /// pass runs with `detail = true`; empty otherwise.
    atomic_rows: Vec<AtomicRowCharge>,
}

fn compute_block_costs(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    detail: bool,
    trace: Option<&MemTraceRecorder>,
) -> CostPass {
    assert_eq!(
        dev.line_bytes as u64,
        crate::grid::SEG_BYTES,
        "device line size must match the coalescing segment size"
    );
    let mut cache = L2Cache::new(dev.l2_bytes, dev.line_bytes, dev.l2_assoc);
    // Address-stream recording buffer: filled alongside the L2 replay and
    // pushed to the recorder wholesale at the end of the pass, so the
    // replay loop itself takes no lock and the cache walk is untouched.
    let mut recording: Option<(LaunchTrace, u64)> = trace.map(|r| {
        (
            LaunchTrace {
                kernel: launch.name.clone(),
                capacity_bytes: dev.l2_bytes,
                line_bytes: dev.line_bytes,
                assoc: dev.l2_assoc,
                sample_every: r.sample_every(),
                live_hits: 0,
                live_misses: 0,
                accesses: Vec::new(),
            },
            0u64,
        )
    });

    // ---- Pass 1: distinct writer blocks per atomic output row. ----
    let mut writers: HashMap<u32, (u32, u32)> = HashMap::new(); // row -> (last block, count)
    for (b, block) in launch.blocks.iter().enumerate() {
        for warp in &block.warps {
            for op in &warp.ops {
                if let Op::AtomicAdd { row, .. } = op {
                    let e = writers.entry(*row).or_insert((u32::MAX, 0));
                    if e.0 != b as u32 {
                        *e = (b as u32, e.1 + 1);
                    }
                }
            }
        }
    }

    // ---- Pass 2a: L2 replay, sequential in launch order. ----
    // The cache is a set-associative LRU whose hit/miss answers depend on
    // the *global* access order, so this walk cannot be parallelized; it
    // records one verdict per memory op for pass 2b to consume. Per-row
    // atomic charges are also folded here so their f64 summation order is
    // exactly the historical one-pass order.
    let mut hits: Vec<bool> = Vec::new();
    let mut hit_ptr: Vec<usize> = Vec::with_capacity(launch.blocks.len() + 1);
    // row -> (ops, conflict cycles); filled only when detail is requested.
    let mut row_charges: HashMap<u32, (u64, f64)> = HashMap::new();
    for (b, block) in launch.blocks.iter().enumerate() {
        hit_ptr.push(hits.len());
        for (w, warp) in block.warps.iter().enumerate() {
            for op in &warp.ops {
                let seg = match *op {
                    Op::Load(seg) | Op::Store(seg) => seg,
                    Op::AtomicAdd { row, seg } => {
                        if detail {
                            let conflict =
                                cost.conflict_surcharge(writers.get(&row).map_or(1, |e| e.1));
                            let e = row_charges.entry(row).or_insert((0, 0.0));
                            e.0 += 1;
                            e.1 += conflict;
                        }
                        seg
                    }
                    _ => continue,
                };
                let hit = cache.access(seg);
                hits.push(hit);
                if let Some((tr, seen)) = recording.as_mut() {
                    if *seen % tr.sample_every == 0 {
                        tr.accesses.push(TraceAccess {
                            block: b as u32,
                            warp: w as u32,
                            seg,
                            set: cache.set_index(seg) as u32,
                            hit,
                        });
                    }
                    *seen += 1;
                }
            }
        }
    }
    hit_ptr.push(hits.len());
    if let (Some((mut tr, _)), Some(recorder)) = (recording.take(), trace) {
        tr.live_hits = cache.hits();
        tr.live_misses = cache.misses();
        recorder.push(tr);
    }

    // ---- Pass 2b: per-block roofline folds, independent given the cache
    // verdicts — fanned out over rayon. Each fold accumulates its f64 terms
    // in the same op order as the historical single pass, so every
    // `BlockCost` is bit-for-bit identical to the sequential result.
    use rayon::prelude::*;
    let folded: Vec<Option<BlockCost>> = launch
        .blocks
        .par_iter()
        .enumerate()
        .map(|(b, block)| {
            fold_block(
                dev,
                cost,
                block,
                &writers,
                &hits[hit_ptr[b]..hit_ptr[b + 1]],
            )
        })
        .collect();

    // Deterministic sequential merge in launch order.
    let mut blocks: Vec<BlockCost> = Vec::with_capacity(launch.blocks.len());
    let mut total_flops: u64 = 0;
    let mut mem_segments: u64 = 0;
    let mut atomic_ops: u64 = 0;
    let mut num_warps = 0usize;
    for bc in folded.into_iter().flatten() {
        total_flops += bc.flops;
        mem_segments += bc.mem_segments;
        atomic_ops += bc.atomic_ops;
        num_warps += bc.warps;
        blocks.push(bc);
    }

    let mut atomic_rows: Vec<AtomicRowCharge> = row_charges
        .into_iter()
        .map(|(row, (ops, conflict_cycles))| AtomicRowCharge {
            row,
            writer_blocks: writers.get(&row).map_or(0, |e| e.1),
            ops,
            conflict_cycles,
        })
        .collect();
    atomic_rows.sort_by(|a, b| {
        b.conflict_cycles
            .partial_cmp(&a.conflict_cycles)
            .unwrap()
            .then(a.row.cmp(&b.row))
    });

    CostPass {
        blocks,
        total_flops,
        mem_segments,
        atomic_ops,
        num_warps,
        l2_hit_rate: cache.hit_rate(),
        atomic_rows,
    }
}

/// Folds one block's instruction stream into its roofline [`BlockCost`],
/// consuming the pre-replayed cache verdicts for its memory ops (`hits`,
/// one entry per `Load`/`Store`/`AtomicAdd` in op order). Pure per-block
/// given those verdicts; `None` for blocks with no non-empty warps.
fn fold_block(
    dev: &DeviceProfile,
    cost: &CostModel,
    block: &crate::grid::BlockWork,
    writers: &HashMap<u32, (u32, u32)>,
    hits: &[bool],
) -> Option<BlockCost> {
    let mut next_hit = hits.iter().copied();
    let mut sum_compute = 0.0f64;
    let mut sum_tp = 0.0f64;
    let mut max_warp = 0.0f64;
    let mut warps_in_block = 0usize;
    let mut block_flops: u64 = 0;
    let mut block_segments: u64 = 0;
    let mut block_atomics: u64 = 0;
    let mut block_conflict = 0.0f64;
    for warp in &block.warps {
        if warp.is_empty() {
            continue;
        }
        warps_in_block += 1;
        let mut compute = 0.0f64;
        let mut latency = 0.0f64;
        for op in &warp.ops {
            match *op {
                Op::Fma(n) => {
                    compute += n as f64 * cost.fma_cycles;
                    block_flops += n as u64 * dev.warp_size as u64 * 2;
                }
                Op::Alu(n) => compute += n as f64,
                Op::Load(_) | Op::Store(_) => {
                    let hit = next_hit.next().expect("cache verdict per memory op");
                    latency += cost.mem_latency(hit);
                    sum_tp += cost.mem_throughput(hit);
                    block_segments += 1;
                }
                Op::AtomicAdd { row, .. } => {
                    let hit = next_hit.next().expect("cache verdict per memory op");
                    let conflict = cost.conflict_surcharge(writers.get(&row).map_or(1, |e| e.1));
                    latency += cost.mem_latency(hit) + cost.atomic_latency + conflict;
                    sum_tp += cost.mem_throughput(hit) + cost.atomic_throughput + conflict;
                    block_segments += 1;
                    block_atomics += 1;
                    block_conflict += conflict;
                }
                Op::Replay(n) => {
                    // Extra transactions against resident lines: pure
                    // LSU pressure plus pipelined-hit latency.
                    latency += n as f64 * cost.mem_latency(true);
                    sum_tp += n as f64 * cost.l2_hit_throughput;
                    block_segments += n as u64;
                }
                Op::Sync(n) => {
                    compute += n as f64;
                }
            }
        }
        let warp_cost = compute + latency;
        sum_compute += compute;
        max_warp = max_warp.max(warp_cost);
    }
    if warps_in_block == 0 {
        return None;
    }
    let compute_leg = sum_compute / dev.compute_width_warps;
    let cycles = compute_leg.max(sum_tp).max(max_warp) + cost.block_overhead_cycles;
    Some(BlockCost {
        compute_cycles: compute_leg,
        mem_throughput_cycles: sum_tp,
        critical_warp_cycles: max_warp,
        overhead_cycles: cost.block_overhead_cycles,
        cycles,
        warps: warps_in_block,
        flops: block_flops,
        mem_segments: block_segments,
        atomic_ops: block_atomics,
        atomic_conflict_cycles: block_conflict,
    })
}

/// Runs a kernel launch through the machine model. Deterministic.
///
/// ```
/// use gpu_sim::{simulate, BlockWork, CostModel, DeviceProfile, KernelLaunch, Op, WarpWork};
///
/// let mut launch = KernelLaunch::new("demo");
/// let mut block = BlockWork::new();
/// let mut warp = WarpWork::new();
/// warp.push(Op::Fma(10));      // 10 warp-wide FMAs = 640 flops
/// warp.load_span(0, 256);      // two 128-B segments
/// block.warps.push(warp);
/// launch.blocks.push(block);
///
/// let r = simulate(&DeviceProfile::p100(), &CostModel::zero_overhead(), &launch);
/// assert_eq!(r.total_flops, 10 * 32 * 2);
/// assert_eq!(r.mem_segments, 2);
/// assert!(r.makespan_cycles > 0.0);
/// ```
pub fn simulate(dev: &DeviceProfile, cost: &CostModel, launch: &KernelLaunch) -> SimResult {
    simulate_with_timeline(dev, cost, launch).0
}

/// Like [`simulate`] but also returns the per-SM busy timeline.
pub fn simulate_with_timeline(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
) -> (SimResult, Timeline) {
    let (result, profile) = simulate_profiled(dev, cost, launch, &Registry::disabled());
    (result, profile.timeline)
}

/// [`simulate`] with full observability: returns the per-block/per-SM
/// [`SimProfile`] and, when `registry` is enabled, records the launch's
/// aggregate counters (`sim.*`, including the stall-reason breakdown and
/// atomic serialization charges) plus a host-time span into it. With a
/// disabled registry the extra cost is one relaxed atomic load — the
/// simulated numbers are bit-for-bit those of [`simulate`] either way.
pub fn simulate_profiled(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    registry: &Registry,
) -> (SimResult, SimProfile) {
    simulate_inner(dev, cost, launch, registry, None, SimInstruments::default())
}

/// The fully-instrumented entry point: [`simulate_profiled`] plus an
/// optional [`FaultPlan`] and the [`SimInstruments`] hooks — a telemetry
/// event stream (one `kernel-launch` event per simulation) and a memory
/// trace recorder capturing the sampled L2 address stream. An inactive or
/// absent fault plan takes exactly the fault-free code path, and the
/// instruments are purely observational: the returned numbers are
/// bit-for-bit those of [`simulate`] / [`simulate_faulted`].
pub fn simulate_instrumented(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    registry: &Registry,
    plan: Option<&FaultPlan>,
    instruments: SimInstruments<'_>,
) -> (SimResult, SimProfile) {
    let plan = plan.filter(|p| p.is_active());
    simulate_inner(dev, cost, launch, registry, plan, instruments)
}

/// [`simulate_profiled`] under a [`FaultPlan`]: straggler SMs stretch the
/// blocks placed on them, aborted blocks pay for an ECC re-execution, and
/// drawn bit flips are reported per block in [`SimProfile::faults`] (the
/// timing model itself is not perturbed by a flip — it is silent data
/// corruption; kernels consult the same plan to corrupt their data).
/// An inactive plan (all rates zero) takes exactly the fault-free code
/// path: results are bit-for-bit those of [`simulate_profiled`].
pub fn simulate_faulted(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    registry: &Registry,
    plan: &FaultPlan,
) -> (SimResult, SimProfile) {
    let plan = if plan.is_active() { Some(plan) } else { None };
    simulate_inner(dev, cost, launch, registry, plan, SimInstruments::default())
}

fn simulate_inner(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    registry: &Registry,
    plan: Option<&FaultPlan>,
    instruments: SimInstruments<'_>,
) -> (SimResult, SimProfile) {
    let profiling = registry.enabled();
    let _span = if profiling {
        Some(registry.span(&format!("simulate {}", launch.name), "sim"))
    } else {
        None
    };
    let CostPass {
        blocks,
        total_flops,
        mem_segments,
        atomic_ops,
        num_warps,
        l2_hit_rate,
        atomic_rows,
    } = compute_block_costs(dev, cost, launch, profiling, instruments.trace);

    // ---- Pass 3: greedy list scheduling of blocks onto SMs. ----
    #[derive(PartialEq)]
    struct SmSlot(f64, usize); // (available time, sm id) — min-heap
    impl Eq for SmSlot {}
    impl Ord for SmSlot {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; times are finite and non-negative.
            other
                .0
                .partial_cmp(&self.0)
                .unwrap()
                .then(other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for SmSlot {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<SmSlot> = (0..dev.num_sms).map(|i| SmSlot(0.0, i)).collect();
    let mut busy = vec![0.0f64; dev.num_sms];
    let mut timeline = Timeline {
        spans: vec![Vec::new(); dev.num_sms],
    };
    let mut occ_num = 0.0f64; // Σ active warps × cycles
                              // Occupancy accounts for block co-residency: while the launch queue is
                              // deep, each SM hosts roughly queue_depth/num_sms blocks concurrently
                              // (bounded by hardware block slots). The makespan itself stays a
                              // one-block-per-SM list schedule — co-residency hides latency, which
                              // the roofline block cost already credits via its throughput terms.
    let co_res = (blocks.len() as f64 / dev.num_sms as f64)
        .floor()
        .clamp(1.0, dev.max_blocks_per_sm as f64);
    let mut placements: Vec<BlockPlacement> = Vec::with_capacity(blocks.len());
    // Per-SM straggler decisions are drawn once per launch; block-level
    // faults are drawn as each block is placed. With no active plan none
    // of this runs and `cycles` is untouched — bit-for-bit fault-free.
    let stragglers: Vec<bool> = match plan {
        Some(p) => (0..dev.num_sms)
            .map(|sm| p.sm_straggler(&launch.name, sm))
            .collect(),
        None => Vec::new(),
    };
    let mut faults: Vec<InjectedFault> = Vec::new();
    let mut fault_extra_cycles = 0.0f64;
    for (b, block) in blocks.iter().enumerate() {
        let mut cycles = block.cycles;
        if let Some(p) = plan {
            if p.block_aborts(&launch.name, b) {
                // ECC retire: the first execution is wasted, the retry
                // lands on the same SM right after.
                faults.push(InjectedFault {
                    block: b,
                    kind: FaultKind::Abort,
                });
                fault_extra_cycles += cycles;
                cycles *= 2.0;
            }
        }
        let SmSlot(t, sm) = heap.pop().unwrap();
        if let Some(p) = plan {
            if stragglers[sm] {
                faults.push(InjectedFault {
                    block: b,
                    kind: FaultKind::Straggler { sm },
                });
                fault_extra_cycles += cycles * (p.straggler_slowdown - 1.0);
                cycles *= p.straggler_slowdown;
            }
            if let Some(flip) = p.block_bitflip(&launch.name, b) {
                faults.push(InjectedFault {
                    block: b,
                    kind: FaultKind::BitFlip { bit: flip.bit },
                });
            }
        }
        busy[sm] += cycles;
        timeline.spans[sm].push((t, t + cycles));
        placements.push(BlockPlacement {
            block: b,
            sm,
            start: t,
            end: t + cycles,
        });
        occ_num += (block.warps as f64 * co_res).min(dev.max_warps_per_sm as f64) * cycles;
        heap.push(SmSlot(t + cycles, sm));
    }
    let makespan = heap.iter().map(|s| s.0).fold(0.0f64, f64::max);
    let busy_total: f64 = busy.iter().sum();

    let sm_efficiency = if makespan > 0.0 {
        100.0 * busy_total / (dev.num_sms as f64 * makespan)
    } else {
        0.0
    };
    let achieved_occupancy = if busy_total > 0.0 {
        100.0 * occ_num / (dev.max_warps_per_sm as f64 * busy_total)
    } else {
        0.0
    };
    let time_s = makespan / (dev.clock_ghz * 1e9);
    let gflops = if time_s > 0.0 {
        total_flops as f64 / time_s / 1e9
    } else {
        0.0
    };
    let max_block_cycles = blocks.iter().map(|b| b.cycles).fold(0.0f64, f64::max);
    let mean_block_cycles = if blocks.is_empty() {
        0.0
    } else {
        blocks.iter().map(|b| b.cycles).sum::<f64>() / blocks.len() as f64
    };

    let result = SimResult {
        kernel: launch.name.clone(),
        makespan_cycles: makespan,
        time_s,
        sm_efficiency,
        achieved_occupancy,
        l2_hit_rate,
        total_flops,
        gflops,
        num_blocks: blocks.len(),
        num_warps,
        mem_segments,
        atomic_ops,
        max_block_cycles,
        mean_block_cycles,
    };

    if profiling {
        registry.add("sim.launches", 1);
        registry.add("sim.blocks", blocks.len() as u64);
        registry.add("sim.warps", num_warps as u64);
        registry.add("sim.flops", total_flops);
        registry.add("sim.mem_segments", mem_segments);
        registry.add("sim.atomic_ops", atomic_ops);
        let mut conflict_cycles = 0.0f64;
        for b in &blocks {
            conflict_cycles += b.atomic_conflict_cycles;
            registry.add(
                match b.stall_reason() {
                    StallReason::ComputeBound => "sim.stall.compute_bound",
                    StallReason::MemoryThroughputBound => "sim.stall.memory_throughput_bound",
                    StallReason::CriticalWarpBound => "sim.stall.critical_warp_bound",
                },
                1,
            );
            // Distribution metrics: per-block duration, and the cycles a
            // block spent beyond its pure-compute roofline leg — the
            // block's stall time, whatever leg caused it.
            registry.observe("sim.block_cycles", b.cycles.round() as u64);
            registry.observe(
                "sim.block_stall_cycles",
                (b.cycles - b.compute_cycles).max(0.0).round() as u64,
            );
        }
        registry.add("sim.atomic_conflict_cycles", conflict_cycles.round() as u64);
        if plan.is_some() {
            let count =
                |k: fn(&FaultKind) -> bool| faults.iter().filter(|f| k(&f.kind)).count() as u64;
            registry.add(
                "sim.fault.bitflips",
                count(|k| matches!(k, FaultKind::BitFlip { .. })),
            );
            registry.add("sim.fault.aborts", count(|k| matches!(k, FaultKind::Abort)));
            registry.add(
                "sim.fault.straggler_blocks",
                count(|k| matches!(k, FaultKind::Straggler { .. })),
            );
            registry.add("sim.fault.extra_cycles", fault_extra_cycles.round() as u64);
        }
    }

    if let Some(tel) = instruments.telemetry {
        if tel.enabled() {
            tel.emit(
                "kernel-launch",
                None,
                tel.new_span(),
                &[
                    ("kernel", FieldValue::from(result.kernel.as_str())),
                    ("blocks", FieldValue::from(result.num_blocks)),
                    ("warps", FieldValue::from(result.num_warps)),
                    ("sim_kernel_us", FieldValue::from(result.time_s * 1e6)),
                    ("sm_efficiency", FieldValue::from(result.sm_efficiency)),
                    ("l2_hit_rate", FieldValue::from(result.l2_hit_rate)),
                    ("faulted", FieldValue::from(plan.is_some())),
                ],
            );
        }
    }

    let profile = SimProfile {
        timeline,
        blocks,
        placements,
        atomic_rows,
        faults,
    };
    (result, profile)
}

/// The *co-resident* makespan bound: blocks list-scheduled onto
/// `num_sms × k` virtual executors, where `k` is the SM's block slot count
/// under a `nominal_warps`-per-block footprint (CUDA blocks reserve their
/// full warp footprint even when most warps are idle).
///
/// The default schedule ([`simulate`]) serializes blocks per SM — a
/// pessimistic bound where co-residency hides nothing; this function is the
/// optimistic bound where co-resident blocks overlap for free. Real
/// hardware sits between the two. Model-robustness tests check that the
/// paper's orderings (split > unsplit, hybrid ≥ pure) hold at *both*
/// bounds, so no conclusion hinges on the scheduler's pessimism.
pub fn co_resident_makespan(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    nominal_warps: usize,
) -> f64 {
    let k = (dev.max_warps_per_sm / nominal_warps.max(1))
        .clamp(1, dev.max_blocks_per_sm)
        .max(1);
    let executors = dev.num_sms * k;
    let pass = compute_block_costs(dev, cost, launch, false, None);
    let mut finish_times = vec![0.0f64; executors];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        (0..executors).map(|i| std::cmp::Reverse((0, i))).collect();
    for block in &pass.blocks {
        let cycles = block.cycles;
        let std::cmp::Reverse((_, ex)) = heap.pop().unwrap();
        finish_times[ex] += cycles;
        heap.push(std::cmp::Reverse((finish_times[ex].to_bits(), ex)));
    }
    finish_times.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{BlockWork, WarpWork};

    fn dev() -> DeviceProfile {
        DeviceProfile::tiny() // 4 SMs
    }

    fn compute_block(fmas: u32, warps: usize) -> BlockWork {
        let mut b = BlockWork::new();
        for _ in 0..warps {
            let mut w = WarpWork::new();
            w.push(Op::Fma(fmas));
            b.warps.push(w);
        }
        b
    }

    #[test]
    fn single_block_uses_one_sm() {
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(100, 1));
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert_eq!(r.num_blocks, 1);
        // One of 4 SMs busy the whole time.
        assert!((r.sm_efficiency - 25.0).abs() < 1e-9);
        assert!((r.makespan_cycles - 100.0).abs() < 1e-9);
        assert_eq!(r.total_flops, 100 * 32 * 2);
    }

    #[test]
    fn balanced_blocks_fill_all_sms() {
        let mut launch = KernelLaunch::new("t");
        for _ in 0..8 {
            launch.blocks.push(compute_block(50, 1));
        }
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert!((r.sm_efficiency - 100.0).abs() < 1e-9);
        assert!((r.makespan_cycles - 100.0).abs() < 1e-9);
    }

    #[test]
    fn one_heavy_block_tanks_sm_efficiency() {
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(1000, 1));
        for _ in 0..3 {
            launch.blocks.push(compute_block(10, 1));
        }
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert!((r.makespan_cycles - 1000.0).abs() < 1e-9);
        assert!(r.sm_efficiency < 30.0, "sm_eff {}", r.sm_efficiency);

        // Splitting the heavy block 4-ways restores balance.
        let mut split = KernelLaunch::new("t");
        for _ in 0..4 {
            split.blocks.push(compute_block(250, 1));
        }
        for _ in 0..3 {
            split.blocks.push(compute_block(10, 1));
        }
        let r2 = simulate(&dev(), &CostModel::zero_overhead(), &split);
        assert!(r2.makespan_cycles < r.makespan_cycles / 3.0);
        assert!(r2.sm_efficiency > 2.0 * r.sm_efficiency);
    }

    #[test]
    fn heavy_warp_dominates_block() {
        // 4 warps: one with 1000 FMAs, three with 10. On a device with
        // issue width 2 the throughput bound is (1030/2) = 515, so the
        // critical warp (1000) rules — inter-warp imbalance made visible.
        let mut b = BlockWork::new();
        for fmas in [1000u32, 10, 10, 10] {
            let mut w = WarpWork::new();
            w.push(Op::Fma(fmas));
            b.warps.push(w);
        }
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(b);
        let r = simulate(&DeviceProfile::p100(), &CostModel::zero_overhead(), &launch);
        assert!((r.makespan_cycles - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_scales_with_warps_per_block() {
        let mut thin = KernelLaunch::new("thin");
        thin.blocks.push(compute_block(100, 1));
        let mut wide = KernelLaunch::new("wide");
        wide.blocks.push(compute_block(100, 8));
        let d = dev(); // max 16 warps/SM
        let c = CostModel::zero_overhead();
        let r1 = simulate(&d, &c, &thin);
        let r2 = simulate(&d, &c, &wide);
        assert!(r2.achieved_occupancy > 4.0 * r1.achieved_occupancy);
        assert!((r1.achieved_occupancy - 100.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn l2_reuse_raises_hit_rate() {
        let mut reuse = KernelLaunch::new("reuse");
        let mut stream = KernelLaunch::new("stream");
        for i in 0..4u64 {
            let mut br = BlockWork::new();
            let mut wr = WarpWork::new();
            let mut bs = BlockWork::new();
            let mut ws = WarpWork::new();
            for j in 0..100u64 {
                wr.push(Op::Load(j % 4)); // 4 hot segments
                ws.push(Op::Load(i * 1000 + j * 7)); // all distinct
            }
            br.warps.push(wr);
            reuse.blocks.push(br);
            bs.warps.push(ws);
            stream.blocks.push(bs);
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let r1 = simulate(&d, &c, &reuse);
        let r2 = simulate(&d, &c, &stream);
        assert!(r1.l2_hit_rate > 90.0);
        assert!(r2.l2_hit_rate < 5.0);
        // Hits are also faster.
        assert!(r1.makespan_cycles < r2.makespan_cycles);
    }

    #[test]
    fn atomic_conflicts_cost_cycles() {
        // 4 blocks all hammering the same output row vs. disjoint rows.
        let build = |shared: bool| {
            let mut l = KernelLaunch::new("a");
            for b in 0..4u32 {
                let mut blk = BlockWork::new();
                let mut w = WarpWork::new();
                for i in 0..50u64 {
                    let row = if shared { 0 } else { b };
                    w.push(Op::AtomicAdd {
                        row,
                        seg: 10_000 + row as u64 * 100 + i % 2,
                    });
                }
                blk.warps.push(w);
                l.blocks.push(blk);
            }
            l
        };
        let d = dev();
        let c = CostModel::zero_overhead();
        let hot = simulate(&d, &c, &build(true));
        let cold = simulate(&d, &c, &build(false));
        assert!(
            hot.makespan_cycles > 1.5 * cold.makespan_cycles,
            "hot {} vs cold {}",
            hot.makespan_cycles,
            cold.makespan_cycles
        );
        assert_eq!(hot.atomic_ops, 200);
    }

    #[test]
    fn replay_charges_lsu_without_cache_probes() {
        let mut plain = KernelLaunch::new("plain");
        let mut replayed = KernelLaunch::new("replayed");
        for launch in [&mut plain, &mut replayed] {
            let mut b = BlockWork::new();
            let mut w = WarpWork::new();
            w.push(Op::Load(1));
            if launch.name == "replayed" {
                w.push(Op::Replay(7));
            }
            b.warps.push(w);
            launch.blocks.push(b);
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let a = simulate(&d, &c, &plain);
        let b = simulate(&d, &c, &replayed);
        assert!(b.makespan_cycles > a.makespan_cycles);
        assert_eq!(b.mem_segments, a.mem_segments + 7);
        // Replays never touch the cache model: hit rates stay comparable
        // (here: both runs have exactly one cold miss).
        assert_eq!(a.l2_hit_rate, b.l2_hit_rate);
    }

    #[test]
    fn deterministic() {
        let mut launch = KernelLaunch::new("t");
        for i in 0..10 {
            launch.blocks.push(compute_block(10 + i, 2));
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let a = simulate(&d, &c, &launch);
        let b = simulate(&d, &c, &launch);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.l2_hit_rate, b.l2_hit_rate);
    }

    #[test]
    fn co_resident_bound_is_never_slower() {
        let mut launch = KernelLaunch::new("t");
        for i in 0..40 {
            launch.blocks.push(compute_block(10 + i, 2));
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let serial = simulate(&d, &c, &launch).makespan_cycles;
        let co = co_resident_makespan(&d, &c, &launch, 2);
        assert!(co <= serial + 1e-9, "co {co} vs serial {serial}");
        // With footprint = whole SM, the bounds coincide.
        let full = co_resident_makespan(&d, &c, &launch, d.max_warps_per_sm);
        assert!((full - serial).abs() < 1e-6);
    }

    #[test]
    fn empty_launch_is_zero() {
        let launch = KernelLaunch::new("empty");
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert_eq!(r.makespan_cycles, 0.0);
        assert_eq!(r.gflops, 0.0);
        assert_eq!(r.num_blocks, 0);
    }

    #[test]
    fn throughput_bound_when_many_warps() {
        // 16 warps × 100 FMAs in one block: compute-throughput bound
        // (16*100/1 = 1600) exceeds the critical warp (100).
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(100, 16));
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert!((r.makespan_cycles - 1600.0).abs() < 1e-9);
    }

    /// A mixed launch exercising every op kind: compute, loads with reuse,
    /// atomics with a hot row, and a heavy-warp block.
    fn mixed_launch() -> KernelLaunch {
        let mut launch = KernelLaunch::new("mixed");
        for b in 0..6u32 {
            let mut blk = BlockWork::new();
            for wi in 0..3u32 {
                let mut w = WarpWork::new();
                w.push(Op::Fma(20 + 40 * wi * (b % 2)));
                for j in 0..8u64 {
                    w.push(Op::Load(b as u64 * 16 + j % 4));
                }
                w.push(Op::AtomicAdd {
                    row: b % 3,
                    seg: 50_000 + (b % 3) as u64,
                });
                blk.warps.push(w);
            }
            launch.blocks.push(blk);
        }
        launch
    }

    #[test]
    fn timeline_out_of_range_sm_is_zero_not_panic() {
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(100, 1));
        let (r, tl) = simulate_with_timeline(&dev(), &CostModel::zero_overhead(), &launch);
        // In range: the single busy SM reports 1.0.
        assert!((tl.busy_fraction(0, r.makespan_cycles) - 1.0).abs() < 1e-9);
        // Out of range (device has 4 SMs): 0.0, not a panic.
        assert_eq!(tl.busy_fraction(100, r.makespan_cycles), 0.0);
        assert_eq!(tl.busy_in_window(100, 0.0, r.makespan_cycles), 0.0);
        assert_eq!(tl.busy_fraction(4, r.makespan_cycles), 0.0);
    }

    #[test]
    fn timeline_window_overlap_edge_cases() {
        // One block on SM 0 occupying [0, 100].
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(100, 1));
        let (_, tl) = simulate_with_timeline(&dev(), &CostModel::zero_overhead(), &launch);
        // Full overlap.
        assert!((tl.busy_in_window(0, 0.0, 100.0) - 1.0).abs() < 1e-9);
        // Half overlap from either side.
        assert!((tl.busy_in_window(0, 50.0, 150.0) - 0.5).abs() < 1e-9);
        assert!((tl.busy_in_window(0, -100.0, 100.0) - 0.5).abs() < 1e-9);
        // Window fully after / fully before the span.
        assert_eq!(tl.busy_in_window(0, 100.0, 200.0), 0.0);
        assert_eq!(tl.busy_in_window(0, -50.0, 0.0), 0.0);
        // Degenerate and inverted windows.
        assert_eq!(tl.busy_in_window(0, 50.0, 50.0), 0.0);
        assert_eq!(tl.busy_in_window(0, 60.0, 40.0), 0.0);
        // Idle SM within range reports zero busy.
        assert_eq!(tl.busy_in_window(1, 0.0, 100.0), 0.0);
        // Degenerate makespan.
        assert_eq!(tl.busy_fraction(0, 0.0), 0.0);
    }

    #[test]
    fn metrics_stay_in_percent_range() {
        let d = dev();
        let c = CostModel::default();
        for launch in [mixed_launch(), KernelLaunch::new("empty")] {
            let r = simulate(&d, &c, &launch);
            for (name, v) in [
                ("sm_efficiency", r.sm_efficiency),
                ("achieved_occupancy", r.achieved_occupancy),
                ("l2_hit_rate", r.l2_hit_rate),
            ] {
                assert!(
                    (0.0..=100.0).contains(&v),
                    "{name} out of range: {v} ({})",
                    launch.name
                );
            }
            assert!(r.makespan_cycles >= 0.0);
            assert!(r.gflops >= 0.0);
        }
    }

    #[test]
    fn identical_launches_are_bit_for_bit_identical() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let a = simulate(&d, &c, &launch);
        let b = simulate(&d, &c, &launch);
        // Full-struct equality: every field, including every f64, must be
        // bit-for-bit reproducible between two simulate calls.
        assert_eq!(a, b);
    }

    #[test]
    fn profiled_result_matches_unprofiled() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let plain = simulate(&d, &c, &launch);
        let reg = Registry::new();
        let (profiled, profile) = simulate_profiled(&d, &c, &launch, &reg);
        assert_eq!(plain, profiled, "profiling must not perturb the model");
        // Block decomposition is consistent: every block's total equals
        // max(legs) + overhead, and the placement matches the timeline.
        assert_eq!(profile.blocks.len(), plain.num_blocks);
        assert_eq!(profile.placements.len(), plain.num_blocks);
        for p in &profile.placements {
            let b = &profile.blocks[p.block];
            let legs = b
                .compute_cycles
                .max(b.mem_throughput_cycles)
                .max(b.critical_warp_cycles);
            assert!((b.cycles - (legs + b.overhead_cycles)).abs() < 1e-9);
            assert!((p.end - p.start - b.cycles).abs() < 1e-9);
            assert!(profile.timeline.spans[p.sm].contains(&(p.start, p.end)));
        }
    }

    #[test]
    fn profiled_run_records_registry_counters() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let reg = Registry::new();
        let (r, profile) = simulate_profiled(&d, &c, &launch, &reg);
        assert_eq!(reg.counter("sim.launches"), 1);
        assert_eq!(reg.counter("sim.blocks"), r.num_blocks as u64);
        assert_eq!(reg.counter("sim.warps"), r.num_warps as u64);
        assert_eq!(reg.counter("sim.flops"), r.total_flops);
        assert_eq!(reg.counter("sim.atomic_ops"), r.atomic_ops);
        // Stall-reason breakdown partitions the blocks.
        let stalls = reg.counter("sim.stall.compute_bound")
            + reg.counter("sim.stall.memory_throughput_bound")
            + reg.counter("sim.stall.critical_warp_bound");
        assert_eq!(stalls, r.num_blocks as u64);
        // The host-time span of the simulate call was recorded.
        let spans = reg.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "simulate mixed");
        // Atomic charges per output row: 3 rows, each hit by 2 blocks.
        assert_eq!(profile.atomic_rows.len(), 3);
        for row in &profile.atomic_rows {
            assert_eq!(row.writer_blocks, 2);
            assert_eq!(row.ops, 6); // 2 blocks × 3 warps × 1 atomic
            assert!(row.conflict_cycles > 0.0);
        }
        // Hottest-first ordering.
        for pair in profile.atomic_rows.windows(2) {
            assert!(pair[0].conflict_cycles >= pair[1].conflict_cycles);
        }
    }

    #[test]
    fn disabled_registry_records_nothing_and_skips_detail() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let reg = Registry::disabled();
        let (r, profile) = simulate_profiled(&d, &c, &launch, &reg);
        assert!(r.atomic_ops > 0);
        assert!(reg.counters().is_empty());
        assert!(reg.spans().is_empty());
        // Per-row attribution is detail-gated; the rest of the profile
        // (timeline, blocks, placements) is always available.
        assert!(profile.atomic_rows.is_empty());
        assert_eq!(profile.blocks.len(), r.num_blocks);
    }

    #[test]
    fn instrumented_sim_is_bit_for_bit_and_trace_replays_exactly() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let plain = simulate(&d, &c, &launch);

        let reg = Registry::new();
        let ring = std::sync::Arc::new(simprof::RingSink::new(64));
        let tel = Telemetry::with_sink(ring.clone() as std::sync::Arc<dyn simprof::TelemetrySink>);
        let rec = MemTraceRecorder::new(1);
        let (instrumented, _) = simulate_instrumented(
            &d,
            &c,
            &launch,
            &reg,
            None,
            SimInstruments {
                telemetry: Some(&tel),
                trace: Some(&rec),
            },
        );
        assert_eq!(
            plain, instrumented,
            "instruments must not perturb the model"
        );

        // One kernel-launch event, valid JSON, carrying the sim numbers.
        let lines = ring.lines();
        assert_eq!(lines.len(), 1);
        let ev = serde_json::from_str(&lines[0]).expect("event line parses");
        assert_eq!(ev["kind"].as_str(), Some("kernel-launch"));
        assert_eq!(ev["kernel"].as_str(), Some("mixed"));
        assert_eq!(ev["blocks"].as_u64(), Some(plain.num_blocks as u64));
        assert_eq!(ev["faulted"].as_bool(), Some(false));

        // Per-block distributions were recorded.
        let h = reg.histogram("sim.block_cycles").expect("histogram");
        assert_eq!(h.count, plain.num_blocks as u64);

        // Replaying the emitted address stream re-derives the live L2
        // statistics exactly.
        let traces = rec.launches();
        assert_eq!(traces.len(), 1);
        let tr = &traces[0];
        assert_eq!(tr.accesses.len() as u64, tr.live_hits + tr.live_misses);
        let check = crate::memtrace::replay_launch(tr);
        assert!(check.exact);
        assert_eq!(check.verdict_mismatches, 0);
        assert_eq!(check.set_mismatches, 0);
        assert_eq!(check.hits, tr.live_hits);
        assert_eq!(check.misses, tr.live_misses);
        assert!((check.hit_rate - plain.l2_hit_rate).abs() < 1e-12);
    }

    #[test]
    fn sampled_trace_records_every_kth_access() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let full = MemTraceRecorder::new(1);
        let sampled = MemTraceRecorder::new(4);
        for rec in [&full, &sampled] {
            simulate_instrumented(
                &d,
                &c,
                &launch,
                &Registry::disabled(),
                None,
                SimInstruments {
                    telemetry: None,
                    trace: Some(rec),
                },
            );
        }
        let f = &full.launches()[0];
        let s = &sampled.launches()[0];
        assert_eq!(s.accesses.len(), f.accesses.len().div_ceil(4));
        // The sampled stream is a strided subset of the full one.
        for (i, a) in s.accesses.iter().enumerate() {
            assert_eq!(*a, f.accesses[i * 4]);
        }
        // Live counters still cover the full stream.
        assert_eq!(s.live_hits, f.live_hits);
        assert_eq!(s.live_misses, f.live_misses);
    }

    #[test]
    fn inactive_fault_plan_is_bit_for_bit_fault_free() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let plain = simulate(&d, &c, &launch);
        let plan = FaultPlan::disabled();
        let (faulted, profile) = simulate_faulted(&d, &c, &launch, &Registry::disabled(), &plan);
        assert_eq!(plain, faulted);
        assert!(profile.faults.is_empty());
        // A zero-rate parsed spec behaves identically.
        let plan = FaultPlan::parse("bitflip:0,abort:0,straggler:0", 7).expect("valid");
        let (faulted, profile) = simulate_faulted(&d, &c, &launch, &Registry::disabled(), &plan);
        assert_eq!(plain, faulted);
        assert!(profile.faults.is_empty());
    }

    #[test]
    fn aborts_and_stragglers_cost_cycles_and_are_reported() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let plain = simulate(&d, &c, &launch);

        // Every block aborts: makespan doubles exactly (serial per-SM
        // schedule, every block re-executed in place).
        let plan = FaultPlan::parse("abort:1.0", 1).expect("valid");
        let reg = Registry::new();
        let (aborted, profile) = simulate_faulted(&d, &c, &launch, &reg, &plan);
        assert!((aborted.makespan_cycles - 2.0 * plain.makespan_cycles).abs() < 1e-6);
        assert_eq!(profile.faults.len(), plain.num_blocks);
        assert_eq!(reg.counter("sim.fault.aborts"), plain.num_blocks as u64);
        assert!(reg.counter("sim.fault.extra_cycles") > 0);

        // Every SM a straggler at 3x: makespan triples.
        let plan = FaultPlan::parse("straggler:1.0,slowdown:3.0", 1).expect("valid");
        let (slow, _) = simulate_faulted(&d, &c, &launch, &Registry::disabled(), &plan);
        assert!((slow.makespan_cycles - 3.0 * plain.makespan_cycles).abs() < 1e-6);
    }

    #[test]
    fn bitflips_are_reported_but_do_not_perturb_timing() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let plain = simulate(&d, &c, &launch);
        let plan = FaultPlan::bitflips(1.0, 5);
        let reg = Registry::new();
        let (flipped, profile) = simulate_faulted(&d, &c, &launch, &reg, &plan);
        // Silent corruption: identical timing, every block reported hit.
        assert_eq!(plain, flipped);
        assert_eq!(profile.faults.len(), plain.num_blocks);
        assert!(profile
            .faults
            .iter()
            .all(|f| matches!(f.kind, FaultKind::BitFlip { .. })));
        assert_eq!(reg.counter("sim.fault.bitflips"), plain.num_blocks as u64);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let d = dev();
        let c = CostModel::default();
        let launch = mixed_launch();
        let plan = FaultPlan::parse("bitflip:0.3,abort:0.3,straggler:0.3", 11).expect("valid");
        let (a, pa) = simulate_faulted(&d, &c, &launch, &Registry::disabled(), &plan);
        let (b, pb) = simulate_faulted(&d, &c, &launch, &Registry::disabled(), &plan);
        assert_eq!(a, b);
        assert_eq!(pa.faults, pb.faults);
    }

    #[test]
    fn stall_reasons_label_the_winning_leg() {
        // Critical-warp bound: one 1000-FMA warp among light ones on a
        // wide-issue device.
        let mut b = BlockWork::new();
        for fmas in [1000u32, 10, 10, 10] {
            let mut w = WarpWork::new();
            w.push(Op::Fma(fmas));
            b.warps.push(w);
        }
        let mut launch = KernelLaunch::new("crit");
        launch.blocks.push(b);
        let reg = Registry::new();
        let (_, profile) = simulate_profiled(
            &DeviceProfile::p100(),
            &CostModel::zero_overhead(),
            &launch,
            &reg,
        );
        assert_eq!(
            profile.blocks[0].stall_reason(),
            StallReason::CriticalWarpBound
        );
        assert_eq!(reg.counter("sim.stall.critical_warp_bound"), 1);

        // Compute-throughput bound: 16 equal warps on the narrow device.
        let mut launch = KernelLaunch::new("comp");
        launch.blocks.push(compute_block(100, 16));
        let reg = Registry::new();
        let (_, profile) = simulate_profiled(&dev(), &CostModel::zero_overhead(), &launch, &reg);
        assert_eq!(profile.blocks[0].stall_reason(), StallReason::ComputeBound);

        // Memory-throughput bound: 16 streaming warps whose aggregate
        // segment-cycles (16×200×18) dwarf any single warp's latency chain.
        let mut blk = BlockWork::new();
        for wi in 0..16u64 {
            let mut w = WarpWork::new();
            for j in 0..200u64 {
                w.push(Op::Load(wi * 10_000 + j * 7));
            }
            blk.warps.push(w);
        }
        let mut launch = KernelLaunch::new("mem");
        launch.blocks.push(blk);
        let reg = Registry::new();
        let (_, profile) = simulate_profiled(&dev(), &CostModel::default(), &launch, &reg);
        assert_eq!(
            profile.blocks[0].stall_reason(),
            StallReason::MemoryThroughputBound
        );
    }
}
