//! The two-level scheduler and metric computation.
//!
//! **Warp level.** Each warp's instruction stream is folded into three
//! numbers: compute cycles, memory-latency cycles (its serial critical
//! path), and memory-throughput cycles (segment-cycles consumed on the
//! SM's load/store path, L2-aware).
//!
//! **Block level.** A block's duration is a roofline-style max of
//! (a) total compute / the SM's warp issue width, (b) total memory
//! throughput cycles, and (c) the critical (slowest) warp. (c) is where
//! *inter-warp* imbalance appears: one heavy fiber makes one warp's latency
//! chain dominate the whole block — the paper's Section IV-B pathology.
//!
//! **Grid level.** Blocks are greedily list-scheduled onto SMs in launch
//! order. *Inter-thread-block* imbalance appears here: one heavy slice
//! keeps one SM busy long after the rest drained — the Section IV-A
//! pathology, visible as low `sm_efficiency`.
//!
//! Atomic updates carry a serialization surcharge proportional to the
//! number of *other* blocks that update the same output row, which is what
//! makes unsplit COO kernels (ParTI) pay for hot rows and makes slc-split's
//! extra atomics "well tolerated" (few writers per row).

use std::collections::BinaryHeap;
use std::collections::HashMap;

use crate::cache::L2Cache;
use crate::cost::CostModel;
use crate::device::DeviceProfile;
use crate::grid::{KernelLaunch, Op};

/// Simulation output: the nvprof-style metrics Table II reports, plus
/// derived throughput.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimResult {
    pub kernel: String,
    pub makespan_cycles: f64,
    /// Seconds at the device clock.
    pub time_s: f64,
    /// Percentage of time the average SM was busy (nvprof `sm_efficiency`).
    pub sm_efficiency: f64,
    /// Active warps per active cycle / max warps, in percent
    /// (nvprof `achieved_occupancy`).
    pub achieved_occupancy: f64,
    /// L2 hit rate in percent.
    pub l2_hit_rate: f64,
    /// Useful floating-point operations executed (FMA = 2 flops).
    pub total_flops: u64,
    pub gflops: f64,
    pub num_blocks: usize,
    pub num_warps: usize,
    pub mem_segments: u64,
    pub atomic_ops: u64,
    pub max_block_cycles: f64,
    pub mean_block_cycles: f64,
}

/// Per-SM busy intervals of a simulated launch: `spans[sm]` is the ordered
/// list of `(start_cycle, end_cycle)` of each block that SM executed.
/// Produced by [`simulate_with_timeline`]; the raw material for Gantt-style
/// load-balance visualizations (see the `balance_viz` example).
#[derive(Debug, Clone)]
pub struct Timeline {
    pub spans: Vec<Vec<(f64, f64)>>,
}

impl Timeline {
    /// Fraction of `[0, makespan]` during which SM `sm` was busy.
    pub fn busy_fraction(&self, sm: usize, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            return 0.0;
        }
        self.spans[sm].iter().map(|(s, e)| e - s).sum::<f64>() / makespan
    }

    /// Busy fraction of SM `sm` within the window `[t0, t1)`.
    pub fn busy_in_window(&self, sm: usize, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let overlap: f64 = self.spans[sm]
            .iter()
            .map(|&(s, e)| (e.min(t1) - s.max(t0)).max(0.0))
            .sum();
        overlap / (t1 - t0)
    }
}

/// Shared first half of the machine model: replay the launch through the
/// L2 in launch order, apply the instruction cost model, and fold every
/// block into its roofline cost. Both schedulers ([`simulate`] and
/// [`co_resident_makespan`]) consume this.
struct CostPass {
    block_cycles: Vec<f64>,
    block_warps: Vec<usize>,
    total_flops: u64,
    mem_segments: u64,
    atomic_ops: u64,
    num_warps: usize,
    l2_hit_rate: f64,
}

fn compute_block_costs(dev: &DeviceProfile, cost: &CostModel, launch: &KernelLaunch) -> CostPass {
    assert_eq!(
        dev.line_bytes as u64,
        crate::grid::SEG_BYTES,
        "device line size must match the coalescing segment size"
    );
    let mut cache = L2Cache::new(dev.l2_bytes, dev.line_bytes, dev.l2_assoc);

    // ---- Pass 1: distinct writer blocks per atomic output row. ----
    let mut writers: HashMap<u32, (u32, u32)> = HashMap::new(); // row -> (last block, count)
    for (b, block) in launch.blocks.iter().enumerate() {
        for warp in &block.warps {
            for op in &warp.ops {
                if let Op::AtomicAdd { row, .. } = op {
                    let e = writers.entry(*row).or_insert((u32::MAX, 0));
                    if e.0 != b as u32 {
                        *e = (b as u32, e.1 + 1);
                    }
                }
            }
        }
    }

    // ---- Pass 2: per-block costs (cache replayed in launch order). ----
    let mut block_cycles: Vec<f64> = Vec::with_capacity(launch.blocks.len());
    let mut block_warps: Vec<usize> = Vec::with_capacity(launch.blocks.len());
    let mut total_flops: u64 = 0;
    let mut mem_segments: u64 = 0;
    let mut atomic_ops: u64 = 0;
    let mut num_warps = 0usize;

    for block in &launch.blocks {
        let mut sum_compute = 0.0f64;
        let mut sum_tp = 0.0f64;
        let mut max_warp = 0.0f64;
        let mut warps_in_block = 0usize;
        for warp in &block.warps {
            if warp.is_empty() {
                continue;
            }
            warps_in_block += 1;
            let mut compute = 0.0f64;
            let mut latency = 0.0f64;
            for op in &warp.ops {
                match *op {
                    Op::Fma(n) => {
                        compute += n as f64 * cost.fma_cycles;
                        total_flops += n as u64 * dev.warp_size as u64 * 2;
                    }
                    Op::Alu(n) => compute += n as f64,
                    Op::Load(seg) | Op::Store(seg) => {
                        let hit = cache.access(seg);
                        latency += cost.mem_latency(hit);
                        sum_tp += cost.mem_throughput(hit);
                        mem_segments += 1;
                    }
                    Op::AtomicAdd { row, seg } => {
                        let hit = cache.access(seg);
                        let conflict =
                            cost.conflict_surcharge(writers.get(&row).map_or(1, |e| e.1));
                        latency += cost.mem_latency(hit) + cost.atomic_latency + conflict;
                        sum_tp += cost.mem_throughput(hit) + cost.atomic_throughput + conflict;
                        mem_segments += 1;
                        atomic_ops += 1;
                    }
                    Op::Replay(n) => {
                        // Extra transactions against resident lines: pure
                        // LSU pressure plus pipelined-hit latency.
                        latency += n as f64 * cost.mem_latency(true);
                        sum_tp += n as f64 * cost.l2_hit_throughput;
                        mem_segments += n as u64;
                    }
                    Op::Sync(n) => {
                        compute += n as f64;
                    }
                }
            }
            let warp_cost = compute + latency;
            sum_compute += compute;
            max_warp = max_warp.max(warp_cost);
        }
        if warps_in_block == 0 {
            continue;
        }
        num_warps += warps_in_block;
        let cycles = (sum_compute / dev.compute_width_warps)
            .max(sum_tp)
            .max(max_warp)
            + cost.block_overhead_cycles;
        block_cycles.push(cycles);
        block_warps.push(warps_in_block);
    }

    CostPass {
        block_cycles,
        block_warps,
        total_flops,
        mem_segments,
        atomic_ops,
        num_warps,
        l2_hit_rate: cache.hit_rate(),
    }
}

/// Runs a kernel launch through the machine model. Deterministic.
///
/// ```
/// use gpu_sim::{simulate, BlockWork, CostModel, DeviceProfile, KernelLaunch, Op, WarpWork};
///
/// let mut launch = KernelLaunch::new("demo");
/// let mut block = BlockWork::new();
/// let mut warp = WarpWork::new();
/// warp.push(Op::Fma(10));      // 10 warp-wide FMAs = 640 flops
/// warp.load_span(0, 256);      // two 128-B segments
/// block.warps.push(warp);
/// launch.blocks.push(block);
///
/// let r = simulate(&DeviceProfile::p100(), &CostModel::zero_overhead(), &launch);
/// assert_eq!(r.total_flops, 10 * 32 * 2);
/// assert_eq!(r.mem_segments, 2);
/// assert!(r.makespan_cycles > 0.0);
/// ```
pub fn simulate(dev: &DeviceProfile, cost: &CostModel, launch: &KernelLaunch) -> SimResult {
    simulate_with_timeline(dev, cost, launch).0
}

/// Like [`simulate`] but also returns the per-SM busy timeline.
pub fn simulate_with_timeline(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
) -> (SimResult, Timeline) {
    let CostPass {
        block_cycles,
        block_warps,
        total_flops,
        mem_segments,
        atomic_ops,
        num_warps,
        l2_hit_rate,
    } = compute_block_costs(dev, cost, launch);

    // ---- Pass 3: greedy list scheduling of blocks onto SMs. ----
    #[derive(PartialEq)]
    struct SmSlot(f64, usize); // (available time, sm id) — min-heap
    impl Eq for SmSlot {}
    impl Ord for SmSlot {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; times are finite and non-negative.
            other
                .0
                .partial_cmp(&self.0)
                .unwrap()
                .then(other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for SmSlot {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<SmSlot> = (0..dev.num_sms).map(|i| SmSlot(0.0, i)).collect();
    let mut busy = vec![0.0f64; dev.num_sms];
    let mut timeline = Timeline {
        spans: vec![Vec::new(); dev.num_sms],
    };
    let mut occ_num = 0.0f64; // Σ active warps × cycles
    // Occupancy accounts for block co-residency: while the launch queue is
    // deep, each SM hosts roughly queue_depth/num_sms blocks concurrently
    // (bounded by hardware block slots). The makespan itself stays a
    // one-block-per-SM list schedule — co-residency hides latency, which
    // the roofline block cost already credits via its throughput terms.
    let co_res = (block_cycles.len() as f64 / dev.num_sms as f64)
        .floor()
        .clamp(1.0, dev.max_blocks_per_sm as f64);
    for (&cycles, &warps) in block_cycles.iter().zip(&block_warps) {
        let SmSlot(t, sm) = heap.pop().unwrap();
        busy[sm] += cycles;
        timeline.spans[sm].push((t, t + cycles));
        occ_num += (warps as f64 * co_res).min(dev.max_warps_per_sm as f64) * cycles;
        heap.push(SmSlot(t + cycles, sm));
    }
    let makespan = heap.iter().map(|s| s.0).fold(0.0f64, f64::max);
    let busy_total: f64 = busy.iter().sum();

    let sm_efficiency = if makespan > 0.0 {
        100.0 * busy_total / (dev.num_sms as f64 * makespan)
    } else {
        0.0
    };
    let achieved_occupancy = if busy_total > 0.0 {
        100.0 * occ_num / (dev.max_warps_per_sm as f64 * busy_total)
    } else {
        0.0
    };
    let time_s = makespan / (dev.clock_ghz * 1e9);
    let gflops = if time_s > 0.0 {
        total_flops as f64 / time_s / 1e9
    } else {
        0.0
    };
    let max_block_cycles = block_cycles.iter().cloned().fold(0.0f64, f64::max);
    let mean_block_cycles = if block_cycles.is_empty() {
        0.0
    } else {
        block_cycles.iter().sum::<f64>() / block_cycles.len() as f64
    };

    let result = SimResult {
        kernel: launch.name.clone(),
        makespan_cycles: makespan,
        time_s,
        sm_efficiency,
        achieved_occupancy,
        l2_hit_rate,
        total_flops,
        gflops,
        num_blocks: block_cycles.len(),
        num_warps,
        mem_segments,
        atomic_ops,
        max_block_cycles,
        mean_block_cycles,
    };
    (result, timeline)
}

/// The *co-resident* makespan bound: blocks list-scheduled onto
/// `num_sms × k` virtual executors, where `k` is the SM's block slot count
/// under a `nominal_warps`-per-block footprint (CUDA blocks reserve their
/// full warp footprint even when most warps are idle).
///
/// The default schedule ([`simulate`]) serializes blocks per SM — a
/// pessimistic bound where co-residency hides nothing; this function is the
/// optimistic bound where co-resident blocks overlap for free. Real
/// hardware sits between the two. Model-robustness tests check that the
/// paper's orderings (split > unsplit, hybrid ≥ pure) hold at *both*
/// bounds, so no conclusion hinges on the scheduler's pessimism.
pub fn co_resident_makespan(
    dev: &DeviceProfile,
    cost: &CostModel,
    launch: &KernelLaunch,
    nominal_warps: usize,
) -> f64 {
    let k = (dev.max_warps_per_sm / nominal_warps.max(1))
        .clamp(1, dev.max_blocks_per_sm)
        .max(1);
    let executors = dev.num_sms * k;
    let pass = compute_block_costs(dev, cost, launch);
    let mut finish_times = vec![0.0f64; executors];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        (0..executors).map(|i| std::cmp::Reverse((0, i))).collect();
    for &cycles in &pass.block_cycles {
        let std::cmp::Reverse((_, ex)) = heap.pop().unwrap();
        finish_times[ex] += cycles;
        heap.push(std::cmp::Reverse((finish_times[ex].to_bits(), ex)));
    }
    finish_times.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{BlockWork, WarpWork};

    fn dev() -> DeviceProfile {
        DeviceProfile::tiny() // 4 SMs
    }

    fn compute_block(fmas: u32, warps: usize) -> BlockWork {
        let mut b = BlockWork::new();
        for _ in 0..warps {
            let mut w = WarpWork::new();
            w.push(Op::Fma(fmas));
            b.warps.push(w);
        }
        b
    }

    #[test]
    fn single_block_uses_one_sm() {
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(100, 1));
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert_eq!(r.num_blocks, 1);
        // One of 4 SMs busy the whole time.
        assert!((r.sm_efficiency - 25.0).abs() < 1e-9);
        assert!((r.makespan_cycles - 100.0).abs() < 1e-9);
        assert_eq!(r.total_flops, 100 * 32 * 2);
    }

    #[test]
    fn balanced_blocks_fill_all_sms() {
        let mut launch = KernelLaunch::new("t");
        for _ in 0..8 {
            launch.blocks.push(compute_block(50, 1));
        }
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert!((r.sm_efficiency - 100.0).abs() < 1e-9);
        assert!((r.makespan_cycles - 100.0).abs() < 1e-9);
    }

    #[test]
    fn one_heavy_block_tanks_sm_efficiency() {
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(1000, 1));
        for _ in 0..3 {
            launch.blocks.push(compute_block(10, 1));
        }
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert!((r.makespan_cycles - 1000.0).abs() < 1e-9);
        assert!(r.sm_efficiency < 30.0, "sm_eff {}", r.sm_efficiency);

        // Splitting the heavy block 4-ways restores balance.
        let mut split = KernelLaunch::new("t");
        for _ in 0..4 {
            split.blocks.push(compute_block(250, 1));
        }
        for _ in 0..3 {
            split.blocks.push(compute_block(10, 1));
        }
        let r2 = simulate(&dev(), &CostModel::zero_overhead(), &split);
        assert!(r2.makespan_cycles < r.makespan_cycles / 3.0);
        assert!(r2.sm_efficiency > 2.0 * r.sm_efficiency);
    }

    #[test]
    fn heavy_warp_dominates_block() {
        // 4 warps: one with 1000 FMAs, three with 10. On a device with
        // issue width 2 the throughput bound is (1030/2) = 515, so the
        // critical warp (1000) rules — inter-warp imbalance made visible.
        let mut b = BlockWork::new();
        for fmas in [1000u32, 10, 10, 10] {
            let mut w = WarpWork::new();
            w.push(Op::Fma(fmas));
            b.warps.push(w);
        }
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(b);
        let r = simulate(&DeviceProfile::p100(), &CostModel::zero_overhead(), &launch);
        assert!((r.makespan_cycles - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_scales_with_warps_per_block() {
        let mut thin = KernelLaunch::new("thin");
        thin.blocks.push(compute_block(100, 1));
        let mut wide = KernelLaunch::new("wide");
        wide.blocks.push(compute_block(100, 8));
        let d = dev(); // max 16 warps/SM
        let c = CostModel::zero_overhead();
        let r1 = simulate(&d, &c, &thin);
        let r2 = simulate(&d, &c, &wide);
        assert!(r2.achieved_occupancy > 4.0 * r1.achieved_occupancy);
        assert!((r1.achieved_occupancy - 100.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn l2_reuse_raises_hit_rate() {
        let mut reuse = KernelLaunch::new("reuse");
        let mut stream = KernelLaunch::new("stream");
        for i in 0..4u64 {
            let mut br = BlockWork::new();
            let mut wr = WarpWork::new();
            let mut bs = BlockWork::new();
            let mut ws = WarpWork::new();
            for j in 0..100u64 {
                wr.push(Op::Load(j % 4)); // 4 hot segments
                ws.push(Op::Load(i * 1000 + j * 7)); // all distinct
            }
            br.warps.push(wr);
            reuse.blocks.push(br);
            bs.warps.push(ws);
            stream.blocks.push(bs);
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let r1 = simulate(&d, &c, &reuse);
        let r2 = simulate(&d, &c, &stream);
        assert!(r1.l2_hit_rate > 90.0);
        assert!(r2.l2_hit_rate < 5.0);
        // Hits are also faster.
        assert!(r1.makespan_cycles < r2.makespan_cycles);
    }

    #[test]
    fn atomic_conflicts_cost_cycles() {
        // 4 blocks all hammering the same output row vs. disjoint rows.
        let build = |shared: bool| {
            let mut l = KernelLaunch::new("a");
            for b in 0..4u32 {
                let mut blk = BlockWork::new();
                let mut w = WarpWork::new();
                for i in 0..50u64 {
                    let row = if shared { 0 } else { b };
                    w.push(Op::AtomicAdd {
                        row,
                        seg: 10_000 + row as u64 * 100 + i % 2,
                    });
                }
                blk.warps.push(w);
                l.blocks.push(blk);
            }
            l
        };
        let d = dev();
        let c = CostModel::zero_overhead();
        let hot = simulate(&d, &c, &build(true));
        let cold = simulate(&d, &c, &build(false));
        assert!(
            hot.makespan_cycles > 1.5 * cold.makespan_cycles,
            "hot {} vs cold {}",
            hot.makespan_cycles,
            cold.makespan_cycles
        );
        assert_eq!(hot.atomic_ops, 200);
    }

    #[test]
    fn replay_charges_lsu_without_cache_probes() {
        let mut plain = KernelLaunch::new("plain");
        let mut replayed = KernelLaunch::new("replayed");
        for launch in [&mut plain, &mut replayed] {
            let mut b = BlockWork::new();
            let mut w = WarpWork::new();
            w.push(Op::Load(1));
            if launch.name == "replayed" {
                w.push(Op::Replay(7));
            }
            b.warps.push(w);
            launch.blocks.push(b);
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let a = simulate(&d, &c, &plain);
        let b = simulate(&d, &c, &replayed);
        assert!(b.makespan_cycles > a.makespan_cycles);
        assert_eq!(b.mem_segments, a.mem_segments + 7);
        // Replays never touch the cache model: hit rates stay comparable
        // (here: both runs have exactly one cold miss).
        assert_eq!(a.l2_hit_rate, b.l2_hit_rate);
    }

    #[test]
    fn deterministic() {
        let mut launch = KernelLaunch::new("t");
        for i in 0..10 {
            launch.blocks.push(compute_block(10 + i, 2));
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let a = simulate(&d, &c, &launch);
        let b = simulate(&d, &c, &launch);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.l2_hit_rate, b.l2_hit_rate);
    }

    #[test]
    fn co_resident_bound_is_never_slower() {
        let mut launch = KernelLaunch::new("t");
        for i in 0..40 {
            launch.blocks.push(compute_block(10 + i, 2));
        }
        let d = dev();
        let c = CostModel::zero_overhead();
        let serial = simulate(&d, &c, &launch).makespan_cycles;
        let co = co_resident_makespan(&d, &c, &launch, 2);
        assert!(co <= serial + 1e-9, "co {co} vs serial {serial}");
        // With footprint = whole SM, the bounds coincide.
        let full = co_resident_makespan(&d, &c, &launch, d.max_warps_per_sm);
        assert!((full - serial).abs() < 1e-6);
    }

    #[test]
    fn empty_launch_is_zero() {
        let launch = KernelLaunch::new("empty");
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert_eq!(r.makespan_cycles, 0.0);
        assert_eq!(r.gflops, 0.0);
        assert_eq!(r.num_blocks, 0);
    }

    #[test]
    fn throughput_bound_when_many_warps() {
        // 16 warps × 100 FMAs in one block: compute-throughput bound
        // (16*100/1 = 1600) exceeds the critical warp (100).
        let mut launch = KernelLaunch::new("t");
        launch.blocks.push(compute_block(100, 16));
        let r = simulate(&dev(), &CostModel::zero_overhead(), &launch);
        assert!((r.makespan_cycles - 1600.0).abs() < 1e-9);
    }
}
