//! # gpu-sim — a deterministic GPU execution-model simulator
//!
//! The paper's contribution is a *scheduling* result: MTTKRP on a GPU is
//! slow when heavy fibers stall warps and heavy slices stall thread blocks,
//! and fast when work is rebalanced. Those phenomena live in the execution
//! model — warps in lockstep, blocks scheduled onto SMs, memory served in
//! coalesced 128-byte segments through a shared L2 — not in silicon. This
//! crate implements that execution model so the paper's kernels can be
//! "run" without CUDA hardware and report the same metrics nvprof does:
//!
//! * [`DeviceProfile`] — machine parameters (SM count, warp slots, L2
//!   geometry, clock); [`DeviceProfile::p100`] mirrors the paper's Tesla
//!   P100.
//! * [`grid`] — the work description a kernel emits: a grid of
//!   [`BlockWork`]s, each a set of [`WarpWork`] instruction streams over
//!   synthetic addresses from an [`AddressSpace`].
//! * [`L2Cache`] — a set-associative LRU model producing the Table II
//!   `L2 hit rate` column.
//! * [`simulate`] — the two-level scheduler: a roofline-style block cost
//!   (compute throughput vs. memory throughput vs. the critical warp) and
//!   greedy list scheduling of blocks onto SMs. Returns a [`SimResult`]
//!   with makespan, `sm_efficiency`, `achieved_occupancy`, L2 hit rate and
//!   GFLOPs.
//!
//! ## Fidelity envelope
//!
//! The model is throughput-calibrated, not cycle-accurate: absolute GFLOPs
//! depend on the [`CostModel`] constants (documented calibration in
//! EXPERIMENTS.md), but *orderings* between kernels and the response to
//! load imbalance — the quantities every figure of the paper reports — are
//! structural properties of the scheduler. Everything is deterministic:
//! same launch, same cycle counts.

pub mod cache;
pub mod cost;
pub mod device;
pub mod fault;
pub mod grid;
pub mod interconnect;
pub mod mem;
pub mod memtrace;
pub mod sched;
pub mod trace;

pub use cache::L2Cache;
pub use cost::CostModel;
pub use device::DeviceProfile;
pub use fault::{BitFlip, FaultKind, FaultPlan, FaultSpecError, InjectedFault};
pub use grid::{AddressSpace, ArraySpan, BlockWork, KernelLaunch, Op, WarpWork};
pub use interconnect::Interconnect;
pub use mem::{AllocRecord, DeviceMemory, MemError, MemLease, OomEvent};
pub use memtrace::{replay_launch, LaunchTrace, MemTraceRecorder, ReplayCheck, TraceAccess};
pub use sched::{
    co_resident_makespan, simulate, simulate_faulted, simulate_instrumented, simulate_profiled,
    simulate_with_timeline, AtomicRowCharge, BlockCost, BlockPlacement, SimInstruments, SimProfile,
    SimResult, StallReason, Timeline,
};
pub use trace::{append_chrome_trace, chrome_trace};
