//! Instruction cost model.
//!
//! Two views of every memory access are maintained:
//!
//! * a **latency** view (cycles a lone warp waits), which dominates blocks
//!   with too few warps to hide latency — the under-occupancy pathology of
//!   Table II; and
//! * a **throughput** view (segment-cycles consumed on the SM's memory
//!   path), which dominates well-occupied kernels.
//!
//! A block's duration is the max of the two aggregate views and its
//! critical warp (see [`crate::sched`]). Constants are calibrated so a
//! balanced, memory-bound MTTKRP lands in the paper's measured GFLOPs range
//! on the P100 profile (see EXPERIMENTS.md, "Calibration"); orderings
//! between kernels do not depend on the exact values — sensitivity is
//! exercised by the `ablation_latency_hiding` bench.

/// Cycle costs for the simulator. All per-warp-instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles per warp-wide FMA (throughput view divides by the device's
    /// `compute_width_warps`).
    pub fma_cycles: f64,
    /// Latency of an L2-hit 128-B segment access.
    pub l2_hit_latency: f64,
    /// Latency of a DRAM 128-B segment access.
    pub dram_latency: f64,
    /// Throughput cost (SM segment-cycles) of an L2-hit segment.
    pub l2_hit_throughput: f64,
    /// Throughput cost of a DRAM segment.
    pub dram_throughput: f64,
    /// Extra latency of an atomic RMW beyond the underlying access.
    pub atomic_latency: f64,
    /// Extra throughput cost of an atomic RMW.
    pub atomic_throughput: f64,
    /// Serialization surcharge per *other* thread block concurrently
    /// updating the same output row (applied per atomic instruction,
    /// capped by [`CostModel::conflict_cap`]).
    pub atomic_conflict_cycles: f64,
    /// Cap on the counted concurrent writers.
    pub conflict_cap: u32,
    /// How many outstanding memory accesses a single warp overlaps
    /// (instruction-level parallelism within one warp): the latency view
    /// divides by this.
    pub warp_mlp: f64,
    /// Fixed cycles per thread block: dispatch, prologue (range/pointer
    /// setup), `__syncthreads` epilogue, and tail-wave underutilization.
    /// This is the cost that sinks micro-block kernels — e.g. GPU-CSF's
    /// block-per-slice mapping on tensors with millions of tiny slices
    /// (the paper's freebase rows of Table II) — while being noise for
    /// kernels whose blocks carry hundreds of nonzeros.
    pub block_overhead_cycles: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fma_cycles: 1.0,
            l2_hit_latency: 36.0,
            dram_latency: 220.0,
            l2_hit_throughput: 7.0,
            dram_throughput: 18.0,
            atomic_latency: 40.0,
            atomic_throughput: 14.0,
            atomic_conflict_cycles: 18.0,
            conflict_cap: 32,
            warp_mlp: 1.5,
            block_overhead_cycles: 1_000.0,
        }
    }
}

impl CostModel {
    /// A cost model without per-block overhead — useful in unit tests that
    /// assert exact cycle counts.
    pub fn zero_overhead() -> CostModel {
        CostModel {
            block_overhead_cycles: 0.0,
            ..Default::default()
        }
    }
}

impl CostModel {
    /// Latency contribution of one segment access.
    #[inline]
    pub fn mem_latency(&self, hit: bool) -> f64 {
        let raw = if hit {
            self.l2_hit_latency
        } else {
            self.dram_latency
        };
        raw / self.warp_mlp
    }

    /// Throughput contribution of one segment access.
    #[inline]
    pub fn mem_throughput(&self, hit: bool) -> f64 {
        if hit {
            self.l2_hit_throughput
        } else {
            self.dram_throughput
        }
    }

    /// Conflict surcharge for an atomic seen by `writers` distinct blocks.
    #[inline]
    pub fn conflict_surcharge(&self, writers: u32) -> f64 {
        let others = writers.saturating_sub(1).min(self.conflict_cap);
        self.atomic_conflict_cycles * others as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sanely() {
        let c = CostModel::default();
        assert!(c.dram_latency > c.l2_hit_latency);
        assert!(c.dram_throughput > c.l2_hit_throughput);
        assert!(c.mem_latency(true) < c.mem_latency(false));
    }

    #[test]
    fn conflict_surcharge_caps() {
        let c = CostModel::default();
        assert_eq!(c.conflict_surcharge(1), 0.0);
        assert_eq!(c.conflict_surcharge(2), c.atomic_conflict_cycles);
        assert_eq!(
            c.conflict_surcharge(10_000),
            c.atomic_conflict_cycles * c.conflict_cap as f64
        );
    }
}
