//! Per-warp memory address-stream recording and trace replay.
//!
//! The gpucachesim/accel-sim lineage validates GPU simulators by
//! re-deriving cache statistics from an emitted address trace alone and
//! comparing them against the live run. This module brings that
//! discipline here: when a [`MemTraceRecorder`] is attached to a
//! simulation, the L2 replay pass records every sampled coalesced-segment
//! access — issuing block, warp, segment id, L2 set, and the live
//! hit/miss verdict — plus the cache geometry, so [`replay_launch`] can
//! rebuild a cold cache from the trace file and check that it reproduces
//! the live hit/miss stream exactly (possible only at `sample_every == 1`;
//! sampled traces still replay, but only the recorded verdicts can be
//! compared statistically).
//!
//! Trace files are JSONL: one header object per launch followed by one
//! compact array per access —
//!
//! ```json
//! {"type":"launch","kernel":"hb-csf","capacity_bytes":4194304,"line_bytes":128,"assoc":16,"sample_every":1,"live_hits":10,"live_misses":2,"accesses":12}
//! [0,0,774,6,1]
//! ```
//!
//! where the array is `[block, warp, seg, set, hit]`.

use crate::cache::L2Cache;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::path::Path;

/// One sampled memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAccess {
    /// Issuing block index within the launch.
    pub block: u32,
    /// Issuing warp index within the block.
    pub warp: u32,
    /// Coalesced 128-B segment id.
    pub seg: u64,
    /// L2 set the segment maps to under the recorded geometry.
    pub set: u32,
    /// Live simulation's verdict for this access.
    pub hit: bool,
}

/// The recorded address stream of one kernel launch, with enough cache
/// geometry to replay it from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchTrace {
    pub kernel: String,
    pub capacity_bytes: usize,
    pub line_bytes: usize,
    pub assoc: usize,
    /// Every k-th access was recorded (1 = full stream).
    pub sample_every: u64,
    /// Hits the live simulation counted over the *full* stream.
    pub live_hits: u64,
    /// Misses the live simulation counted over the *full* stream.
    pub live_misses: u64,
    pub accesses: Vec<TraceAccess>,
}

impl LaunchTrace {
    /// Live hit rate in percent, as the simulation reported it.
    pub fn live_hit_rate(&self) -> f64 {
        let total = self.live_hits + self.live_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.live_hits as f64 / total as f64
        }
    }
}

/// Thread-safe collector the simulator pushes one [`LaunchTrace`] into
/// per simulated launch. Opt-in: simulations run without one attached pay
/// nothing.
#[derive(Debug)]
pub struct MemTraceRecorder {
    sample_every: u64,
    launches: Mutex<Vec<LaunchTrace>>,
}

impl MemTraceRecorder {
    /// Records every `sample_every`-th access (clamped to ≥ 1). Use 1 for
    /// replay-exact traces.
    pub fn new(sample_every: u64) -> MemTraceRecorder {
        MemTraceRecorder {
            sample_every: sample_every.max(1),
            launches: Mutex::new(Vec::new()),
        }
    }

    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    pub(crate) fn push(&self, trace: LaunchTrace) {
        self.launches.lock().push(trace);
    }

    /// Snapshot of all recorded launches, in simulation order.
    pub fn launches(&self) -> Vec<LaunchTrace> {
        self.launches.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.launches.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.launches.lock().is_empty()
    }

    /// Writes the trace as JSONL (header object + access arrays per
    /// launch), creating parent directories.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let launches = self.launches.lock();
        let mut out = String::new();
        for tr in launches.iter() {
            let _ = writeln!(
                out,
                "{{\"type\":\"launch\",\"kernel\":{},\"capacity_bytes\":{},\"line_bytes\":{},\
                 \"assoc\":{},\"sample_every\":{},\"live_hits\":{},\"live_misses\":{},\
                 \"accesses\":{}}}",
                serde_json::to_string(&tr.kernel).unwrap_or_else(|_| "\"\"".into()),
                tr.capacity_bytes,
                tr.line_bytes,
                tr.assoc,
                tr.sample_every,
                tr.live_hits,
                tr.live_misses,
                tr.accesses.len()
            );
            for a in &tr.accesses {
                let _ = writeln!(
                    out,
                    "[{},{},{},{},{}]",
                    a.block,
                    a.warp,
                    a.seg,
                    a.set,
                    u8::from(a.hit)
                );
            }
        }
        std::fs::write(path, out)
    }
}

/// Parses a trace file written by [`MemTraceRecorder::write_jsonl`].
pub fn read_jsonl(path: &Path) -> Result<Vec<LaunchTrace>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_jsonl(&text)
}

/// Parses trace JSONL from a string (see [`read_jsonl`]).
pub fn parse_jsonl(text: &str) -> Result<Vec<LaunchTrace>, String> {
    let mut launches: Vec<LaunchTrace> = Vec::new();
    let mut pending: u64 = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = serde_json::from_str(line)
            .map_err(|e| format!("trace line {}: bad JSON: {e:?}", lineno + 1))?;
        if pending > 0 {
            let arr = v
                .as_array()
                .ok_or_else(|| format!("trace line {}: expected access array", lineno + 1))?;
            if arr.len() != 5 {
                return Err(format!(
                    "trace line {}: access array has {} elements, want 5",
                    lineno + 1,
                    arr.len()
                ));
            }
            let num = |i: usize| -> Result<u64, String> {
                arr[i]
                    .as_u64()
                    .ok_or_else(|| format!("trace line {}: non-integer field {i}", lineno + 1))
            };
            launches
                .last_mut()
                .expect("pending implies a launch header")
                .accesses
                .push(TraceAccess {
                    block: num(0)? as u32,
                    warp: num(1)? as u32,
                    seg: num(2)?,
                    set: num(3)? as u32,
                    hit: num(4)? != 0,
                });
            pending -= 1;
        } else {
            if v["type"].as_str() != Some("launch") {
                return Err(format!(
                    "trace line {}: expected launch header, got {line}",
                    lineno + 1
                ));
            }
            let num = |k: &str| -> Result<u64, String> {
                v[k].as_u64()
                    .ok_or_else(|| format!("trace line {}: missing field {k:?}", lineno + 1))
            };
            pending = num("accesses")?;
            launches.push(LaunchTrace {
                kernel: v["kernel"].as_str().unwrap_or("").to_string(),
                capacity_bytes: num("capacity_bytes")? as usize,
                line_bytes: num("line_bytes")? as usize,
                assoc: num("assoc")? as usize,
                sample_every: num("sample_every")?,
                live_hits: num("live_hits")?,
                live_misses: num("live_misses")?,
                accesses: Vec::with_capacity(pending as usize),
            });
        }
    }
    if pending > 0 {
        return Err(format!("trace truncated: {pending} accesses missing"));
    }
    Ok(launches)
}

/// Result of feeding a recorded launch back through a cold cache.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheck {
    /// Hits the replayed cache counted over the recorded accesses.
    pub hits: u64,
    /// Misses the replayed cache counted over the recorded accesses.
    pub misses: u64,
    /// Replayed hit rate, percent.
    pub hit_rate: f64,
    /// Accesses whose replayed verdict disagreed with the recorded one.
    pub verdict_mismatches: u64,
    /// Accesses whose recorded set disagreed with the rebuilt geometry.
    pub set_mismatches: u64,
    /// Whether the trace is replay-exact (`sample_every == 1`): only then
    /// must `hits`/`misses` equal the live counters and mismatches be 0.
    pub exact: bool,
}

/// Rebuilds the cache geometry from the trace header and replays the
/// recorded address stream through it from cold, re-deriving the L2
/// statistics from the trace alone.
pub fn replay_launch(trace: &LaunchTrace) -> ReplayCheck {
    let mut cache = L2Cache::new(trace.capacity_bytes, trace.line_bytes, trace.assoc);
    let mut verdict_mismatches = 0u64;
    let mut set_mismatches = 0u64;
    for a in &trace.accesses {
        if cache.set_index(a.seg) as u32 != a.set {
            set_mismatches += 1;
        }
        let hit = cache.access(a.seg);
        if hit != a.hit {
            verdict_mismatches += 1;
        }
    }
    ReplayCheck {
        hits: cache.hits(),
        misses: cache.misses(),
        hit_rate: cache.hit_rate(),
        verdict_mismatches,
        set_mismatches,
        exact: trace.sample_every == 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> LaunchTrace {
        // Geometry: 4 sets × 2 ways. Stream chosen so there are both hits
        // and misses.
        let segs = [0u64, 4, 0, 8, 4, 1, 1, 0];
        let mut cache = L2Cache::new(1024, 128, 2);
        let accesses: Vec<TraceAccess> = segs
            .iter()
            .enumerate()
            .map(|(i, &seg)| TraceAccess {
                block: (i / 4) as u32,
                warp: (i % 4) as u32,
                seg,
                set: cache.set_index(seg) as u32,
                hit: cache.access(seg),
            })
            .collect();
        LaunchTrace {
            kernel: "unit".into(),
            capacity_bytes: 1024,
            line_bytes: 128,
            assoc: 2,
            sample_every: 1,
            live_hits: cache.hits(),
            live_misses: cache.misses(),
            accesses,
        }
    }

    #[test]
    fn replay_reproduces_live_verdicts_exactly() {
        let tr = sample_trace();
        let check = replay_launch(&tr);
        assert!(check.exact);
        assert_eq!(check.verdict_mismatches, 0);
        assert_eq!(check.set_mismatches, 0);
        assert_eq!(check.hits, tr.live_hits);
        assert_eq!(check.misses, tr.live_misses);
        assert!((check.hit_rate - tr.live_hit_rate()).abs() < 1e-12);
    }

    #[test]
    fn tampered_trace_is_caught() {
        let mut tr = sample_trace();
        // Flip one verdict and one set assignment.
        tr.accesses[2].hit = !tr.accesses[2].hit;
        tr.accesses[3].set += 1;
        let check = replay_launch(&tr);
        assert_eq!(check.verdict_mismatches, 1);
        assert_eq!(check.set_mismatches, 1);
    }

    #[test]
    fn jsonl_round_trip() {
        let tr = sample_trace();
        let rec = MemTraceRecorder::new(1);
        rec.push(tr.clone());
        let dir = std::env::temp_dir().join("gpu-sim-memtrace-test");
        let path = dir.join("trace.jsonl");
        rec.write_jsonl(&path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, vec![tr]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trace_rejected() {
        let text = "{\"type\":\"launch\",\"kernel\":\"k\",\"capacity_bytes\":1024,\
                    \"line_bytes\":128,\"assoc\":2,\"sample_every\":1,\"live_hits\":0,\
                    \"live_misses\":1,\"accesses\":2}\n[0,0,7,3,0]\n";
        let err = parse_jsonl(text).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn recorder_clamps_sampling_rate() {
        assert_eq!(MemTraceRecorder::new(0).sample_every(), 1);
        assert_eq!(MemTraceRecorder::new(8).sample_every(), 8);
    }
}
