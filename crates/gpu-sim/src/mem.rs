//! simmem: a deterministic device-memory model.
//!
//! [`DeviceMemory`] is a tracked allocator standing in for `cudaMalloc` on
//! the simulated device: a configurable capacity, an alignment rule, a
//! per-allocation ledger, a high-water mark, and seeded OOM/fragmentation
//! fault injection driven by the same [`FaultPlan`] hash streams as the
//! transient-fault machinery. It never hands out real storage — kernels
//! already compute on host memory — it *accounts* for what the device
//! would have to hold, so allocation pressure, out-of-memory failures,
//! and fragmentation become visible, reproducible events.
//!
//! Two entry points matter:
//!
//! * [`DeviceMemory::lease`] — unconditional tracking. Used by the plain
//!   kernel paths: records the allocation, advances the high-water mark,
//!   frees on [`MemLease`] drop. Never fails; a run that was going to
//!   succeed still succeeds, it is just *observed*.
//! * [`DeviceMemory::try_lease`] — the checked path used by out-of-core
//!   execution: enforces capacity (less any injected fragmentation
//!   hold-back), draws a seeded allocation-failure fault, and records an
//!   [`OomEvent`] when it refuses. Failures are deterministic functions of
//!   `(seed, kernel, attempt, site)`.
//!
//! With an unlimited capacity and no mem-fault plan, both paths degenerate
//! to bookkeeping: results are bit-for-bit those of an untracked run.

#![deny(clippy::unwrap_used)]

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::fault::FaultPlan;

/// Default allocation granularity: 256 bytes, `cudaMalloc`'s alignment.
pub const DEFAULT_MEM_ALIGN: u64 = 256;

/// Why a checked allocation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The request does not fit in the remaining capacity.
    Oom {
        label: String,
        requested: u64,
        in_use: u64,
        capacity: u64,
    },
    /// A seeded allocation-failure fault fired (transient: a retry at a
    /// different attempt/site re-rolls the draw).
    Injected { label: String, site: u64 },
    /// The request's byte size overflowed 64-bit arithmetic — by
    /// definition it can never fit in any device.
    Overflow { label: String },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Oom {
                label,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "out of device memory allocating '{label}': requested {requested} B \
                 with {in_use} B in use of {capacity} B"
            ),
            MemError::Injected { label, site } => {
                write!(
                    f,
                    "injected allocation failure for '{label}' at site {site}"
                )
            }
            MemError::Overflow { label } => {
                write!(f, "allocation size for '{label}' overflows u64")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// One ledger entry: an allocation this memory has seen.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct AllocRecord {
    /// Monotone allocation id (ledger order == allocation order).
    pub id: u64,
    /// What the allocation held, e.g. `"hb-csf.factors"`.
    pub label: String,
    /// Requested bytes.
    pub bytes: u64,
    /// Bytes actually reserved (request rounded up to the alignment).
    pub padded: u64,
    /// Whether the allocation has been released.
    pub freed: bool,
}

/// One refused (or injected-to-fail) allocation, in occurrence order.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct OomEvent {
    pub label: String,
    pub requested: u64,
    pub in_use: u64,
    pub capacity: u64,
    /// `true` when a fault draw (not genuine pressure) caused the failure.
    pub injected: bool,
    /// The draw site (meaningful only for injected events).
    pub site: u64,
}

#[derive(Debug, Default)]
struct MemState {
    in_use: u64,
    high_water: u64,
    next_id: u64,
    ledger: Vec<AllocRecord>,
    oom_events: Vec<OomEvent>,
}

/// A tracked device-memory arena. Cheap to share: clone the `Arc`.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    align: u64,
    state: Mutex<MemState>,
}

impl Default for DeviceMemory {
    fn default() -> Self {
        DeviceMemory::unlimited()
    }
}

impl DeviceMemory {
    /// A memory with no capacity limit (`u64::MAX`): pure observation.
    pub fn unlimited() -> DeviceMemory {
        DeviceMemory::with_capacity(u64::MAX)
    }

    /// A memory holding at most `capacity` bytes.
    pub fn with_capacity(capacity: u64) -> DeviceMemory {
        DeviceMemory {
            capacity,
            align: DEFAULT_MEM_ALIGN,
            state: Mutex::new(MemState::default()),
        }
    }

    /// Overrides the allocation granularity (power of two expected; falls
    /// back to [`DEFAULT_MEM_ALIGN`] for zero).
    pub fn with_align(mut self, align: u64) -> DeviceMemory {
        self.align = if align == 0 { DEFAULT_MEM_ALIGN } else { align };
        self
    }

    /// Configured capacity in bytes (`u64::MAX` = unlimited).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether this memory enforces no limit.
    pub fn is_unlimited(&self) -> bool {
        self.capacity == u64::MAX
    }

    /// The capacity actually available to allocations under `plan`:
    /// fragmentation injection (`frag:F`) holds back an `F` fraction of
    /// the configured capacity, modeling a heap whose free space no longer
    /// coalesces. Unlimited memories are immune.
    pub fn effective_capacity(&self, plan: Option<&FaultPlan>) -> u64 {
        if self.is_unlimited() {
            return self.capacity;
        }
        let frag = plan.map_or(0.0, |p| p.frag_frac.clamp(0.0, 1.0));
        if frag <= 0.0 {
            return self.capacity;
        }
        let held = (self.capacity as f64 * frag) as u64;
        self.capacity.saturating_sub(held)
    }

    /// A poisoned lock only means another thread panicked mid-update of
    /// *statistics*; the bookkeeping is still structurally sound, so keep
    /// accounting rather than cascading the panic.
    fn lock(&self) -> MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Bytes currently leased.
    pub fn in_use(&self) -> u64 {
        self.lock().in_use
    }

    /// Largest `in_use` ever observed.
    pub fn high_water(&self) -> u64 {
        self.lock().high_water
    }

    /// Snapshot of every allocation seen so far, in allocation order.
    pub fn ledger(&self) -> Vec<AllocRecord> {
        self.lock().ledger.clone()
    }

    /// Snapshot of every refused allocation, in occurrence order.
    pub fn oom_events(&self) -> Vec<OomEvent> {
        self.lock().oom_events.clone()
    }

    /// Number of refused allocations so far.
    pub fn oom_count(&self) -> u64 {
        self.lock().oom_events.len() as u64
    }

    /// Rounds `bytes` up to the allocation granularity (a zero-byte
    /// request still consumes one granule, like `cudaMalloc(0)` on most
    /// driver versions consumes a handle). `None` on u64 overflow.
    pub fn pad(&self, bytes: u64) -> Option<u64> {
        let padded = bytes.checked_add(self.align - 1)? / self.align * self.align;
        Some(padded.max(self.align))
    }

    /// Records the allocations in `parts` (label, requested bytes)
    /// unconditionally: ledger entries, `in_use`, and the high-water mark
    /// advance; nothing is enforced. Sizes that overflow the padding
    /// arithmetic saturate. Freed when the returned lease drops.
    pub fn lease(self: &Arc<Self>, parts: &[(String, u64)]) -> MemLease {
        let mut st = self.lock();
        let mut held = Vec::with_capacity(parts.len());
        for (label, bytes) in parts {
            let padded = self.pad(*bytes).unwrap_or(u64::MAX);
            let id = st.next_id;
            st.next_id += 1;
            st.ledger.push(AllocRecord {
                id,
                label: label.clone(),
                bytes: *bytes,
                padded,
                freed: false,
            });
            st.in_use = st.in_use.saturating_add(padded);
            held.push((id, padded));
        }
        st.high_water = st.high_water.max(st.in_use);
        drop(st);
        MemLease {
            mem: Arc::clone(self),
            held,
        }
    }

    /// The checked allocation path: fails (recording an [`OomEvent`]) when
    /// the seeded fault draw for `(kernel, site)` fires, when any size
    /// overflows, or when the request does not fit in the effective
    /// capacity. On success the allocations are ledgered exactly as
    /// [`DeviceMemory::lease`] would.
    pub fn try_lease(
        self: &Arc<Self>,
        kernel: &str,
        parts: &[(String, u64)],
        plan: Option<&FaultPlan>,
        site: u64,
    ) -> Result<MemLease, MemError> {
        let label = || {
            parts
                .first()
                .map_or_else(|| kernel.to_string(), |(l, _)| l.clone())
        };
        let mut total: u64 = 0;
        for (l, bytes) in parts {
            let padded = self
                .pad(*bytes)
                .ok_or_else(|| MemError::Overflow { label: l.clone() })?;
            total = total
                .checked_add(padded)
                .ok_or_else(|| MemError::Overflow { label: l.clone() })?;
        }
        if plan.is_some_and(|p| p.alloc_fails(kernel, site)) {
            let mut st = self.lock();
            let ev = OomEvent {
                label: label(),
                requested: total,
                in_use: st.in_use,
                capacity: self.capacity,
                injected: true,
                site,
            };
            st.oom_events.push(ev);
            return Err(MemError::Injected {
                label: label(),
                site,
            });
        }
        let capacity = self.effective_capacity(plan);
        {
            let mut st = self.lock();
            if st.in_use.saturating_add(total) > capacity {
                let ev = OomEvent {
                    label: label(),
                    requested: total,
                    in_use: st.in_use,
                    capacity,
                    injected: false,
                    site,
                };
                st.oom_events.push(ev);
                return Err(MemError::Oom {
                    label: label(),
                    requested: total,
                    in_use: st.in_use,
                    capacity,
                });
            }
        }
        Ok(self.lease(parts))
    }
}

/// RAII handle over a batch of allocations: dropping it releases them
/// (marking the ledger entries freed and reducing `in_use`).
#[derive(Debug)]
pub struct MemLease {
    mem: Arc<DeviceMemory>,
    /// `(allocation id, padded bytes)` per held allocation.
    held: Vec<(u64, u64)>,
}

impl MemLease {
    /// Total padded bytes this lease holds.
    pub fn bytes(&self) -> u64 {
        self.held.iter().map(|&(_, b)| b).sum()
    }
}

impl Drop for MemLease {
    fn drop(&mut self) {
        let mut st = self.mem.lock();
        for &(id, padded) in &self.held {
            st.in_use = st.in_use.saturating_sub(padded);
            if let Some(rec) = st.ledger.iter_mut().find(|r| r.id == id) {
                rec.freed = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts(specs: &[(&str, u64)]) -> Vec<(String, u64)> {
        specs.iter().map(|&(l, b)| (l.to_string(), b)).collect()
    }

    #[test]
    fn lease_tracks_high_water_and_frees_on_drop() {
        let mem = Arc::new(DeviceMemory::with_capacity(1 << 20));
        {
            let a = mem.lease(&parts(&[("a", 1000)]));
            assert_eq!(mem.in_use(), 1024); // padded to 256-B granules
            assert_eq!(a.bytes(), 1024);
            let _b = mem.lease(&parts(&[("b", 100)]));
            assert_eq!(mem.in_use(), 1024 + 256);
            assert_eq!(mem.high_water(), 1024 + 256);
        }
        assert_eq!(mem.in_use(), 0, "drop releases");
        assert_eq!(mem.high_water(), 1024 + 256, "high water persists");
        let ledger = mem.ledger();
        assert_eq!(ledger.len(), 2);
        assert!(ledger.iter().all(|r| r.freed));
    }

    #[test]
    fn try_lease_enforces_capacity_and_records_oom() {
        let mem = Arc::new(DeviceMemory::with_capacity(1024));
        let ok = mem.try_lease("k", &parts(&[("fits", 512)]), None, 0);
        assert!(ok.is_ok());
        let held = ok.expect("fits");
        let err = mem.try_lease("k", &parts(&[("too-big", 1024)]), None, 1);
        match err {
            Err(MemError::Oom {
                requested, in_use, ..
            }) => {
                assert_eq!(requested, 1024);
                assert_eq!(in_use, 512);
            }
            other => panic!("expected Oom, got {other:?}"),
        }
        assert_eq!(mem.oom_count(), 1);
        drop(held);
        assert!(mem
            .try_lease("k", &parts(&[("now-fits", 1024)]), None, 2)
            .is_ok());
    }

    #[test]
    fn injected_oom_is_deterministic_and_site_keyed() {
        let plan = FaultPlan::parse("oom:0.5", 0xA110C).expect("valid spec");
        let mem = Arc::new(DeviceMemory::unlimited());
        let draws: Vec<bool> = (0..64)
            .map(|site| {
                mem.try_lease("k", &parts(&[("x", 128)]), Some(&plan), site)
                    .is_err()
            })
            .collect();
        assert!(draws.iter().any(|&d| d), "rate 0.5 fires somewhere");
        assert!(draws.iter().any(|&d| !d), "rate 0.5 spares somewhere");
        // Exact replay: same plan, same sites, same outcomes.
        let again: Vec<bool> = (0..64)
            .map(|site| {
                mem.try_lease("k", &parts(&[("x", 128)]), Some(&plan), site)
                    .is_err()
            })
            .collect();
        assert_eq!(draws, again);
        let injected = mem.oom_events().iter().filter(|e| e.injected).count();
        assert_eq!(injected, draws.iter().filter(|&&d| d).count() * 2);
    }

    #[test]
    fn fragmentation_shrinks_effective_capacity() {
        let plan = FaultPlan::parse("frag:0.25", 1).expect("valid spec");
        let mem = Arc::new(DeviceMemory::with_capacity(1 << 20));
        assert_eq!(mem.effective_capacity(None), 1 << 20);
        assert_eq!(mem.effective_capacity(Some(&plan)), (1 << 20) * 3 / 4);
        let err = mem.try_lease("k", &parts(&[("big", (1 << 20) * 7 / 8)]), Some(&plan), 0);
        assert!(matches!(err, Err(MemError::Oom { .. })));
        assert!(mem
            .try_lease("k", &parts(&[("big", (1 << 20) * 7 / 8)]), None, 0)
            .is_ok());
    }

    #[test]
    fn overflowing_requests_are_typed_errors() {
        let mem = Arc::new(DeviceMemory::unlimited());
        let err = mem.try_lease("k", &parts(&[("huge", u64::MAX - 1)]), None, 0);
        assert!(matches!(err, Err(MemError::Overflow { .. })));
        // The unchecked path saturates instead of panicking.
        let lease = mem.lease(&parts(&[("huge", u64::MAX - 1)]));
        assert_eq!(lease.bytes(), u64::MAX);
    }

    #[test]
    fn unlimited_memory_never_ooms_organically() {
        let mem = Arc::new(DeviceMemory::unlimited());
        for site in 0..32 {
            assert!(mem
                .try_lease("k", &parts(&[("x", 1 << 40)]), None, site)
                .is_ok());
        }
        assert_eq!(mem.oom_count(), 0);
    }
}
