//! Bridges the simulator's [`SimProfile`](crate::sched::SimProfile) into
//! `simprof`'s exporters.
//!
//! [`chrome_trace`] turns one simulated launch into a Chrome-trace/Perfetto
//! document: the kernel is a process, every SM is a thread track, and every
//! scheduled block is one complete slice whose category is its
//! [`StallReason`](crate::sched::StallReason) (so Perfetto colors blocks by
//! bottleneck) and whose `args` carry the full roofline decomposition.
//! [`SimResult::metric_row`] produces the matching nvprof-table row, taken
//! verbatim from the result's fields so text and JSON never disagree.

use serde_json::json;
use simprof::ChromeTrace;

use crate::sched::{SimProfile, SimResult};

/// Microseconds of simulated time per cycle for this result (1.0 for a
/// degenerate empty launch, so traces stay well-formed).
fn us_per_cycle(result: &SimResult) -> f64 {
    if result.makespan_cycles > 0.0 {
        result.time_s * 1e6 / result.makespan_cycles
    } else {
        1.0
    }
}

/// Appends one simulated launch to `trace` under process `pid`.
///
/// Use this form to overlay several launches (e.g. unsplit vs. split) in
/// one document, one process group each; [`chrome_trace`] is the
/// single-launch convenience wrapper.
pub fn append_chrome_trace(
    trace: &mut ChromeTrace,
    pid: u64,
    result: &SimResult,
    profile: &SimProfile,
) {
    let scale = us_per_cycle(result);
    trace.name_process(pid, &format!("kernel: {}", result.kernel));
    for sm in 0..profile.timeline.spans.len() {
        trace.name_track(pid, sm as u64, &format!("SM {sm}"));
    }
    for p in &profile.placements {
        let b = &profile.blocks[p.block];
        trace.slice(
            &format!("block {}", p.block),
            b.stall_reason().as_str(),
            pid,
            p.sm as u64,
            p.start * scale,
            (p.end - p.start) * scale,
            json!({
                "cycles": b.cycles,
                "compute_cycles": b.compute_cycles,
                "mem_throughput_cycles": b.mem_throughput_cycles,
                "critical_warp_cycles": b.critical_warp_cycles,
                "overhead_cycles": b.overhead_cycles,
                "atomic_conflict_cycles": b.atomic_conflict_cycles,
                "warps": b.warps,
                "flops": b.flops,
                "mem_segments": b.mem_segments,
                "atomic_ops": b.atomic_ops,
            }),
        );
    }
}

/// One simulated launch as a complete Chrome-trace document: per-SM
/// tracks, one slice per scheduled block.
pub fn chrome_trace(result: &SimResult, profile: &SimProfile) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    append_chrome_trace(&mut trace, 0, result, profile);
    trace
}

impl SimResult {
    /// This result as one nvprof-table row (Table II columns). Values are
    /// copied verbatim from the result, so the rendered table always
    /// matches the machine-readable JSON numerically.
    pub fn metric_row(&self) -> simprof::MetricRow {
        simprof::MetricRow {
            kernel: self.kernel.clone(),
            gflops: self.gflops,
            achieved_occupancy: self.achieved_occupancy,
            sm_efficiency: self.sm_efficiency,
            l2_hit_rate: self.l2_hit_rate,
            makespan_cycles: self.makespan_cycles,
            time_ms: self.time_s * 1e3,
            num_blocks: self.num_blocks,
            num_warps: self.num_warps,
            atomic_ops: self.atomic_ops,
            mem_segments: self.mem_segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::device::DeviceProfile;
    use crate::grid::{BlockWork, KernelLaunch, Op, WarpWork};
    use crate::sched::simulate_profiled;
    use simprof::Registry;

    fn launch(n_blocks: usize) -> KernelLaunch {
        let mut l = KernelLaunch::new("trace-test");
        for b in 0..n_blocks {
            let mut blk = BlockWork::new();
            let mut w = WarpWork::new();
            w.push(Op::Fma(10 + 5 * b as u32));
            w.push(Op::Load(b as u64 * 8));
            blk.warps.push(w);
            l.blocks.push(blk);
        }
        l
    }

    fn sim(n_blocks: usize) -> (SimResult, SimProfile) {
        simulate_profiled(
            &DeviceProfile::tiny(),
            &CostModel::default(),
            &launch(n_blocks),
            &Registry::new(),
        )
    }

    #[test]
    fn trace_round_trips_and_has_one_slice_per_block() {
        let (r, p) = sim(11);
        let trace = chrome_trace(&r, &p);
        let text = trace.to_json_string();
        let v = serde_json::from_str(&text).expect("trace must be valid JSON");
        let events = v["traceEvents"].as_array().unwrap();
        let slices: Vec<_> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(slices.len(), r.num_blocks);
        assert_eq!(trace.slices().count(), r.num_blocks);
        // Args carry the cost legs.
        for s in &slices {
            assert!(s["args"]["compute_cycles"].as_f64().is_some());
            assert!(s["args"]["mem_throughput_cycles"].as_f64().is_some());
            assert!(s["args"]["critical_warp_cycles"].as_f64().is_some());
            assert!(s["dur"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn no_two_slices_on_one_sm_track_overlap() {
        let (r, p) = sim(23);
        let trace = chrome_trace(&r, &p);
        let mut per_track: std::collections::BTreeMap<u64, Vec<(f64, f64)>> = Default::default();
        for s in trace.slices() {
            per_track
                .entry(s.tid)
                .or_default()
                .push((s.ts, s.ts + s.dur));
        }
        for (tid, mut spans) in per_track {
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "overlap on SM track {tid}: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn tracks_are_named_and_categorized_by_stall_reason() {
        let (r, p) = sim(5);
        let trace = chrome_trace(&r, &p);
        let v = trace.to_json();
        let events = v["traceEvents"].as_array().unwrap();
        let track_names: Vec<&str> = events
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        // DeviceProfile::tiny has 4 SMs — one named track each.
        assert_eq!(track_names, ["SM 0", "SM 1", "SM 2", "SM 3"]);
        for s in trace.slices() {
            assert!(
                [
                    "compute-bound",
                    "memory-throughput-bound",
                    "critical-warp-bound"
                ]
                .contains(&s.cat.as_str()),
                "unexpected cat {}",
                s.cat
            );
        }
    }

    #[test]
    fn append_overlays_multiple_processes() {
        let (r1, p1) = sim(4);
        let (r2, p2) = sim(8);
        let mut trace = ChromeTrace::new();
        append_chrome_trace(&mut trace, 0, &r1, &p1);
        append_chrome_trace(&mut trace, 1, &r2, &p2);
        assert_eq!(trace.slices().count(), r1.num_blocks + r2.num_blocks);
        assert_eq!(trace.slices().filter(|s| s.pid == 0).count(), r1.num_blocks);
        assert_eq!(trace.slices().filter(|s| s.pid == 1).count(), r2.num_blocks);
    }

    #[test]
    fn empty_launch_yields_empty_but_valid_trace() {
        let (r, p) = sim(0);
        let trace = chrome_trace(&r, &p);
        assert_eq!(trace.slices().count(), 0);
        assert!(serde_json::from_str(&trace.to_json_string()).is_ok());
    }

    #[test]
    fn metric_row_matches_sim_result_fields() {
        let (r, _) = sim(7);
        let row = r.metric_row();
        assert_eq!(row.kernel, r.kernel);
        assert_eq!(row.gflops, r.gflops);
        assert_eq!(row.achieved_occupancy, r.achieved_occupancy);
        assert_eq!(row.sm_efficiency, r.sm_efficiency);
        assert_eq!(row.l2_hit_rate, r.l2_hit_rate);
        assert_eq!(row.makespan_cycles, r.makespan_cycles);
        assert_eq!(row.time_ms, r.time_s * 1e3);
        assert_eq!(row.num_blocks, r.num_blocks);
        assert_eq!(row.num_warps, r.num_warps);
        assert_eq!(row.atomic_ops, r.atomic_ops);
        assert_eq!(row.mem_segments, r.mem_segments);
    }
}
