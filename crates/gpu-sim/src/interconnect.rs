//! Interconnect cost model for multi-device (simgrid) execution.
//!
//! Models the node-level fabric connecting N simulated GPUs: every link
//! has a fixed per-message latency and a sustained per-link bandwidth,
//! the two-parameter (α-β) cost model standard for collective
//! communication analysis. Like the rest of `gpu-sim` the model is
//! deterministic — the same spec and byte counts always price the same.
//!
//! The one collective the sharded MTTKRP engine needs is an all-reduce
//! of the dense partial outputs. It is priced as a bandwidth-optimal
//! ring: `2·(n−1)` steps, each moving `bytes/n` per link, so
//! `time = 2·(n−1)·(α + (bytes/n)/β)` and the total volume crossing
//! links is `2·(n−1)·bytes/n·n = 2·(n−1)·bytes` … per-device volume
//! `2·(n−1)/n·bytes` approaches `2·bytes` — the classic result. Both
//! time and volume are strictly increasing in the device count for a
//! fixed payload, and exactly zero for a single device.

use std::fmt;

/// A node interconnect: per-link bandwidth plus per-message latency.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Interconnect {
    /// Human-readable name (`"nvlink"`, `"pcie"`, or `"link"`).
    pub name: String,
    /// Sustained per-link bandwidth in bytes/second.
    pub link_bandwidth: f64,
    /// Per-message latency in seconds (the α term).
    pub latency_s: f64,
}

impl Interconnect {
    /// NVLink-class link: ~20 GB/s sustained per direction, ~1.3 µs
    /// latency (P100-era NVLink 1.0, matching the paper's hardware).
    pub fn nvlink() -> Interconnect {
        Interconnect {
            name: "nvlink".to_string(),
            link_bandwidth: 20e9,
            latency_s: 1.3e-6,
        }
    }

    /// PCIe 3.0 x16-class link: ~12 GB/s sustained, ~5 µs latency.
    pub fn pcie() -> Interconnect {
        Interconnect {
            name: "pcie".to_string(),
            link_bandwidth: 12e9,
            latency_s: 5e-6,
        }
    }

    /// Parses an interconnect spec:
    ///
    /// * `"nvlink"` / `"pcie"` — the presets;
    /// * `"nvlink:BW_GBPS:LAT_US"` / `"pcie:BW:LAT"` — a preset with both
    ///   parameters overridden;
    /// * `"link:BW_GBPS:LAT_US"` — a fully custom link, bandwidth in
    ///   GB/s and latency in microseconds.
    pub fn parse(spec: &str) -> Result<Interconnect, String> {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("").trim().to_ascii_lowercase();
        let mut ic = match name.as_str() {
            "nvlink" => Interconnect::nvlink(),
            "pcie" => Interconnect::pcie(),
            "link" => Interconnect {
                name: "link".to_string(),
                link_bandwidth: 0.0,
                latency_s: 0.0,
            },
            other => {
                return Err(format!(
                    "unknown interconnect '{other}' (want nvlink, pcie, or link:BW_GBPS:LAT_US)"
                ))
            }
        };
        match (parts.next(), parts.next(), parts.next()) {
            (None, _, _) if name != "link" => Ok(ic),
            (Some(bw), Some(lat), None) => {
                let bw: f64 = bw
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad bandwidth '{bw}' in '{spec}' (want GB/s)"))?;
                let lat: f64 = lat
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad latency '{lat}' in '{spec}' (want µs)"))?;
                if !(bw.is_finite() && bw > 0.0 && lat.is_finite() && lat >= 0.0) {
                    return Err(format!("non-positive bandwidth or latency in '{spec}'"));
                }
                ic.link_bandwidth = bw * 1e9;
                ic.latency_s = lat * 1e-6;
                Ok(ic)
            }
            _ => Err(format!(
                "bad interconnect spec '{spec}' (want NAME or NAME:BW_GBPS:LAT_US)"
            )),
        }
    }

    /// Seconds one point-to-point transfer of `bytes` takes.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.link_bandwidth
    }

    /// Seconds a ring all-reduce of `bytes` across `devices` takes
    /// (0 for a single device — nothing moves).
    pub fn all_reduce_seconds(&self, bytes: u64, devices: usize) -> f64 {
        if devices <= 1 {
            return 0.0;
        }
        let n = devices as f64;
        let steps = 2.0 * (n - 1.0);
        steps * (self.latency_s + (bytes as f64 / n) / self.link_bandwidth)
    }

    /// The same fabric with every link's bandwidth divided by `factor`
    /// (`>= 1`). A ring collective is bottlenecked by its slowest link,
    /// so pricing a collective on the degraded fabric is exactly how one
    /// degraded link re-prices the whole ring; latency is unchanged (link
    /// degradation models congestion/retraining, not longer wires).
    pub fn degraded(&self, factor: f64) -> Interconnect {
        let factor = factor.max(1.0);
        Interconnect {
            name: self.name.clone(),
            link_bandwidth: self.link_bandwidth / factor,
            latency_s: self.latency_s,
        }
    }

    /// Total bytes crossing links during the ring all-reduce: each of the
    /// `2·(n−1)` steps moves `bytes/n` on every one of the `n` links.
    pub fn all_reduce_volume(&self, bytes: u64, devices: usize) -> u64 {
        if devices <= 1 {
            return 0;
        }
        let n = devices as u64;
        (2 * (n - 1)).saturating_mul(bytes)
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1} GB/s, {:.1} µs)",
            self.name,
            self.link_bandwidth / 1e9,
            self.latency_s * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(
            Interconnect::parse("nvlink").unwrap(),
            Interconnect::nvlink()
        );
        assert_eq!(Interconnect::parse("pcie").unwrap(), Interconnect::pcie());
        assert_eq!(Interconnect::parse("NVLink").unwrap().name, "nvlink");
    }

    #[test]
    fn custom_and_overridden_specs_parse() {
        let c = Interconnect::parse("link:50:2").unwrap();
        assert_eq!(c.link_bandwidth, 50e9);
        assert_eq!(c.latency_s, 2e-6);
        let o = Interconnect::parse("nvlink:40:0.5").unwrap();
        assert_eq!(o.name, "nvlink");
        assert_eq!(o.link_bandwidth, 40e9);
        assert_eq!(o.latency_s, 0.5e-6);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(Interconnect::parse("infiniband").is_err());
        assert!(Interconnect::parse("link").is_err());
        assert!(Interconnect::parse("link:0:1").is_err());
        assert!(Interconnect::parse("link:a:b").is_err());
        assert!(Interconnect::parse("nvlink:1:2:3").is_err());
    }

    #[test]
    fn all_reduce_cost_is_zero_at_one_device_and_monotone() {
        let ic = Interconnect::nvlink();
        let bytes = 64 << 20;
        assert_eq!(ic.all_reduce_seconds(bytes, 1), 0.0);
        assert_eq!(ic.all_reduce_volume(bytes, 1), 0);
        let mut prev_t = 0.0;
        let mut prev_v = 0;
        for n in 2..=16 {
            let t = ic.all_reduce_seconds(bytes, n);
            let v = ic.all_reduce_volume(bytes, n);
            assert!(t > prev_t, "time must increase with devices ({n})");
            assert!(v > prev_v, "volume must increase with devices ({n})");
            prev_t = t;
            prev_v = v;
        }
    }

    #[test]
    fn degraded_fabric_reprices_but_keeps_latency() {
        let ic = Interconnect::nvlink();
        let slow = ic.degraded(4.0);
        assert_eq!(slow.link_bandwidth, ic.link_bandwidth / 4.0);
        assert_eq!(slow.latency_s, ic.latency_s);
        assert_eq!(slow.name, ic.name);
        let bytes = 16 << 20;
        assert!(slow.all_reduce_seconds(bytes, 4) > ic.all_reduce_seconds(bytes, 4));
        // Volume is a function of payload and topology, not bandwidth.
        assert_eq!(
            slow.all_reduce_volume(bytes, 4),
            ic.all_reduce_volume(bytes, 4)
        );
        // Factors below 1 are clamped: degradation never speeds a link up.
        assert_eq!(ic.degraded(0.5), ic);
    }

    #[test]
    fn pcie_slower_than_nvlink() {
        let bytes = 16 << 20;
        assert!(
            Interconnect::pcie().all_reduce_seconds(bytes, 4)
                > Interconnect::nvlink().all_reduce_seconds(bytes, 4)
        );
        assert!(
            Interconnect::pcie().transfer_seconds(bytes)
                > Interconnect::nvlink().transfer_seconds(bytes)
        );
    }
}
