//! Set-associative LRU model of the device L2 cache.
//!
//! The paper's Table II uses nvprof's `L2 hit rate` to separate
//! data-access pathologies (darpa: 4%) from healthy reuse (nell2: 83%).
//! This model replays every coalesced segment access through a
//! set-associative LRU array and reports the same statistic.

/// A set-associative LRU cache over 128-B segment ids.
#[derive(Debug, Clone)]
pub struct L2Cache {
    /// `ways[set]` = most-recent-first list of resident segment tags.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Builds a cache of `capacity_bytes` with `line_bytes` lines and the
    /// given associativity.
    ///
    /// # Panics
    /// If the geometry does not divide evenly.
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> L2Cache {
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= assoc && lines.is_multiple_of(assoc),
            "bad cache geometry"
        );
        let num_sets = lines / assoc;
        L2Cache {
            sets: vec![Vec::with_capacity(assoc); num_sets],
            assoc,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses one segment; returns `true` on hit. Misses fill (allocate-
    /// on-miss, LRU eviction).
    pub fn access(&mut self, seg: u64) -> bool {
        let set_id = (seg % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_id];
        if let Some(pos) = set.iter().position(|&t| t == seg) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, seg);
            self.misses += 1;
            false
        }
    }

    /// Number of sets in this geometry.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Set a segment id maps to (the modulo indexing [`L2Cache::access`]
    /// uses) — exposed so memory traces can record placement without
    /// touching cache state.
    pub fn set_index(&self, seg: u64) -> usize {
        (seg % self.sets.len() as u64) as usize
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in percent (0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> L2Cache {
        // 4 sets × 2 ways × 128 B = 1 KiB.
        L2Cache::new(1024, 128, 2)
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = small();
        assert!(!c.access(7));
        assert!(c.access(7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = small();
        // Segments 0, 4, 8 all map to set 0 (4 sets); assoc 2.
        assert!(!c.access(0));
        assert!(!c.access(4));
        assert!(!c.access(8)); // evicts 0
        assert!(!c.access(0)); // miss again
        assert!(c.access(8)); // still resident
    }

    #[test]
    fn touching_keeps_line_hot() {
        let mut c = small();
        c.access(0);
        c.access(4);
        c.access(0); // refresh 0 to MRU
        c.access(8); // evicts 4, not 0
        assert!(c.access(0));
        assert!(!c.access(4));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small();
        for seg in 0..4u64 {
            c.access(seg);
        }
        for seg in 0..4u64 {
            assert!(c.access(seg), "segment {seg} should still be resident");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = small();
        c.access(1);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(1));
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn rejects_bad_geometry() {
        L2Cache::new(1000, 128, 3);
    }
}
