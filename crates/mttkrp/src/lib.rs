//! # mttkrp — sparse MTTKRP kernels and CPD-ALS
//!
//! The paper's core computation on every storage format, for CPUs (real
//! rayon parallelism, wall-clock measured) and for the simulated GPU
//! (instruction streams executed by [`gpu_sim`]):
//!
//! * [`reference`] — sequential COO MTTKRP (paper Algorithm 2); the ground
//!   truth every other kernel is differential-tested against.
//! * [`cpu`] — the CPU baselines: a SPLATT-equivalent CSF kernel
//!   (Algorithm 3; ALLMODE, optional tiling), a HiCOO kernel with
//!   block-level privatization, and a COO kernel with atomic updates.
//! * [`gpu`] — the GPU kernels: ParTI-style COO + atomics, F-COO with
//!   warp-segmented scan, naive GPU-CSF (the Table II subject), B-CSF,
//!   CSL, and the composite HB-CSF kernel (Algorithm 5).
//! * [`cpd`] — the CPD-ALS driver (Algorithm 1) over any MTTKRP backend,
//!   a non-negative variant, and factor-match scoring.
//! * [`ttm`] — sparse tensor-times-matrix (ParTI's companion kernel),
//!   producing semi-sparse outputs.
//! * [`preprocess`] — format-construction timing (Figs. 9–10).
//!
//! All mode-`n` kernels share one contract: given factor matrices
//! `factors[m]` (`dims[m] × R` each) they produce
//! `Y = X₍ₙ₎ ⨀_{m≠n} factors[m]` of shape `dims[n] × R`, matching
//! [`reference::mttkrp`] up to `f32` summation order.

// Kernels index several parallel arrays with one counter; the zipped-
// iterator forms Clippy suggests obscure that symmetry.
#![allow(clippy::needless_range_loop)]

pub mod abft;
pub mod checkpoint;
pub mod cpd;
pub mod cpu;
pub mod gpu;
pub mod preprocess;
pub mod reference;
pub mod ttm;

pub use abft::{run_verified, AbftOptions, KernelReport};
pub use checkpoint::{CheckpointError, CheckpointState, CheckpointStore, Scan, WriteOutcome};
pub use cpd::{
    cpd_als, cpd_als_nonneg, cpd_als_nonneg_profiled, cpd_als_profiled, cpd_als_resilient,
    cpd_als_resilient_durable, cpd_als_sharded, factor_match_score, CpdOptions, CpdResult,
    DurableOptions, ResilienceOptions, ResilienceStats,
};
pub use reference::mttkrp as mttkrp_reference;

/// Default rank used throughout the paper's evaluation ("R is 32 for all
/// the experiments").
pub const PAPER_RANK: usize = 32;

/// Tolerance check used by differential tests: relative Frobenius error
/// between a kernel's output and the reference, which must absorb `f32`
/// summation-order differences but nothing else.
pub fn outputs_match(a: &dense::Matrix, b: &dense::Matrix) -> bool {
    a.rel_fro_diff(b) < 1e-4
}
