//! Sparse TTM (tensor–times–matrix) — the companion kernel of MTTKRP in
//! the ParTI! library the paper compares against (Li et al., "Optimizing
//! sparse tensor times matrix on multi-core and many-core architectures",
//! cited as [36]).
//!
//! Mode-`n` TTM contracts the tensor's mode `n` with a dense matrix:
//!
//! ```text
//! Z(i₁, …, r, …, i_N) = Σ_{i_n} X(i₁, …, i_n, …, i_N) · M(i_n, r)
//! ```
//!
//! The result is *semi-sparse*: dense along the contracted mode (an
//! `R`-vector per surviving coordinate tuple), sparse elsewhere — the
//! [`SemiSparse`] type. The kernel runs on a CSF tree oriented with mode
//! `n` at the leaves, so each fiber reduces into exactly one output row
//! (rayon-parallel over slices, no synchronization).

use dense::Matrix;
use rayon::prelude::*;
use sptensor::{CooTensor, Index};
use tensor_formats::Csf;

/// A mode-`mode` semi-sparse tensor: `values.row(f)` is the dense
/// `R`-vector at the coordinates `(coords[0][f], …, coords[N-2][f])` of the
/// *remaining* modes (ascending original order, `mode` excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct SemiSparse {
    /// Original tensor extents.
    pub dims: Vec<Index>,
    /// The contracted (dense) mode.
    pub mode: usize,
    /// One array per remaining mode, each `num_rows` long.
    pub coords: Vec<Vec<Index>>,
    /// `num_rows × R` dense values.
    pub values: Matrix,
}

impl SemiSparse {
    /// Number of surviving sparse coordinate tuples.
    pub fn num_rows(&self) -> usize {
        self.values.rows()
    }

    /// The remaining modes, in the order `coords` stores them.
    pub fn remaining_modes(&self) -> Vec<usize> {
        (0..self.dims.len()).filter(|&m| m != self.mode).collect()
    }

    /// Looks up the dense vector at a full coordinate tuple of the
    /// remaining modes (linear scan; test-sized use only).
    pub fn get(&self, coords: &[Index]) -> Option<&[f32]> {
        (0..self.num_rows())
            .find(|&f| (0..coords.len()).all(|l| self.coords[l][f] == coords[l]))
            .map(|f| self.values.row(f))
    }
}

/// Mode-`mode` sparse TTM: `Z = X ×ₙ Mᵀ` with `M` of shape
/// `dims[mode] × R`.
///
/// # Panics
/// If `M`'s row count disagrees with the tensor's mode extent.
pub fn ttm(t: &CooTensor, m: &Matrix, mode: usize) -> SemiSparse {
    let order = t.order();
    assert!(mode < order, "mode out of range");
    assert_eq!(
        m.rows(),
        t.dims()[mode] as usize,
        "matrix rows must match the contracted mode's extent"
    );
    let r = m.cols();

    // Orientation with the contracted mode at the leaves and the remaining
    // modes ascending: each fiber is one output row.
    let mut perm: Vec<usize> = (0..order).filter(|&x| x != mode).collect();
    perm.push(mode);
    let csf = Csf::build(t, &perm);

    let fl = order - 2; // fiber level of the tree
    let nfibers = csf.num_fibers();
    // Fiber coordinates: the chain of internal-level indices per fiber.
    let mut coords: Vec<Vec<Index>> = vec![vec![0; nfibers]; order - 1];
    // Level l's coordinate, broadcast down to its subtree's fibers.
    for l in 0..=fl {
        for g in 0..csf.level_idx[l].len() {
            let (mut lo, mut hi) = (g, g + 1);
            for ll in l..fl {
                lo = csf.level_ptr[ll][lo] as usize;
                hi = csf.level_ptr[ll][hi] as usize;
            }
            let c = csf.level_idx[l][g];
            for f in lo..hi {
                coords[l][f] = c;
            }
        }
    }

    let mut values = Matrix::zeros(nfibers, r);
    {
        let data = values.data_mut();
        data.par_chunks_mut(r).enumerate().for_each(|(f, out)| {
            for z in csf.level_ptr[fl][f] as usize..csf.level_ptr[fl][f + 1] as usize {
                let row = m.row(csf.leaf_idx[z] as usize);
                let v = csf.vals[z];
                for (o, &x) in out.iter_mut().zip(row) {
                    *o += v * x;
                }
            }
        });
    }

    SemiSparse {
        dims: t.dims().to_vec(),
        mode,
        coords,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::random_factors;
    use sptensor::synth::uniform_random;

    /// Brute-force TTM on a dense copy.
    fn ttm_dense(t: &CooTensor, m: &Matrix, mode: usize, coords: &[Index]) -> Vec<f32> {
        let r = m.cols();
        let mut out = vec![0.0f32; r];
        let others: Vec<usize> = (0..t.order()).filter(|&x| x != mode).collect();
        for z in 0..t.nnz() {
            let matches = others
                .iter()
                .enumerate()
                .all(|(l, &om)| t.mode_indices(om)[z] == coords[l]);
            if matches {
                let k = t.mode_indices(mode)[z] as usize;
                for (o, c) in out.iter_mut().zip(0..r) {
                    *o += t.values()[z] * m.get(k, c);
                }
            }
        }
        out
    }

    #[test]
    fn matches_dense_contraction_every_mode() {
        let t = uniform_random(&[6, 7, 8], 120, 81);
        for mode in 0..3 {
            let m = random_factors(&t, 4, 9)[mode].clone();
            let z = ttm(&t, &m, mode);
            assert_eq!(z.mode, mode);
            for f in 0..z.num_rows() {
                let coords: Vec<Index> = (0..2).map(|l| z.coords[l][f]).collect();
                let expected = ttm_dense(&t, &m, mode, &coords);
                for (a, b) in z.values.row(f).iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-4, "mode {mode} row {f}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn output_rows_equal_fiber_count_of_leaf_orientation() {
        let t = uniform_random(&[10, 12, 14], 400, 82);
        let m = random_factors(&t, 3, 10)[2].clone();
        let z = ttm(&t, &m, 2);
        // Rows = distinct (i, j) pairs.
        let mut pairs: Vec<(Index, Index)> = (0..t.nnz())
            .map(|x| (t.mode_indices(0)[x], t.mode_indices(1)[x]))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(z.num_rows(), pairs.len());
    }

    #[test]
    fn ttm_is_linear_in_the_matrix() {
        let t = uniform_random(&[5, 6, 7], 100, 83);
        let m = random_factors(&t, 4, 11)[1].clone();
        let mut m2 = m.clone();
        for v in m2.data_mut() {
            *v *= 3.0;
        }
        let a = ttm(&t, &m, 1);
        let b = ttm(&t, &m2, 1);
        for f in 0..a.num_rows() {
            for c in 0..4 {
                assert!((3.0 * a.values.get(f, c) - b.values.get(f, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn order4_ttm() {
        let t = uniform_random(&[4, 5, 6, 7], 200, 84);
        let m = random_factors(&t, 3, 12)[3].clone();
        let z = ttm(&t, &m, 3);
        assert_eq!(z.coords.len(), 3);
        let coords: Vec<Index> = (0..3).map(|l| z.coords[l][0]).collect();
        let expected = ttm_dense(&t, &m, 3, &coords);
        for (a, b) in z.values.row(0).iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "matrix rows")]
    fn rejects_shape_mismatch() {
        let t = uniform_random(&[4, 5, 6], 50, 85);
        let m = Matrix::zeros(99, 3);
        ttm(&t, &m, 0);
    }

    #[test]
    fn empty_tensor_gives_empty_output() {
        let t = CooTensor::new(vec![3, 4, 5]);
        let m = Matrix::zeros(5, 4);
        let z = ttm(&t, &m, 2);
        assert_eq!(z.num_rows(), 0);
    }
}
