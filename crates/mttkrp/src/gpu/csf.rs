//! Naive GPU-CSF MTTKRP — the direct port of SPLATT's work mapping that
//! Table II profiles: one thread block per slice, fibers across warps, no
//! splitting. Structurally this is the B-CSF kernel with both splits
//! disabled, which is exactly how the paper frames it ("we term our GPU
//! implementation of CSF as B-CSF" after fixing this kernel's imbalance).

use tensor_formats::{Bcsf, BcsfOptions, Csf};

use super::common::GpuContext;

/// The capture body behind [`Csf`]'s `MttkrpKernel` impl.
pub(crate) fn plan_impl(ctx: &GpuContext, csf: &Csf, rank: usize) -> super::plan::Plan {
    let bcsf = Bcsf::from_csf(csf.clone(), BcsfOptions::unsplit());
    super::bcsf::plan_named(ctx, &bcsf, rank, "gpu-csf")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{Executor, GpuRun, KernelKind, LaunchArgs};
    use crate::reference;
    use dense::Matrix;
    use sptensor::synth::{standin, uniform_random, SynthConfig};
    use sptensor::CooTensor;

    fn build_and_run(ctx: &GpuContext, t: &CooTensor, factors: &[Matrix], mode: usize) -> GpuRun {
        Executor::new(ctx.clone())
            .build_run(KernelKind::Csf, t, factors, mode)
            .unwrap()
            .run
    }

    #[test]
    fn matches_reference() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[15, 18, 21], 800, 71);
        let factors = reference::random_factors(&t, 8, 41);
        for mode in 0..3 {
            let run = build_and_run(&ctx, &t, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&run.y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn one_block_per_slice_and_no_atomics() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[12, 20, 20], 500, 72);
        let factors = reference::random_factors(&t, 4, 42);
        let perm = sptensor::mode_orientation(3, 0);
        let csf = Csf::build(&t, &perm);
        let run = Executor::new(ctx)
            .run(&csf, &LaunchArgs::new(&factors))
            .unwrap()
            .run;
        assert_eq!(run.sim.num_blocks, csf.num_slices());
        assert_eq!(run.sim.atomic_ops, 0);
    }

    #[test]
    fn skewed_tensor_shows_low_sm_efficiency() {
        // The Table II signature: high slice-volume stdev -> poor balance.
        let ctx = GpuContext::tiny();
        let skew = standin("darpa")
            .unwrap()
            .generate(&SynthConfig::tiny().with_nnz(20_000));
        let uniform = uniform_random(&[236, 236, 2000], skew.nnz(), 73);
        let f_skew = reference::random_factors(&skew, 8, 43);
        let f_uni = reference::random_factors(&uniform, 8, 43);
        let r_skew = build_and_run(&ctx, &skew, &f_skew, 0);
        let r_uni = build_and_run(&ctx, &uniform, &f_uni, 0);
        assert!(
            r_skew.sim.sm_efficiency < r_uni.sim.sm_efficiency,
            "skewed {} should trail uniform {}",
            r_skew.sim.sm_efficiency,
            r_uni.sim.sm_efficiency
        );
    }
}
