//! The unified kernel abstraction: one trait all six simulated-GPU
//! MTTKRP kernels implement, plus a format-erased [`AnyFormat`] enum so
//! routers, schedulers, and the multi-device engine can dispatch over
//! kernels generically.
//!
//! Historically each kernel module exposed its own `run`/`plan` free
//! functions with copy-pasted signatures; anything driving "some kernel"
//! had to hand-wire a six-way match. [`MttkrpKernel`] replaces that:
//! a format captures itself into a [`Plan`] (`capture`), and everything
//! downstream — replay, out-of-core tiling, ABFT, sharding — already
//! works on plans. The old free functions have been deleted; the capture
//! bodies live on as `pub(crate)` implementation details.

use std::str::FromStr;

use sptensor::{mode_orientation, CooTensor, Index};
use tensor_formats::{Bcsf, BcsfOptions, Csf, Csl, Fcoo, Hbcsf};

use super::common::GpuContext;
use super::exec::LaunchError;
use super::plan::Plan;

/// A sparse-tensor layout that can capture a simulated-GPU MTTKRP launch
/// over itself as a replayable [`Plan`].
///
/// Everything value-dependent lives in the plan's replay; everything
/// structure-dependent is fixed at capture. Implementors are the format
/// types themselves ([`Bcsf`], [`Csf`], [`Csl`], [`Fcoo`], [`Hbcsf`])
/// plus the format-erased [`AnyFormat`].
pub trait MttkrpKernel {
    /// The launch name the capture will carry (e.g. `"hb-csf"`).
    fn kernel_name(&self) -> &'static str;

    /// The output mode the kernel computes (the layout's `perm[0]`).
    fn output_mode(&self) -> usize;

    /// The tensor dimensions the layout was built for.
    fn dims(&self) -> &[Index];

    /// Captures the kernel as a replayable [`Plan`] for rank `rank`.
    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan;
}

impl MttkrpKernel for Bcsf {
    fn kernel_name(&self) -> &'static str {
        "b-csf"
    }
    fn output_mode(&self) -> usize {
        Bcsf::output_mode(self)
    }
    fn dims(&self) -> &[Index] {
        &self.csf.dims
    }
    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan {
        super::bcsf::plan_named(ctx, self, rank, "b-csf")
    }
}

impl MttkrpKernel for Csf {
    fn kernel_name(&self) -> &'static str {
        "gpu-csf"
    }
    fn output_mode(&self) -> usize {
        Csf::output_mode(self)
    }
    fn dims(&self) -> &[Index] {
        &self.dims
    }
    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan {
        super::csf::plan_impl(ctx, self, rank)
    }
}

impl MttkrpKernel for Csl {
    fn kernel_name(&self) -> &'static str {
        "csl"
    }
    fn output_mode(&self) -> usize {
        Csl::output_mode(self)
    }
    fn dims(&self) -> &[Index] {
        &self.dims
    }
    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan {
        super::csl::plan_impl(ctx, self, rank)
    }
}

impl MttkrpKernel for Fcoo {
    fn kernel_name(&self) -> &'static str {
        "f-coo-gpu"
    }
    fn output_mode(&self) -> usize {
        Fcoo::output_mode(self)
    }
    fn dims(&self) -> &[Index] {
        &self.dims
    }
    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan {
        super::fcoo::plan_impl(ctx, self, rank)
    }
}

impl MttkrpKernel for Hbcsf {
    fn kernel_name(&self) -> &'static str {
        "hb-csf"
    }
    fn output_mode(&self) -> usize {
        Hbcsf::output_mode(self)
    }
    fn dims(&self) -> &[Index] {
        &self.dims
    }
    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan {
        super::hbcsf::plan_impl(ctx, self, rank)
    }
}

/// Which of the six simulated-GPU kernels to build/run — the CLI string
/// namespace (`--kernel`) and the generic constructors' selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum KernelKind {
    /// ParTI-style nonzero-parallel COO (third-order only).
    Coo,
    /// F-COO segmented scan (third-order only).
    Fcoo,
    /// Naive GPU-CSF (block per slice).
    Csf,
    /// B-CSF with fiber/slice splitting.
    Bcsf,
    /// CSL warp-packed slices.
    Csl,
    /// The composite HB-CSF kernel.
    Hbcsf,
}

impl KernelKind {
    /// All six kinds, in the paper's presentation order.
    pub const ALL: [KernelKind; 6] = [
        KernelKind::Coo,
        KernelKind::Fcoo,
        KernelKind::Csf,
        KernelKind::Bcsf,
        KernelKind::Csl,
        KernelKind::Hbcsf,
    ];

    /// The canonical CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelKind::Coo => "coo",
            KernelKind::Fcoo => "fcoo",
            KernelKind::Csf => "csf",
            KernelKind::Bcsf => "bcsf",
            KernelKind::Csl => "csl",
            KernelKind::Hbcsf => "hbcsf",
        }
    }

    /// Whether the kernel supports only third-order tensors.
    pub fn third_order_only(&self) -> bool {
        matches!(self, KernelKind::Coo | KernelKind::Fcoo)
    }
}

impl FromStr for KernelKind {
    type Err = LaunchError;

    fn from_str(s: &str) -> Result<KernelKind, LaunchError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "coo" | "parti-coo" | "parti" => Ok(KernelKind::Coo),
            "fcoo" | "f-coo" => Ok(KernelKind::Fcoo),
            "csf" | "gpu-csf" => Ok(KernelKind::Csf),
            "bcsf" | "b-csf" => Ok(KernelKind::Bcsf),
            "csl" => Ok(KernelKind::Csl),
            "hbcsf" | "hb-csf" => Ok(KernelKind::Hbcsf),
            other => Err(LaunchError::UnknownKernel(other.to_string())),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Format-construction knobs for [`AnyFormat::build`]. Defaults match
/// the free functions the builder replaces.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Splitting options for the B-CSF/HB-CSF family.
    pub bcsf: BcsfOptions,
    /// Per-thread chunk length for F-COO.
    pub fcoo_threadlen: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            bcsf: BcsfOptions::default(),
            fcoo_threadlen: super::fcoo::DEFAULT_THREADLEN,
        }
    }
}

/// An owned, format-erased kernel input: any of the six layouts, built
/// uniformly from a COO tensor. This is what generic drivers hold when
/// the format is chosen at runtime (CLI flags, sweeps, the sharded CPD
/// driver).
// Variant sizes span raw COO to HB-CSF's three-part hybrid; the enum is
// built once per (tensor, mode) and never stored in bulk, so boxing would
// buy nothing but indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyFormat {
    /// Raw COO for the ParTI-style kernel (third-order only).
    Coo {
        tensor: CooTensor,
        mode: usize,
    },
    Fcoo(Fcoo),
    Csf(Csf),
    Bcsf(Bcsf),
    Csl(Csl),
    Hbcsf(Hbcsf),
}

impl AnyFormat {
    /// Builds the `kind` layout of `t` oriented for output mode `mode`.
    ///
    /// Unlike the historical per-module constructors this is total: an
    /// out-of-range mode or an order the kernel cannot handle comes back
    /// as a typed [`LaunchError`] instead of a panic deep in the build.
    pub fn build(
        kind: KernelKind,
        t: &CooTensor,
        mode: usize,
        opts: &BuildOptions,
    ) -> Result<AnyFormat, LaunchError> {
        let order = t.order();
        if mode >= order {
            return Err(LaunchError::ModeOutOfRange { mode, order });
        }
        if kind.third_order_only() && order != 3 {
            return Err(LaunchError::OrderUnsupported {
                kernel: kind.as_str(),
                order,
            });
        }
        let perm = mode_orientation(order, mode);
        Ok(match kind {
            KernelKind::Coo => AnyFormat::Coo {
                tensor: t.clone(),
                mode,
            },
            KernelKind::Fcoo => AnyFormat::Fcoo(Fcoo::build(t, &perm, opts.fcoo_threadlen)),
            KernelKind::Csf => AnyFormat::Csf(Csf::build(t, &perm)),
            KernelKind::Bcsf => AnyFormat::Bcsf(Bcsf::build(t, &perm, opts.bcsf)),
            KernelKind::Csl => AnyFormat::Csl(Csl::build(t, &perm)),
            KernelKind::Hbcsf => AnyFormat::Hbcsf(Hbcsf::build(t, &perm, opts.bcsf)),
        })
    }

    /// Which kernel this layout drives.
    pub fn kind(&self) -> KernelKind {
        match self {
            AnyFormat::Coo { .. } => KernelKind::Coo,
            AnyFormat::Fcoo(_) => KernelKind::Fcoo,
            AnyFormat::Csf(_) => KernelKind::Csf,
            AnyFormat::Bcsf(_) => KernelKind::Bcsf,
            AnyFormat::Csl(_) => KernelKind::Csl,
            AnyFormat::Hbcsf(_) => KernelKind::Hbcsf,
        }
    }
}

impl MttkrpKernel for AnyFormat {
    fn kernel_name(&self) -> &'static str {
        match self {
            AnyFormat::Coo { .. } => "parti-coo-gpu",
            AnyFormat::Fcoo(f) => f.kernel_name(),
            AnyFormat::Csf(f) => f.kernel_name(),
            AnyFormat::Bcsf(f) => f.kernel_name(),
            AnyFormat::Csl(f) => f.kernel_name(),
            AnyFormat::Hbcsf(f) => f.kernel_name(),
        }
    }

    fn output_mode(&self) -> usize {
        match self {
            AnyFormat::Coo { mode, .. } => *mode,
            AnyFormat::Fcoo(f) => MttkrpKernel::output_mode(f),
            AnyFormat::Csf(f) => MttkrpKernel::output_mode(f),
            AnyFormat::Bcsf(f) => MttkrpKernel::output_mode(f),
            AnyFormat::Csl(f) => MttkrpKernel::output_mode(f),
            AnyFormat::Hbcsf(f) => MttkrpKernel::output_mode(f),
        }
    }

    fn dims(&self) -> &[Index] {
        match self {
            AnyFormat::Coo { tensor, .. } => tensor.dims(),
            AnyFormat::Fcoo(f) => MttkrpKernel::dims(f),
            AnyFormat::Csf(f) => MttkrpKernel::dims(f),
            AnyFormat::Bcsf(f) => MttkrpKernel::dims(f),
            AnyFormat::Csl(f) => MttkrpKernel::dims(f),
            AnyFormat::Hbcsf(f) => MttkrpKernel::dims(f),
        }
    }

    fn capture(&self, ctx: &GpuContext, rank: usize) -> Plan {
        match self {
            AnyFormat::Coo { tensor, mode } => {
                super::parti_coo::plan_impl(ctx, tensor, *mode, rank)
            }
            AnyFormat::Fcoo(f) => f.capture(ctx, rank),
            AnyFormat::Csf(f) => f.capture(ctx, rank),
            AnyFormat::Bcsf(f) => f.capture(ctx, rank),
            AnyFormat::Csl(f) => f.capture(ctx, rank),
            AnyFormat::Hbcsf(f) => f.capture(ctx, rank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::uniform_random;

    #[test]
    fn kinds_round_trip_through_strings() {
        for kind in KernelKind::ALL {
            assert_eq!(kind.as_str().parse::<KernelKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!("hb-csf".parse::<KernelKind>().unwrap(), KernelKind::Hbcsf);
        assert_eq!("parti-coo".parse::<KernelKind>().unwrap(), KernelKind::Coo);
        assert!(matches!(
            "splatt".parse::<KernelKind>(),
            Err(LaunchError::UnknownKernel(_))
        ));
    }

    #[test]
    fn build_rejects_bad_mode_and_order() {
        let t3 = uniform_random(&[6, 7, 8], 100, 7);
        let t4 = uniform_random(&[4, 4, 4, 4], 80, 8);
        let opts = BuildOptions::default();
        assert!(matches!(
            AnyFormat::build(KernelKind::Hbcsf, &t3, 3, &opts),
            Err(LaunchError::ModeOutOfRange { mode: 3, order: 3 })
        ));
        for kind in [KernelKind::Coo, KernelKind::Fcoo] {
            assert!(matches!(
                AnyFormat::build(kind, &t4, 0, &opts),
                Err(LaunchError::OrderUnsupported { order: 4, .. })
            ));
        }
        assert!(AnyFormat::build(KernelKind::Csf, &t4, 2, &opts).is_ok());
    }

    #[test]
    fn every_kind_captures_and_matches_reference() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[12, 14, 16], 500, 9);
        let factors = reference::random_factors(&t, 8, 10);
        for kind in KernelKind::ALL {
            for mode in 0..3 {
                let f = AnyFormat::build(kind, &t, mode, &BuildOptions::default()).unwrap();
                assert_eq!(f.kind(), kind);
                assert_eq!(MttkrpKernel::output_mode(&f), mode);
                assert_eq!(MttkrpKernel::dims(&f), t.dims());
                let run = f.capture(&ctx, 8).execute(&ctx, &factors).unwrap();
                let seq = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&run.y, &seq),
                    "{kind} mode {mode} diverged"
                );
            }
        }
    }
}
