//! ParTI-style GPU COO MTTKRP: parallelize over nonzeros, `atomicAdd` the
//! output row of every nonzero ("ParTI! stores the input tensor in COO
//! format and parallelizes over nonzeros. It performs an atomic add when
//! combining nonzero products to the same data").
//!
//! Like the real framework, this kernel supports third-order tensors only —
//! the missing 4-D bars of Fig. 14 are reproduced by construction.

use gpu_sim::{AddressSpace, BlockWork, Op, WarpWork};
use sptensor::CooTensor;

use super::common::{load_u32s, FactorAddrs, GpuContext};
use super::plan::{MemoryFootprint, Plan, PlanBuilder};

/// Nonzeros handled by one warp (rank across lanes; nonzeros serial).
const NNZ_PER_WARP: usize = 32;

/// Captures the ParTI-COO kernel as a replayable [`Plan`] for rank
/// `rank`. The capture body behind
/// [`AnyFormat::Coo`](super::AnyFormat)'s `MttkrpKernel` impl.
///
/// # Panics
/// If the tensor is not third-order (the ParTI-GPU limitation).
pub(crate) fn plan_impl(ctx: &GpuContext, t: &CooTensor, mode: usize, rank: usize) -> Plan {
    assert_eq!(
        t.order(),
        3,
        "ParTI-GPU supports only third-order tensors (paper Fig. 14)"
    );
    let mut space = AddressSpace::new();
    let fa = FactorAddrs::layout(&mut space, t.dims(), rank, mode);
    let idx_spans: Vec<_> = (0..3).map(|_| space.alloc_elems(t.nnz(), 4)).collect();
    let vals_span = space.alloc_elems(t.nnz(), 4);

    let product_modes: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
    let nnz_per_block = NNZ_PER_WARP * ctx.warps_per_block;

    let mut pb = PlanBuilder::new("parti-coo-gpu", mode, rank, t.dims()[mode] as usize);
    pb.set_footprint(MemoryFootprint::from_layout(&space, &fa));
    for block_start in (0..t.nnz()).step_by(nnz_per_block) {
        pb.begin_block();
        let mut block = BlockWork::new();
        let block_end = (block_start + nnz_per_block).min(t.nnz());
        for warp_start in (block_start..block_end).step_by(NNZ_PER_WARP) {
            let warp_end = (warp_start + NNZ_PER_WARP).min(block_end);
            let len = warp_end - warp_start;
            let mut w = WarpWork::new();
            // Stream the index tuples and values for this warp's chunk.
            for span in &idx_spans {
                load_u32s(&mut w, *span, warp_start, len);
            }
            load_u32s(&mut w, vals_span, warp_start, len);
            for z in warp_start..warp_end {
                // Product across the non-output factor rows, rank across
                // lanes, then one atomic row update per nonzero.
                let i = t.mode_indices(mode)[z] as usize;
                pb.contrib(i, t.values()[z]);
                for &m in &product_modes {
                    let j = t.mode_indices(m)[z] as usize;
                    fa.load_row(&mut w, m, j);
                    w.push(Op::Fma(fa.rank_steps));
                    pb.chain(m, j);
                }
                fa.atomic_y(&mut w, i);
            }
            block.warps.push(w);
        }
        pb.launch.blocks.push(block);
    }
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{AnyFormat, BuildOptions, Executor, GpuRun, KernelKind, LaunchError};
    use crate::reference;
    use dense::Matrix;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    fn run(ctx: &GpuContext, t: &CooTensor, factors: &[Matrix], mode: usize) -> GpuRun {
        Executor::new(ctx.clone())
            .build_run(KernelKind::Coo, t, factors, mode)
            .unwrap()
            .run
    }

    #[test]
    fn matches_reference_all_modes() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[20, 25, 30], 1_000, 51);
        let factors = reference::random_factors(&t, 8, 21);
        for mode in 0..3 {
            let run = run(&ctx, &t, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(
                crate::outputs_match(&run.y, &seq),
                "mode {mode} diff {}",
                run.y.rel_fro_diff(&seq)
            );
            assert!(run.sim.atomic_ops as usize >= t.nnz());
        }
    }

    #[test]
    fn rejects_4d_like_the_real_framework() {
        // The unified builder turns the old panic into a typed error.
        let t = uniform_random(&[5, 5, 5, 5], 50, 52);
        assert!(matches!(
            AnyFormat::build(KernelKind::Coo, &t, 0, &BuildOptions::default()),
            Err(LaunchError::OrderUnsupported { order: 4, .. })
        ));
    }

    #[test]
    fn hot_rows_pay_conflict_surcharge() {
        let ctx = GpuContext::tiny();
        // All nonzeros share output row 0 vs. spread rows.
        let mut hot = sptensor::CooTensor::new(vec![512, 64, 64]);
        let mut cold = sptensor::CooTensor::new(vec![512, 64, 64]);
        for n in 0..512u32 {
            hot.push(&[0, n % 64, (n / 64) % 64], 1.0);
            cold.push(&[n % 512, n % 64, (n / 64) % 64], 1.0);
        }
        let f_hot = reference::random_factors(&hot, 8, 23);
        let r_hot = run(&ctx, &hot, &f_hot, 0);
        let r_cold = run(&ctx, &cold, &f_hot, 0);
        assert!(
            r_hot.sim.makespan_cycles > 1.2 * r_cold.sim.makespan_cycles,
            "hot {} cold {}",
            r_hot.sim.makespan_cycles,
            r_cold.sim.makespan_cycles
        );
    }

    #[test]
    fn block_count_matches_packing() {
        let ctx = GpuContext::tiny(); // 4 warps/block × 32 = 128 nnz/block
        let t = uniform_random(&[30, 30, 30], 1_000, 53);
        let factors = reference::random_factors(&t, 4, 24);
        let run = run(&ctx, &t, &factors, 0);
        assert_eq!(run.sim.num_blocks, t.nnz().div_ceil(128));
    }

    #[test]
    fn correct_on_skewed_standin() {
        let ctx = GpuContext::tiny();
        let t = standin("darpa").unwrap().generate(&SynthConfig::tiny());
        let factors = reference::random_factors(&t, 8, 25);
        let run = run(&ctx, &t, &factors, 0);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&run.y, &seq));
    }
}
