//! Simulated-GPU MTTKRP kernels.
//!
//! Each kernel does double duty: it computes the actual MTTKRP output in
//! plain Rust (differential-tested against [`crate::reference`]) while
//! emitting the instruction stream its CUDA counterpart would execute —
//! warp-wide FMAs with the rank dimension laid across lanes, coalesced
//! 128-byte segment accesses, atomics where the algorithm needs them. The
//! stream is then run through [`gpu_sim::simulate`].
//!
//! Kernels:
//! * [`parti_coo`] — nonzero-parallel COO with `atomicAdd` per nonzero
//!   (the ParTI-GPU baseline, Figs. 8 & 14).
//! * [`fcoo`] — F-COO with per-thread chunks and warp segmented scan
//!   (Fig. 15).
//! * [`csf`] — naive GPU-CSF: block per slice, warp per fiber (the
//!   Table II subject whose pathologies motivate B-CSF).
//! * [`bcsf`] — B-CSF: fiber-segments across warps, binned thread blocks,
//!   atomics only for split slices (Figs. 5-7).
//! * [`csl`] — CSL kernel (Algorithm 4): slices packed into warps, no
//!   fiber indirection.
//! * [`hbcsf`] — the composite HB-CSF kernel (Algorithm 5 lines 18-20):
//!   COO + CSL + B-CSF sub-launches fused into one grid (Figs. 8-15).

//!
//! All six kernels implement the unified [`MttkrpKernel`] trait and are
//! normally driven through the [`Executor`] facade, which owns the
//! context plus the full degradation ladder (in-core, out-of-core tiled,
//! multi-device sharded, ABFT-verified, CPU fallback). The kernel modules
//! only export their format/span types; capture bodies are `pub(crate)`
//! behind the trait impls.

pub mod bcsf;
pub mod common;
pub mod csf;
pub mod csl;
pub mod exec;
pub mod fcoo;
pub mod hbcsf;
pub mod kernel;
pub mod ooc;
pub mod parti_coo;
pub mod plan;
pub mod sharded;
pub mod stream;

pub use common::{AbftData, AbftSink, GpuContext, GpuRun};
pub use exec::{Execution, Executor, LaunchArgs, LaunchError};
pub use kernel::{AnyFormat, BuildOptions, KernelKind, MttkrpKernel};
pub use ooc::{execute_adaptive, LadderStep, MemReport, OocOptions};
pub use plan::{MemoryFootprint, ModePlans, Plan, RankDispatch, ReplaySchedule};
pub use sharded::{DeviceShardReport, GridReport, GridSpec, ShardModel};
pub use stream::{cpd_als_streamed, ShardStore, StreamOptions, StreamedCpd};
