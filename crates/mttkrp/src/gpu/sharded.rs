//! `simgrid`: multi-device sharded MTTKRP over a modeled interconnect.
//!
//! A node of `N` identical simulated GPUs executes one captured [`Plan`]
//! cooperatively: the replay schedule's block range is carved into `N`
//! consecutive shards balanced by `Plan::block_weight_prefix` (the same
//! weights the out-of-core packer tiles by), each device runs its shard's
//! partial MTTKRP against its own [`DeviceMemory`] — tiling and shrinking
//! locally when the shard exceeds the per-device capacity — and the dense
//! partial outputs meet in a modeled ring all-reduce priced by the
//! configured [`Interconnect`].
//!
//! # Bit-exactness
//!
//! Sharding must not change the answer, for any device count, clean or
//! faulted. Elementwise summation of per-device partials would reorder
//! the floating-point fold, so the *committed* numerics here follow the
//! tiled engine instead: the model phase (shard fit, leases, per-device
//! simulation, all-reduce pricing) runs per device in parallel, while the
//! value phase folds every shard's contributions into one shared output
//! in global emission order —
//! [`replay_range_parallel`](Plan::execute) per shard for clean runs, and
//! a single [`AbftSink`](super::AbftSink) spanning all shards with global
//! block ordinals under execution faults. Consecutive-range folds are
//! bit-identical to the untiled replay by construction, so
//! `shard(N) == shard(1) == Plan::execute` exactly, and the all-reduce is
//! pure accounting (time + volume) on the wire-level dense partials.
//!
//! Everything is deterministic: shard boundaries are arithmetic on the
//! weight prefix, lease fault draws key on `(kernel, site)` with
//! device-distinguished sites, and the rayon model phase only computes
//! per-device records that are order-independent.

use std::sync::Arc;

use dense::Matrix;
use gpu_sim::{DeviceMemory, Interconnect, SimResult};
use rayon::prelude::*;
use simprof::FieldValue;
use sptensor::CooTensor;

use super::common::{GpuContext, GpuRun};
use super::exec::LaunchError;
use super::ooc::{self, OocOptions};
use super::plan::Plan;

/// Bytes per output value (f32) on the modeled wire.
const VALUE_BYTES: u64 = 4;

/// Shape of the simulated multi-GPU node.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Number of simulated devices (1 = the single-GPU path, still run
    /// through the sharded engine for apples-to-apples comparisons).
    pub devices: usize,
    /// Inter-device link model pricing the all-reduce.
    pub interconnect: Interconnect,
    /// Per-device memory capacity in bytes (`u64::MAX` = unlimited).
    pub capacity_per_device: u64,
}

impl GridSpec {
    /// A node of `devices` GPUs with unlimited per-device memory.
    pub fn new(devices: usize, interconnect: Interconnect) -> GridSpec {
        assert!(devices >= 1, "a grid needs at least one device");
        GridSpec {
            devices,
            interconnect,
            capacity_per_device: u64::MAX,
        }
    }

    /// Caps every device at `bytes` of memory.
    pub fn with_capacity(mut self, bytes: u64) -> GridSpec {
        self.capacity_per_device = bytes;
        self
    }
}

/// One device's share of a sharded execution.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DeviceShardReport {
    pub device: usize,
    /// Schedule-block range `[block_begin, block_end)` this device owns.
    pub block_begin: usize,
    pub block_end: usize,
    /// Load-balance weight of the shard (contributions + leaves + chains).
    pub weight: u64,
    /// Whether the shard fit the device whole (no tiling).
    pub in_core: bool,
    /// Tiles the shard was carved into (1 when `in_core`).
    pub tiles_run: usize,
    /// Injected allocation refusals absorbed while fitting the shard.
    pub oom_events: u64,
    /// Peak bytes leased on this device.
    pub high_water_bytes: u64,
    /// Modeled compute time of the shard on this device.
    pub sim_time_s: f64,
    pub makespan_cycles: f64,
    pub total_flops: u64,
}

/// The communication + load-balance story of one sharded execution.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GridReport {
    pub devices: usize,
    /// Human-readable interconnect description (name, bandwidth, latency).
    pub interconnect: String,
    pub shards: Vec<DeviceShardReport>,
    /// Modeled node compute time: max over devices (they run in parallel).
    pub compute_seconds: f64,
    /// Modeled ring all-reduce time over the dense partial outputs.
    pub allreduce_seconds: f64,
    /// Bytes crossing the interconnect during the all-reduce.
    pub allreduce_bytes: u64,
    /// `compute_seconds + allreduce_seconds`.
    pub total_seconds: f64,
    /// Whether a device failed every GPU rung and the whole run fell back
    /// to the CPU reference.
    pub cpu_fallback: bool,
    /// Original device ordinals that dropped out (`device-loss` faults)
    /// and were re-sharded around. `devices` and `shards` describe the
    /// *surviving* grid, which is exactly the clean grid of that size.
    pub lost_devices: Vec<usize>,
    /// Modeled compute time thrown away on lost devices (each ran its
    /// original shard to its drawn progress fraction before dying).
    /// Already included in `compute_seconds`/`total_seconds`.
    pub wasted_seconds: f64,
    /// Ring links that ran degraded (`link-degrade` faults): the
    /// all-reduce was priced on the degraded fabric (a ring is
    /// bottlenecked by its slowest link). Values are untouched.
    pub degraded_links: Vec<usize>,
    /// Ring links that were down (`link-loss` faults). A broken ring has
    /// no collective: the grid fell back to the bit-exact single-device
    /// path, so `devices`/`shards` describe that one-device execution.
    pub lost_links: Vec<usize>,
}

impl GridReport {
    /// Converts to the simprof manifest record (one launch).
    pub fn to_record(&self) -> simprof::GridRecord {
        simprof::GridRecord {
            devices: self.devices,
            interconnect: self.interconnect.clone(),
            allreduce_bytes: self.allreduce_bytes,
            allreduce_seconds: self.allreduce_seconds,
            compute_seconds: self.compute_seconds,
            launches: 1,
            device_losses: self.lost_devices.len() as u64,
            link_degrades: self.degraded_links.len() as u64,
            link_losses: self.lost_links.len() as u64,
            per_device: self
                .shards
                .iter()
                .map(|s| simprof::DeviceRecord {
                    device: s.device,
                    launches: 1,
                    tiles: s.tiles_run as u64,
                    sim_seconds: s.sim_time_s,
                    total_flops: s.total_flops,
                    oom_events: s.oom_events,
                    high_water_bytes: s.high_water_bytes,
                })
                .collect(),
        }
    }
}

/// Splits schedule blocks `0..nblocks` into `devices` consecutive ranges
/// with near-equal total weight: cut `d` lands at the first block whose
/// prefix weight reaches `d/devices` of the total. Ranges may be empty
/// (more devices than blocks); their union is always the full range, in
/// order — the invariant the bit-exact fold relies on.
pub(crate) fn shard_ranges(prefix: &[u64], devices: usize) -> Vec<(usize, usize)> {
    let nblocks = prefix.len() - 1;
    let total = prefix[nblocks];
    let mut cuts = Vec::with_capacity(devices + 1);
    cuts.push(0usize);
    let mut last = 0usize;
    for d in 1..devices {
        let target = (u128::from(total) * d as u128 / devices as u128) as u64;
        let b = prefix.partition_point(|&w| w < target).min(nblocks);
        last = b.max(last);
        cuts.push(last);
    }
    cuts.push(nblocks);
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Fault-draw site for device `d`'s leases: the single-device site layout
/// (`0` = whole shard, `((shrink+1) << 32) | tile` = tiled) shifted into
/// a per-device namespace. Device 0 reuses the single-device sites, so a
/// one-device grid draws the exact OOM stream of the adaptive path.
fn device_site(device: usize, rung_site: u64) -> u64 {
    ((device as u64) << 44) | rung_site
}

/// The captured model of one plan sharded across a grid: shard ranges,
/// per-device tilings and memory ledgers, per-device simulations, and the
/// priced all-reduce. Building the model is the expensive phase; cloning
/// values out of it ([`ShardModel::execute`]) is cheap, so iterative
/// drivers (CPD-ALS) build one model per mode and replay it every
/// iteration.
///
/// Memory-fault draws happen at build time (the leases are modeled once),
/// so a model reused across iterations commits to one OOM story — the
/// same trade the plan-capture split already makes for structure.
pub struct ShardModel {
    spec: GridSpec,
    ranges: Vec<(usize, usize)>,
    device_mems: Vec<Arc<DeviceMemory>>,
    shards: Vec<DeviceShardReport>,
    node_sim: SimResult,
    compute_seconds: f64,
    allreduce_seconds: f64,
    allreduce_bytes: u64,
    cpu_fallback: bool,
    lost_devices: Vec<usize>,
    wasted_seconds: f64,
    degraded_links: Vec<usize>,
    lost_links: Vec<usize>,
}

/// Per-device model-phase result.
struct DeviceFit {
    report: DeviceShardReport,
    sim: SimResult,
    failed: bool,
}

impl ShardModel {
    /// Phase A: shard, fit each shard to its device (tiling + shrink
    /// ladder against the per-device capacity), simulate each device's
    /// launches, and price the all-reduce. Runs the per-device work on
    /// the rayon pool; every output is order-independent.
    ///
    /// When the context carries a `device-loss` fault plan, each device
    /// of a multi-device grid may drop out (drawn per device, at least
    /// one survivor guaranteed). Recovery is re-sharding: the model is
    /// rebuilt for the surviving device count, whose shard ranges — and
    /// therefore whose value fold — are *exactly* those of a clean run
    /// on that many devices, so the output stays bit-identical. The dead
    /// devices' partial work is charged as wasted compute time.
    pub fn build(ctx: &GpuContext, plan: &Plan, spec: &GridSpec, opts: &OocOptions) -> ShardModel {
        if spec.devices > 1 {
            if let Some(fp) = ctx.device_fault_plan() {
                let mut lost: Vec<usize> = Vec::new();
                for d in 0..spec.devices {
                    // Liveness: never lose the last remaining survivor.
                    if spec.devices - lost.len() <= 1 {
                        break;
                    }
                    if fp.device_lost(plan.name(), d) {
                        lost.push(d);
                    }
                }
                if !lost.is_empty() {
                    return Self::build_survivors(ctx, plan, spec, opts, lost);
                }
            }
        }
        Self::build_clean(ctx, plan, spec, opts)
    }

    /// Re-shards around `lost` devices: builds the clean model for the
    /// surviving device count (bit-identical to a clean run of that
    /// size — single level, survivors do not cascade-fail within one
    /// launch) and charges the time the dead devices burned on their
    /// original shards before dying.
    fn build_survivors(
        ctx: &GpuContext,
        plan: &Plan,
        spec: &GridSpec,
        opts: &OocOptions,
        lost: Vec<usize>,
    ) -> ShardModel {
        let survivor_spec = GridSpec {
            devices: spec.devices - lost.len(),
            interconnect: spec.interconnect.clone(),
            capacity_per_device: spec.capacity_per_device,
        };
        let mut model = Self::build_clean(ctx, plan, &survivor_spec, opts);
        // Wasted-time model: each lost device ran its share of the
        // *original* N-way sharding up to its drawn progress fraction.
        // Devices run concurrently, so the node loses the max, not the
        // sum.
        let prefix = plan.block_weight_prefix();
        let ranges = shard_ranges(&prefix, spec.devices);
        let total_weight = prefix[prefix.len() - 1].max(1);
        let (clean_sim, _) = plan.clean_sim_cached(ctx);
        let mut wasted = 0.0f64;
        if let Some(fp) = ctx.device_fault_plan() {
            for &d in &lost {
                let (b0, b1) = ranges[d];
                let share = (prefix[b1] - prefix[b0]) as f64 / total_weight as f64;
                let progress = fp.device_loss_progress(plan.name(), d);
                wasted = wasted.max(clean_sim.time_s * share * progress);
            }
        }
        model.lost_devices = lost;
        model.wasted_seconds = wasted;
        model.compute_seconds += wasted;
        model.node_sim.time_s += wasted;
        model
    }

    /// Clean build with link-fault handling: a multi-device grid first
    /// draws the state of its `n` ring links (link `l` connects device
    /// `l` to `(l+1) % n`). Any lost link breaks the ring — there is no
    /// collective — so the grid falls back to the bit-exact single-device
    /// path. Otherwise any degraded link re-prices the all-reduce on the
    /// degraded fabric (a ring moves every step over every link, so the
    /// slowest link sets the pace). Neither outcome perturbs committed
    /// values.
    fn build_clean(
        ctx: &GpuContext,
        plan: &Plan,
        spec: &GridSpec,
        opts: &OocOptions,
    ) -> ShardModel {
        if spec.devices > 1 {
            if let Some(fp) = ctx.link_fault_plan() {
                let name = plan.name();
                let lost: Vec<usize> = (0..spec.devices)
                    .filter(|&l| fp.link_lost(name, l))
                    .collect();
                if !lost.is_empty() {
                    let single = GridSpec {
                        devices: 1,
                        interconnect: spec.interconnect.clone(),
                        capacity_per_device: spec.capacity_per_device,
                    };
                    let mut model = Self::build_fabric(ctx, plan, &single, opts, None);
                    model.lost_links = lost;
                    return model;
                }
                let degraded: Vec<usize> = (0..spec.devices)
                    .filter(|&l| fp.link_degraded(name, l))
                    .collect();
                if !degraded.is_empty() {
                    let fabric = spec.interconnect.degraded(fp.link_degrade_factor);
                    let mut model = Self::build_fabric(ctx, plan, spec, opts, Some(fabric));
                    model.degraded_links = degraded;
                    return model;
                }
            }
        }
        Self::build_fabric(ctx, plan, spec, opts, None)
    }

    /// The fabric-parameterized model build: `fabric` (when present)
    /// prices the all-reduce in place of the configured interconnect —
    /// everything else (shards, leases, simulations) is fabric-blind.
    fn build_fabric(
        ctx: &GpuContext,
        plan: &Plan,
        spec: &GridSpec,
        opts: &OocOptions,
        fabric: Option<Interconnect>,
    ) -> ShardModel {
        let prefix = plan.block_weight_prefix();
        let ranges = shard_ranges(&prefix, spec.devices);
        let device_mems: Vec<Arc<DeviceMemory>> = (0..spec.devices)
            .map(|_| {
                if spec.capacity_per_device == u64::MAX {
                    Arc::new(DeviceMemory::unlimited())
                } else {
                    Arc::new(DeviceMemory::with_capacity(spec.capacity_per_device))
                }
            })
            .collect();

        let fits: Vec<DeviceFit> = ranges
            .par_iter()
            .enumerate()
            .map(|(d, &(b0, b1))| fit_device(ctx, plan, opts, &prefix, d, b0, b1, &device_mems[d]))
            .collect();

        let cpu_fallback = fits.iter().any(|f| f.failed);
        let mut shards = Vec::with_capacity(spec.devices);
        let mut node_sim = ooc::cpu_fallback_sim(plan);
        node_sim.kernel = format!("{}+sharded[{}]", plan.name(), spec.devices);
        let mut weighted_eff = 0.0f64;
        let mut weighted_occ = 0.0f64;
        let mut weighted_l2 = 0.0f64;
        let mut weighted_mean_block = 0.0f64;
        let mut compute_seconds = 0.0f64;
        let mut busy_seconds = 0.0f64;
        for f in fits {
            let sim = &f.sim;
            // Devices run concurrently: the node's critical path is the
            // slowest device; counters still add across the node.
            compute_seconds = compute_seconds.max(sim.time_s);
            node_sim.makespan_cycles = node_sim.makespan_cycles.max(sim.makespan_cycles);
            node_sim.total_flops += sim.total_flops;
            node_sim.num_blocks += sim.num_blocks;
            node_sim.num_warps += sim.num_warps;
            node_sim.mem_segments += sim.mem_segments;
            node_sim.atomic_ops += sim.atomic_ops;
            node_sim.max_block_cycles = node_sim.max_block_cycles.max(sim.max_block_cycles);
            weighted_eff += sim.sm_efficiency * sim.time_s;
            weighted_occ += sim.achieved_occupancy * sim.time_s;
            weighted_l2 += sim.l2_hit_rate * sim.time_s;
            weighted_mean_block += sim.mean_block_cycles * sim.num_blocks as f64;
            busy_seconds += sim.time_s;
            shards.push(f.report);
        }
        let out_bytes = (plan.out_rows() as u64)
            .saturating_mul(plan.rank() as u64)
            .saturating_mul(VALUE_BYTES);
        let pricing = fabric.as_ref().unwrap_or(&spec.interconnect);
        let allreduce_seconds = pricing.all_reduce_seconds(out_bytes, spec.devices);
        let allreduce_bytes = pricing.all_reduce_volume(out_bytes, spec.devices);
        node_sim.time_s = compute_seconds + allreduce_seconds;
        if busy_seconds > 0.0 {
            node_sim.sm_efficiency = weighted_eff / busy_seconds;
            node_sim.achieved_occupancy = weighted_occ / busy_seconds;
            node_sim.l2_hit_rate = weighted_l2 / busy_seconds;
        }
        if node_sim.num_blocks > 0 {
            node_sim.mean_block_cycles = weighted_mean_block / node_sim.num_blocks as f64;
        }
        if node_sim.time_s > 0.0 {
            node_sim.gflops = node_sim.total_flops as f64 / node_sim.time_s / 1e9;
        }

        ShardModel {
            spec: spec.clone(),
            ranges,
            device_mems,
            shards,
            node_sim,
            compute_seconds,
            allreduce_seconds,
            allreduce_bytes,
            cpu_fallback,
            lost_devices: Vec::new(),
            wasted_seconds: 0.0,
            degraded_links: Vec::new(),
            lost_links: Vec::new(),
        }
    }

    /// Whether a device failed every GPU rung; executing then requires
    /// the COO tensor for the CPU reference fallback.
    pub fn needs_tensor(&self) -> bool {
        self.cpu_fallback
    }

    /// The shard block ranges, in device order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Original device ordinals that dropped out at model build and were
    /// re-sharded around (empty for a clean model).
    pub fn lost_devices(&self) -> &[usize] {
        &self.lost_devices
    }

    /// Ring links that ran degraded for this model (empty when the fabric
    /// was clean).
    pub fn degraded_links(&self) -> &[usize] {
        &self.degraded_links
    }

    /// Ring links that were down for this model; non-empty means the grid
    /// fell back to the bit-exact single-device path.
    pub fn lost_links(&self) -> &[usize] {
        &self.lost_links
    }

    /// Phase B: produce values. Clean runs fold each shard's block range
    /// into one shared output in device order; faulted runs route every
    /// contribution through a single ABFT sink with global block
    /// ordinals. Either way the result is bit-identical to
    /// [`Plan::execute`] on one device.
    ///
    /// Errors with [`LaunchError::TensorRequired`] if the model fell
    /// back to the CPU reference and no COO tensor was attached.
    pub fn execute(
        &self,
        ctx: &GpuContext,
        plan: &Plan,
        factors: &[Matrix],
        tensor: Option<&CooTensor>,
    ) -> Result<(GpuRun, GridReport), LaunchError> {
        let run = if self.cpu_fallback {
            let Some(t) = tensor else {
                return Err(LaunchError::TensorRequired);
            };
            GpuRun {
                y: crate::reference::mttkrp(t, factors, plan.mode()),
                sim: ooc::cpu_fallback_sim(plan),
                profile: None,
                abft: None,
            }
        } else {
            let mut y = Matrix::zeros(plan.out_rows(), plan.rank());
            let mut sink = ctx
                .fault_plan()
                .is_some()
                .then(|| ctx.abft_sink(plan.name(), plan.out_rows()));
            for &(b0, b1) in &self.ranges {
                match &mut sink {
                    Some(s) => plan.replay_range_sequential(&mut y, factors, s, b0, b1),
                    None => plan.replay_range_parallel(&mut y, factors, b0, b1),
                }
            }
            let abft = match sink {
                Some(mut s) => {
                    s.flush(&mut y);
                    s.into_data()
                }
                None => None,
            };
            GpuRun {
                y,
                sim: self.node_sim.clone(),
                // Per-device timelines do not concatenate into one
                // meaningful whole-node profile (same stance as tiling);
                // per-device stats live in the GridReport instead.
                profile: None,
                abft,
            }
        };
        if ctx.profiling() {
            ctx.registry.add("sharded.executions", 1);
            ctx.registry
                .add("sharded.devices", self.spec.devices as u64);
            let ooms: u64 = self.shards.iter().map(|s| s.oom_events).sum();
            ctx.registry.add("sharded.oom_events", ooms);
            if self.cpu_fallback {
                ctx.registry.add("sharded.cpu_fallbacks", 1);
            }
            if !self.lost_devices.is_empty() {
                ctx.registry
                    .add("sharded.device_losses", self.lost_devices.len() as u64);
            }
            if !self.degraded_links.is_empty() {
                ctx.registry
                    .add("sharded.link_degrades", self.degraded_links.len() as u64);
            }
            if !self.lost_links.is_empty() {
                ctx.registry
                    .add("sharded.link_losses", self.lost_links.len() as u64);
            }
            for s in &self.shards {
                ctx.registry
                    .observe("shard.compute_us", (s.sim_time_s * 1e6).round() as u64);
            }
        }
        if !self.cpu_fallback {
            // The *canonical* replay timing is the memoized fault-free
            // whole-launch simulation: it depends only on the captured
            // launch, never on the device count, so the simulated clock —
            // and every fold-order event stamped from it — is identical
            // across `--devices 1` and `--devices N`. Device-dependent
            // quantities (per-shard times, all-reduce pricing) are carried
            // by `shard-*` events instead, which are excluded from the
            // cross-device stability contract.
            let tel = &ctx.telemetry;
            let (clean_sim, _) = plan.clean_sim_cached(ctx);
            let canonical_us = clean_sim.time_s * 1e6;
            if tel.enabled() {
                let span = tel.new_span();
                tel.emit(
                    "kernel-replay",
                    None,
                    span,
                    &[
                        ("kernel", FieldValue::from(plan.name())),
                        ("mode", FieldValue::from(plan.mode())),
                        ("sim_kernel_us", FieldValue::from(canonical_us)),
                        ("faulted", FieldValue::from(ctx.fault_plan().is_some())),
                    ],
                );
                for &d in &self.lost_devices {
                    tel.emit(
                        "device-lost",
                        Some(d),
                        span,
                        &[
                            ("kernel", FieldValue::from(plan.name())),
                            ("survivors", FieldValue::from(self.spec.devices)),
                            ("wasted_us", FieldValue::from(self.wasted_seconds * 1e6)),
                        ],
                    );
                }
                for &l in &self.lost_links {
                    tel.emit(
                        "link-lost",
                        None,
                        span,
                        &[
                            ("kernel", FieldValue::from(plan.name())),
                            ("link", FieldValue::from(l)),
                            ("fallback_devices", FieldValue::from(self.spec.devices)),
                        ],
                    );
                }
                for &l in &self.degraded_links {
                    tel.emit(
                        "link-degraded",
                        None,
                        span,
                        &[
                            ("kernel", FieldValue::from(plan.name())),
                            ("link", FieldValue::from(l)),
                            (
                                "allreduce_us",
                                FieldValue::from(self.allreduce_seconds * 1e6),
                            ),
                        ],
                    );
                }
                for s in &self.shards {
                    tel.emit(
                        "shard-compute",
                        Some(s.device),
                        span,
                        &[
                            ("kernel", FieldValue::from(plan.name())),
                            ("block_begin", FieldValue::from(s.block_begin)),
                            ("block_end", FieldValue::from(s.block_end)),
                            ("weight", FieldValue::from(s.weight)),
                            ("tiles", FieldValue::from(s.tiles_run)),
                            ("sim_us", FieldValue::from(s.sim_time_s * 1e6)),
                        ],
                    );
                }
                tel.emit(
                    "shard-allreduce",
                    None,
                    span,
                    &[
                        ("kernel", FieldValue::from(plan.name())),
                        ("devices", FieldValue::from(self.spec.devices)),
                        ("bytes", FieldValue::from(self.allreduce_bytes)),
                        ("seconds", FieldValue::from(self.allreduce_seconds)),
                    ],
                );
            }
            tel.advance_us(canonical_us);
        }
        Ok((run, self.report()))
    }

    /// The grid report for the current model state (high-water marks are
    /// read from the per-device ledgers at call time).
    pub fn report(&self) -> GridReport {
        let mut shards = self.shards.clone();
        for s in &mut shards {
            s.high_water_bytes = self.device_mems[s.device].high_water();
        }
        GridReport {
            devices: self.spec.devices,
            interconnect: self.spec.interconnect.to_string(),
            shards,
            compute_seconds: self.compute_seconds,
            allreduce_seconds: self.allreduce_seconds,
            allreduce_bytes: self.allreduce_bytes,
            total_seconds: self.compute_seconds + self.allreduce_seconds,
            cpu_fallback: self.cpu_fallback,
            lost_devices: self.lost_devices.clone(),
            wasted_seconds: self.wasted_seconds,
            degraded_links: self.degraded_links.clone(),
            lost_links: self.lost_links.clone(),
        }
    }
}

/// Fits one device's shard: whole-shard lease first, then tiles at the
/// device capacity with budget halvings, mirroring the single-device
/// out-of-core ladder (sites are device-distinguished so the injected
/// OOM stream is stable under any device count).
#[allow(clippy::too_many_arguments)]
fn fit_device(
    ctx: &GpuContext,
    plan: &Plan,
    opts: &OocOptions,
    prefix: &[u64],
    device: usize,
    b0: usize,
    b1: usize,
    mem: &Arc<DeviceMemory>,
) -> DeviceFit {
    let fp = plan.footprint();
    let weight = prefix[b1] - prefix[b0];
    let mut report = DeviceShardReport {
        device,
        block_begin: b0,
        block_end: b1,
        weight,
        in_core: false,
        tiles_run: 0,
        oom_events: 0,
        high_water_bytes: 0,
        sim_time_s: 0.0,
        makespan_cycles: 0.0,
        total_flops: 0,
    };
    // An empty shard (more devices than blocks) holds nothing and runs
    // nothing.
    if b0 >= b1 {
        report.in_core = true;
        let sim = ooc::aggregate_tiled_sim(ctx, plan, &[]);
        return DeviceFit {
            report,
            sim,
            failed: false,
        };
    }

    let mem_plan = ctx.mem_fault_plan().cloned();
    let capacity = mem.effective_capacity(mem_plan.as_ref());
    let pad = |b: u64| mem.pad(b).unwrap_or(u64::MAX);
    let share = ooc::format_share(fp, prefix, b0, b1);
    let name = plan.name();

    // Rung 0: the whole shard at once.
    let padded = pad(fp.factor_bytes)
        .saturating_add(pad(fp.output_bytes))
        .saturating_add(pad(share));
    if padded <= capacity {
        let parts = vec![
            (format!("{name}.factors"), fp.factor_bytes),
            (format!("{name}.output"), fp.output_bytes),
            (format!("{name}.shard{device}.format"), share),
        ];
        match mem.try_lease(name, &parts, mem_plan.as_ref(), device_site(device, 0)) {
            Ok(_lease) => {
                report.in_core = true;
                report.tiles_run = 1;
                let sim = finish_fit(ctx, plan, &mut report, &[(b0, b1)]);
                return DeviceFit {
                    report,
                    sim,
                    failed: false,
                };
            }
            Err(_) => report.oom_events += 1,
        }
    }

    // Tiled rungs: capacity budget, then halvings — the single-device
    // ladder confined to this shard's block range.
    let mut budget = capacity;
    for shrink in 0..=u64::from(opts.max_shrinks) {
        if shrink > 0 {
            budget /= 2;
        }
        let Some(tiles) = ooc::plan_tiles_range(plan, budget, mem, b0, b1) else {
            break;
        };
        let mut leased_all = true;
        for (k, &(t0, t1)) in tiles.iter().enumerate() {
            let parts = vec![
                (format!("{name}.factors"), fp.factor_bytes),
                (format!("{name}.output"), fp.output_bytes),
                (
                    format!("{name}.shard{device}.format.tile{k}"),
                    ooc::format_share(fp, prefix, t0, t1),
                ),
            ];
            let site = device_site(device, ((shrink + 1) << 32) | k as u64);
            if mem
                .try_lease(name, &parts, mem_plan.as_ref(), site)
                .is_err()
            {
                report.oom_events += 1;
                leased_all = false;
                break;
            }
        }
        if leased_all {
            report.tiles_run = tiles.len();
            let sim = finish_fit(ctx, plan, &mut report, &tiles);
            return DeviceFit {
                report,
                sim,
                failed: false,
            };
        }
    }

    // Every rung refused: the node degrades to the CPU reference.
    let sim = ooc::aggregate_tiled_sim(ctx, plan, &[]);
    DeviceFit {
        report,
        sim,
        failed: true,
    }
}

fn finish_fit(
    ctx: &GpuContext,
    plan: &Plan,
    report: &mut DeviceShardReport,
    tiles: &[(usize, usize)],
) -> SimResult {
    let sim = ooc::aggregate_tiled_sim(ctx, plan, tiles);
    report.sim_time_s = sim.time_s;
    report.makespan_cycles = sim.makespan_cycles;
    report.total_flops = sim.total_flops;
    sim
}

/// One-shot sharded execution: build the model, check the CPU-fallback
/// precondition, execute. Iterative drivers should hold a [`ShardModel`]
/// instead of paying the model phase per call.
pub(crate) fn execute_sharded(
    ctx: &GpuContext,
    plan: &Plan,
    factors: &[Matrix],
    tensor: Option<&CooTensor>,
    spec: &GridSpec,
    opts: &OocOptions,
) -> Result<(GpuRun, GridReport), LaunchError> {
    let model = ShardModel::build(ctx, plan, spec, opts);
    model.execute(ctx, plan, factors, tensor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_and_balance() {
        // Uniform weights: 12 blocks over 4 devices -> 3 each.
        let prefix: Vec<u64> = (0..=12).map(|b| b as u64 * 5).collect();
        let r = shard_ranges(&prefix, 4);
        assert_eq!(r, vec![(0, 3), (3, 6), (6, 9), (9, 12)]);
        // One device owns everything.
        assert_eq!(shard_ranges(&prefix, 1), vec![(0, 12)]);
        // More devices than blocks: trailing shards are empty, coverage
        // stays exact and consecutive.
        let small: Vec<u64> = vec![0, 7, 9];
        let r = shard_ranges(&small, 4);
        assert_eq!(r.first().unwrap().0, 0);
        assert_eq!(r.last().unwrap().1, 2);
        for w in r.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn skewed_weights_split_by_weight_not_count() {
        // One huge block then many tiny ones: device 0 should get far
        // fewer blocks than device 1.
        let mut prefix = vec![0u64, 1000];
        for b in 1..=10 {
            prefix.push(1000 + b);
        }
        let r = shard_ranges(&prefix, 2);
        assert_eq!(r[0].1, r[1].0);
        assert!(r[0].1 <= 2, "heavy block should end the first shard early");
        assert_eq!(r[1].1, 11);
    }
}
