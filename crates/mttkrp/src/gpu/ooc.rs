//! Out-of-core tiled MTTKRP execution with a graceful-degradation ladder.
//!
//! When a captured [`Plan`]'s [`MemoryFootprint`] exceeds the context's
//! device-memory capacity — or a seeded OOM fault refuses an allocation
//! mid-run — [`execute_adaptive`] degrades instead of failing:
//!
//! 1. **Full device.** If the whole footprint fits, lease it (checked)
//!    and run the ordinary replay.
//! 2. **Tiled.** Partition the captured [`ReplaySchedule`] into
//!    consecutive *block ranges* whose resident set (factors + output)
//!    plus format share each fit the byte budget, and stream the tiles
//!    through the simulator one lease at a time. If an injected OOM kills
//!    a tile, discard the partial output and retry the whole attempt at
//!    half the budget, up to [`OocOptions::max_shrinks`] times.
//! 3. **CPU.** Fall back to the sequential [`crate::reference::mttkrp`].
//!
//! Tiles are ranges of the *captured schedule*, never rebuilt sub-tensor
//! formats: tiling only moves the parallel batch boundaries, while the
//! ordered per-contribution fold into `y` is unchanged — so tiled output
//! is bit-for-bit identical to untiled replay for every kernel, any tile
//! size, by construction. Under an active execution-fault plan the tiles
//! route through one [`AbftSink`](super::AbftSink) using *global* block
//! ordinals, so injected faults and checksums also match the untiled run
//! exactly. The CPU rung uses a different summation order and is
//! therefore *not* bit-identical — clean capacity-constrained runs never
//! reach it (the packer only refuses when a budget cannot hold even one
//! block, and budgets start at the effective capacity), only
//! injected-OOM runs can be driven there.
//!
//! Every decision is recorded in a [`MemReport`]: the ladder steps taken,
//! tile counts, budgets, OOM events, and the high-water mark — all
//! deterministic under a fixed seed.

use dense::Matrix;
use gpu_sim::{MemError, SimResult};
use simprof::FieldValue;
use sptensor::CooTensor;

use super::common::{GpuContext, GpuRun};
use super::plan::{MemoryFootprint, Plan};

/// Knobs for the degradation ladder.
#[derive(Debug, Clone, Copy)]
pub struct OocOptions {
    /// Budget halvings to attempt after the first tiled rung fails
    /// (injected OOM) before falling back to the CPU reference.
    pub max_shrinks: u32,
}

impl Default for OocOptions {
    fn default() -> Self {
        OocOptions { max_shrinks: 3 }
    }
}

/// One rung attempted on the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct LadderStep {
    /// `"full-device"`, `"tiled"`, or `"cpu"`.
    pub rung: String,
    /// Byte budget the rung ran under (0 for the CPU rung).
    pub budget_bytes: u64,
    /// Tiles the rung planned (1 for full-device, 0 for CPU).
    pub tiles: usize,
    /// `"ok"`, `"oom-injected"`, `"exceeds-capacity"`,
    /// `"budget-too-small"`, or `"untileable"` (single-block schedule
    /// that no budget could split further).
    pub outcome: String,
}

/// The memory story of one adaptive execution, deterministic under a
/// fixed seed.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct MemReport {
    pub kernel: String,
    pub mode: usize,
    /// The plan's full-device footprint.
    pub footprint_bytes: u64,
    /// Configured device capacity (`u64::MAX` = unlimited).
    pub capacity_bytes: u64,
    /// Whether the run completed on the full-device rung.
    pub in_core: bool,
    /// Tiles executed by the successful tiled attempt (0 otherwise).
    pub tiles_run: usize,
    /// Byte budget of the successful tiled attempt (0 otherwise).
    pub tile_budget_bytes: u64,
    /// Allocation refusals across all rungs (injected + genuine).
    pub oom_events: u64,
    /// Whether the run ended on the CPU reference rung.
    pub cpu_fallback: bool,
    /// Device high-water mark after the run.
    pub high_water_bytes: u64,
    /// Every rung attempted, in order.
    pub ladder: Vec<LadderStep>,
}

impl MemReport {
    /// Folds this execution into an accumulating manifest record.
    pub fn absorb_into(&self, rec: &mut simprof::MemoryRecord) {
        rec.footprint_bytes = rec.footprint_bytes.max(self.footprint_bytes);
        if self.capacity_bytes != u64::MAX {
            rec.capacity_bytes = rec.capacity_bytes.max(self.capacity_bytes);
        }
        rec.high_water_bytes = rec.high_water_bytes.max(self.high_water_bytes);
        rec.oom_events += self.oom_events;
        if self.in_core {
            rec.in_core_launches += 1;
        } else if self.cpu_fallback {
            rec.cpu_fallbacks += 1;
        } else {
            rec.tiled_launches += 1;
            rec.tiles_run += self.tiles_run as u64;
        }
        rec.ladder_shrinks += self
            .ladder
            .iter()
            .filter(|s| s.rung == "tiled" && s.outcome != "ok")
            .count() as u64;
        for step in &self.ladder {
            rec.events.push(simprof::MemEventRecord {
                kernel: self.kernel.clone(),
                mode: self.mode,
                rung: step.rung.clone(),
                budget_bytes: step.budget_bytes,
                tiles: step.tiles,
                outcome: step.outcome.clone(),
            });
        }
    }
}

/// Packs schedule blocks `0..len(weights)-1` into consecutive tiles whose
/// bytes fit `budget`: each tile pays the resident set (factors + output)
/// plus its weight-proportional share of the format arrays. Every part is
/// rounded up to `mem`'s allocation granularity — the lease that backs
/// the tile pads the same way, so a packing that ignored padding would
/// OOM at the budget boundary. Returns `None` when even a single block
/// cannot fit — the caller must degrade.
pub fn plan_tiles(
    plan: &Plan,
    budget: u64,
    mem: &gpu_sim::DeviceMemory,
) -> Option<Vec<(usize, usize)>> {
    let nblocks = plan.block_weight_prefix().len() - 1;
    plan_tiles_range(plan, budget, mem, 0, nblocks)
}

/// [`plan_tiles`] restricted to the schedule-block range `range_b0 ..
/// range_b1` — the per-device packer of the sharded engine, which carves
/// one device's shard into tiles that fit that device's memory. The
/// resident set (factors + output) is charged in full per tile; format
/// bytes are charged by weight share exactly as in the whole-plan case.
pub(crate) fn plan_tiles_range(
    plan: &Plan,
    budget: u64,
    mem: &gpu_sim::DeviceMemory,
    range_b0: usize,
    range_b1: usize,
) -> Option<Vec<(usize, usize)>> {
    let fp = plan.footprint();
    let prefix = plan.block_weight_prefix();
    let nblocks = prefix.len() - 1;
    let range_b1 = range_b1.min(nblocks);
    if range_b0 >= range_b1 {
        return Some(vec![]);
    }
    let pad = |b: u64| mem.pad(b).unwrap_or(u64::MAX);
    let resident = pad(fp.factor_bytes).saturating_add(pad(fp.output_bytes));
    if resident >= budget {
        return None;
    }
    let avail = budget - resident;
    let share = |b0: usize, b1: usize| pad(format_share(fp, &prefix, b0, b1));
    let mut tiles = Vec::new();
    let mut b0 = range_b0;
    while b0 < range_b1 {
        if share(b0, b0 + 1) > avail {
            return None;
        }
        // Greedy: extend while the format share still fits (the share is
        // monotone in b1, so the first overflow ends the tile).
        let mut b1 = b0 + 1;
        while b1 < range_b1 && share(b0, b1 + 1) <= avail {
            b1 += 1;
        }
        tiles.push((b0, b1));
        b0 = b1;
    }
    Some(tiles)
}

/// Bytes of the format arrays attributed to schedule blocks `b0..b1`:
/// `ceil(format_bytes × (W[b1] − W[b0]) / W_total)`, exact in u128.
pub(crate) fn format_share(fp: &MemoryFootprint, prefix: &[u64], b0: usize, b1: usize) -> u64 {
    let total = prefix[prefix.len() - 1].max(1);
    let w = prefix[b1] - prefix[b0];
    let num = u128::from(fp.format_bytes) * u128::from(w);
    let den = u128::from(total);
    u64::try_from(num.div_ceil(den)).unwrap_or(u64::MAX)
}

/// Fault-draw site for checked leases: rung 0 is the full-device lease,
/// tiled rung `r` (0-based shrink count) uses `((r + 1) << 32) | tile`.
fn lease_site(shrink_rung: u64, tile: u64) -> u64 {
    ((shrink_rung + 1) << 32) | tile
}

/// Runs `plan` under the degradation ladder; see the module docs. Returns
/// the run (bit-identical to [`Plan::execute`] whenever a GPU rung wins)
/// and the full memory story.
pub fn execute_adaptive(
    ctx: &GpuContext,
    plan: &Plan,
    factors: &[Matrix],
    t: &CooTensor,
    opts: &OocOptions,
) -> (GpuRun, MemReport) {
    let fp = *plan.footprint();
    let mem_plan = ctx.mem_fault_plan().cloned();
    let capacity = ctx.memory.effective_capacity(mem_plan.as_ref());
    let mut report = MemReport {
        kernel: plan.name().to_string(),
        mode: plan.mode(),
        footprint_bytes: fp.total_bytes(),
        capacity_bytes: ctx.memory.capacity(),
        ..MemReport::default()
    };

    // Rung 0: the whole footprint at once (padded the way the lease will
    // pad it, so the check and the allocation agree at the boundary).
    let padded_footprint = [fp.factor_bytes, fp.output_bytes, fp.format_bytes]
        .iter()
        .map(|&b| ctx.memory.pad(b).unwrap_or(u64::MAX))
        .fold(0u64, u64::saturating_add);
    if padded_footprint <= capacity {
        match ctx
            .memory
            .try_lease(plan.name(), &plan.footprint_parts(), mem_plan.as_ref(), 0)
        {
            Ok(_lease) => {
                let run = plan.execute_inner(ctx, factors);
                report.in_core = true;
                push_step(&mut report, "full-device", capacity, 1, "ok");
                return finish(ctx, run, report);
            }
            Err(e) => {
                report.oom_events += 1;
                push_step(&mut report, "full-device", capacity, 1, outcome_of(&e));
            }
        }
    } else {
        push_step(&mut report, "full-device", capacity, 1, "exceeds-capacity");
    }

    // Tiled rungs: capacity budget, then halvings.
    let mut budget = capacity;
    for shrink in 0..=u64::from(opts.max_shrinks) {
        if shrink > 0 {
            budget /= 2;
        }
        let Some(tiles) = plan_tiles(plan, budget, &ctx.memory) else {
            // Distinguish "no budget would ever help" from "this budget is
            // too small": a single-block schedule cannot be split, so the
            // halving loop would only re-discover the same failure.
            if plan.block_weight_prefix().len() - 1 <= 1 {
                push_step(&mut report, "tiled", budget, 0, "untileable");
            } else {
                push_step(&mut report, "tiled", budget, 0, "budget-too-small");
            }
            break;
        };
        match run_tiled(
            ctx,
            plan,
            factors,
            &tiles,
            budget,
            shrink,
            mem_plan.as_ref(),
        ) {
            Ok(run) => {
                report.tiles_run = tiles.len();
                report.tile_budget_bytes = budget;
                push_step(&mut report, "tiled", budget, tiles.len(), "ok");
                return finish(ctx, run, report);
            }
            Err(e) => {
                report.oom_events += 1;
                push_step(&mut report, "tiled", budget, tiles.len(), outcome_of(&e));
            }
        }
    }

    // Final rung: the sequential CPU reference (different summation order
    // — correct to f32 tolerance, not bit-identical to the GPU fold).
    report.cpu_fallback = true;
    push_step(&mut report, "cpu", 0, 0, "ok");
    let y = crate::reference::mttkrp(t, factors, plan.mode());
    let run = GpuRun {
        y,
        sim: cpu_fallback_sim(plan),
        profile: None,
        abft: None,
    };
    finish(ctx, run, report)
}

fn push_step(report: &mut MemReport, rung: &str, budget: u64, tiles: usize, outcome: &str) {
    report.ladder.push(LadderStep {
        rung: rung.to_string(),
        budget_bytes: budget,
        tiles,
        outcome: outcome.to_string(),
    });
}

fn outcome_of(e: &MemError) -> &'static str {
    match e {
        MemError::Injected { .. } => "oom-injected",
        _ => "exceeds-capacity",
    }
}

fn finish(ctx: &GpuContext, run: GpuRun, mut report: MemReport) -> (GpuRun, MemReport) {
    report.high_water_bytes = ctx.memory.high_water();
    if ctx.profiling() {
        ctx.registry.add("ooc.executions", 1);
        if !report.in_core {
            ctx.registry.add("ooc.tiles", report.tiles_run as u64);
        }
        if report.cpu_fallback {
            ctx.registry.add("ooc.cpu_fallbacks", 1);
        }
        ctx.registry.add("ooc.oom_events", report.oom_events);
    }
    let tel = &ctx.telemetry;
    if tel.enabled() {
        // One span covers the whole adaptive decision: every rung
        // attempted, in order, plus the replay event when a non-in-core
        // rung produced the result.
        let span = tel.new_span();
        for step in &report.ladder {
            tel.emit(
                "ladder-step",
                None,
                span,
                &[
                    ("kernel", FieldValue::from(report.kernel.as_str())),
                    ("mode", FieldValue::from(report.mode)),
                    ("rung", FieldValue::from(step.rung.as_str())),
                    ("budget_bytes", FieldValue::from(step.budget_bytes)),
                    ("tiles", FieldValue::from(step.tiles)),
                    ("outcome", FieldValue::from(step.outcome.as_str())),
                ],
            );
        }
        if !report.in_core && !report.cpu_fallback {
            tel.emit(
                "kernel-replay",
                None,
                span,
                &[
                    ("kernel", FieldValue::from(run.sim.kernel.as_str())),
                    ("mode", FieldValue::from(report.mode)),
                    ("sim_kernel_us", FieldValue::from(run.sim.time_s * 1e6)),
                    ("tiles", FieldValue::from(report.tiles_run)),
                    ("faulted", FieldValue::from(ctx.fault_plan().is_some())),
                ],
            );
        }
    }
    // The in-core rung replays through `Plan::execute_inner`, which
    // already advanced the simulated clock; tiled (and zero-time CPU)
    // rungs bypass it, so account for their simulated time here.
    if !report.in_core {
        tel.advance_us(run.sim.time_s * 1e6);
    }
    (run, report)
}

/// One tiled attempt: leases each tile (checked), replays its block range
/// into the shared `y`, and aggregates per-tile simulations. Any lease
/// refusal aborts the attempt — the partially accumulated `y` is
/// discarded by the caller retrying at a smaller budget.
fn run_tiled(
    ctx: &GpuContext,
    plan: &Plan,
    factors: &[Matrix],
    tiles: &[(usize, usize)],
    budget: u64,
    shrink_rung: u64,
    mem_plan: Option<&gpu_sim::FaultPlan>,
) -> Result<GpuRun, MemError> {
    let fp = plan.footprint();
    let prefix = plan.block_weight_prefix();
    let mut y = Matrix::zeros(plan.out_rows(), plan.rank());
    // Under execution faults every contribution routes through ONE sink
    // spanning all tiles, with global block ordinals: the injected fault
    // stream and checksums match the untiled faulted replay bit-for-bit.
    let mut sink = ctx
        .fault_plan()
        .is_some()
        .then(|| ctx.abft_sink(plan.name(), plan.out_rows()));

    for (k, &(b0, b1)) in tiles.iter().enumerate() {
        let parts = vec![
            (format!("{}.factors", plan.name()), fp.factor_bytes),
            (format!("{}.output", plan.name()), fp.output_bytes),
            (
                format!("{}.format.tile{k}", plan.name()),
                format_share(fp, &prefix, b0, b1),
            ),
        ];
        let site = lease_site(shrink_rung, k as u64);
        let _lease = ctx.memory.try_lease(plan.name(), &parts, mem_plan, site)?;
        match &mut sink {
            Some(s) => plan.replay_range_sequential(&mut y, factors, s, b0, b1),
            None => plan.replay_range_parallel(&mut y, factors, b0, b1),
        }
    }

    let abft = match sink {
        Some(mut s) => {
            s.flush(&mut y);
            s.into_data()
        }
        None => None,
    };
    let sim = plan.tiled_sim_cached(budget, || aggregate_tiled_sim(ctx, plan, tiles));
    // Tiled runs return no per-block profile: placements/timelines of the
    // sub-launches do not concatenate into a meaningful whole-run profile.
    Ok(GpuRun {
        y,
        sim,
        profile: None,
        abft,
    })
}

/// Simulates each tile's sub-launch and folds the metrics: streamed tiles
/// run back-to-back, so cycle/time/flop counts add, rate metrics average
/// time-weighted, and extrema take the max. Deterministic (tile order is
/// fixed by the packing).
pub(crate) fn aggregate_tiled_sim(
    ctx: &GpuContext,
    plan: &Plan,
    tiles: &[(usize, usize)],
) -> SimResult {
    let mut agg = cpu_fallback_sim(plan);
    agg.kernel = format!("{}+tiled", plan.name());
    let mut weighted_eff = 0.0f64;
    let mut weighted_occ = 0.0f64;
    let mut weighted_l2 = 0.0f64;
    let mut weighted_mean_block = 0.0f64;
    for &(b0, b1) in tiles {
        let sub = plan.sub_launch(b0, b1);
        if sub.blocks.is_empty() {
            continue;
        }
        let sim = ctx.simulate(&sub);
        // Histogram-only (no events): bucket increments are
        // order-independent, so this stays safe if tiles are ever
        // estimated in parallel.
        ctx.registry
            .observe("ooc.tile_us", (sim.time_s * 1e6).round() as u64);
        agg.makespan_cycles += sim.makespan_cycles;
        agg.time_s += sim.time_s;
        agg.total_flops += sim.total_flops;
        agg.num_blocks += sim.num_blocks;
        agg.num_warps += sim.num_warps;
        agg.mem_segments += sim.mem_segments;
        agg.atomic_ops += sim.atomic_ops;
        agg.max_block_cycles = agg.max_block_cycles.max(sim.max_block_cycles);
        weighted_eff += sim.sm_efficiency * sim.time_s;
        weighted_occ += sim.achieved_occupancy * sim.time_s;
        weighted_l2 += sim.l2_hit_rate * sim.time_s;
        weighted_mean_block += sim.mean_block_cycles * sim.num_blocks as f64;
    }
    if agg.time_s > 0.0 {
        agg.sm_efficiency = weighted_eff / agg.time_s;
        agg.achieved_occupancy = weighted_occ / agg.time_s;
        agg.l2_hit_rate = weighted_l2 / agg.time_s;
        agg.gflops = agg.total_flops as f64 / agg.time_s / 1e9;
    }
    if agg.num_blocks > 0 {
        agg.mean_block_cycles = weighted_mean_block / agg.num_blocks as f64;
    }
    agg
}

/// A zeroed [`SimResult`] for executions that never reached the
/// simulator (the CPU rung), and the aggregation seed for tiled runs.
pub(crate) fn cpu_fallback_sim(plan: &Plan) -> SimResult {
    SimResult {
        kernel: format!("{}+cpu-fallback", plan.name()),
        makespan_cycles: 0.0,
        time_s: 0.0,
        sm_efficiency: 0.0,
        achieved_occupancy: 0.0,
        l2_hit_rate: 0.0,
        total_flops: 0,
        gflops: 0.0,
        num_blocks: 0,
        num_warps: 0,
        mem_segments: 0,
        atomic_ops: 0,
        max_block_cycles: 0.0,
        mean_block_cycles: 0.0,
    }
}
