//! Shared machinery for the simulated GPU kernels: context, address
//! layout, and the lane-layout conventions every kernel follows.
//!
//! **Lane layout.** All structured kernels put the rank dimension across
//! the 32 lanes of a warp (lane `l` owns rank elements `l, l+32, …`), the
//! standard layout for MTTKRP with `R ≥ 32`: a factor-row access is then a
//! fully coalesced load of `ceil(R/32)` segments and a per-nonzero
//! multiply-accumulate is `ceil(R/32)` warp-wide FMA instructions.

use std::sync::Arc;

use dense::Matrix;
use gpu_sim::{
    simulate, simulate_instrumented, AddressSpace, ArraySpan, BitFlip, CostModel, DeviceMemory,
    DeviceProfile, FaultPlan, KernelLaunch, MemTraceRecorder, SimInstruments, SimProfile,
    SimResult, WarpWork,
};
use sptensor::Index;

/// Device + cost-model bundle passed to every GPU kernel, plus the
/// profiling sink every launch records into.
#[derive(Debug, Clone)]
pub struct GpuContext {
    pub device: DeviceProfile,
    pub cost: CostModel,
    /// Warps per thread block for the structured kernels (paper: 512
    /// threads = 16 warps).
    pub warps_per_block: usize,
    /// Profiling sink. Disabled by default: every recording call then
    /// costs one relaxed atomic load. Enable via [`GpuContext::with_profiling`]
    /// to collect per-launch counters/spans and per-block [`SimProfile`]s.
    pub registry: Arc<simprof::Registry>,
    /// Optional fault-injection plan. `None` (or an inactive plan) keeps
    /// every kernel on the exact fault-free code path — bit-for-bit
    /// identical output and timing. Set via [`GpuContext::with_faults`].
    pub faults: Option<FaultPlan>,
    /// Tracked device memory every plan execution leases its buffers
    /// from. Unlimited by default (pure observation: ledger + high-water
    /// mark); cap it via [`GpuContext::with_memory`] to make footprints
    /// binding and enable out-of-core execution.
    pub memory: Arc<DeviceMemory>,
    /// Structured event stream (JSONL). A null handle by default: the
    /// simulated clock still runs (CPD iteration timings derive from it)
    /// but no events are rendered. Set via [`GpuContext::with_events`].
    pub telemetry: Arc<simprof::Telemetry>,
    /// Opt-in per-warp memory address-stream recorder; `None` by default.
    /// Set via [`GpuContext::with_memtrace`].
    pub memtrace: Option<Arc<MemTraceRecorder>>,
}

impl Default for GpuContext {
    fn default() -> Self {
        GpuContext {
            device: DeviceProfile::p100(),
            cost: CostModel::default(),
            warps_per_block: 16,
            registry: Arc::new(simprof::Registry::disabled()),
            faults: None,
            memory: Arc::new(DeviceMemory::unlimited()),
            telemetry: Arc::new(simprof::Telemetry::null()),
            memtrace: None,
        }
    }
}

impl GpuContext {
    /// A small-device context for fast unit tests.
    pub fn tiny() -> GpuContext {
        GpuContext {
            device: DeviceProfile::tiny(),
            cost: CostModel::default(),
            warps_per_block: 4,
            ..Default::default()
        }
    }

    /// Same context with an enabled profiling registry.
    pub fn with_profiling(mut self) -> GpuContext {
        self.registry = Arc::new(simprof::Registry::new());
        self
    }

    /// Same context with a fault-injection plan. Inactive plans (all rates
    /// zero) are dropped so the fault-free fast path stays in force.
    pub fn with_faults(mut self, plan: FaultPlan) -> GpuContext {
        self.faults = plan.is_active().then_some(plan);
        self
    }

    /// Same context drawing allocations from `memory`.
    pub fn with_memory(mut self, memory: Arc<DeviceMemory>) -> GpuContext {
        self.memory = memory;
        self
    }

    /// Same context emitting structured events through `telemetry`.
    pub fn with_events(mut self, telemetry: Arc<simprof::Telemetry>) -> GpuContext {
        self.telemetry = telemetry;
        self
    }

    /// Same context recording the sampled L2 address stream of every
    /// *canonical* simulation (plan captures and replayed sims — not the
    /// throwaway tiling estimates) into `recorder`.
    pub fn with_memtrace(mut self, recorder: Arc<MemTraceRecorder>) -> GpuContext {
        self.memtrace = Some(recorder);
        self
    }

    /// The observability hooks canonical (sequential) simulation sites
    /// pass to [`simulate_instrumented`]. Parallel estimate sites (tile
    /// sizing, shard fitting) must NOT use this: event order would become
    /// scheduling-dependent.
    pub(crate) fn instruments(&self) -> SimInstruments<'_> {
        SimInstruments {
            telemetry: Some(&self.telemetry),
            trace: self.memtrace.as_deref(),
        }
    }

    /// Whether launches through this context collect profiles.
    pub fn profiling(&self) -> bool {
        self.registry.enabled()
    }

    /// The active *execution*-fault plan (bit flips, aborts, stragglers),
    /// if any. Plans carrying only memory faults (`oom`/`frag`) return
    /// `None` here: they refuse allocations but never perturb kernel
    /// output or timing, so the bit-exact fault-free paths stay in force.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| p.has_exec_faults())
    }

    /// The active *memory*-fault plan (allocation failures,
    /// fragmentation), if any — consumed by [`DeviceMemory::try_lease`]
    /// on the out-of-core path.
    pub fn mem_fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| p.has_mem_faults())
    }

    /// The active *device*-fault plan (whole-device losses), if any —
    /// consumed by the sharded engine when it decides which devices of a
    /// grid die and get re-sharded around. Device losses never perturb
    /// committed values (the surviving fold is bit-identical to a clean
    /// run on the survivors), so they activate neither the ABFT nor the
    /// OOM machinery.
    pub fn device_fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| p.has_device_faults())
    }

    /// The active *link*-fault plan (interconnect degradation/loss), if
    /// any — consumed by the sharded engine when it prices the ring
    /// all-reduce. Link faults never perturb committed values: degraded
    /// links only stretch the modeled collective time, and a lost link
    /// drops the grid to the bit-exact single-device path.
    pub fn link_fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| p.has_link_faults())
    }

    /// The active *crash*-fault plan (mid-write checkpoint crashes), if
    /// any — consumed by the durable checkpoint store. Crash faults tear
    /// checkpoint files on disk and touch nothing else.
    pub fn crash_fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().filter(|p| p.has_crash_faults())
    }

    /// An ABFT sink for a kernel named `kernel` producing `rows` output
    /// rows. Active (checksumming + injecting) only when this context
    /// carries an active fault plan; otherwise a zero-cost pass-through.
    pub fn abft_sink(&self, kernel: &str, rows: usize) -> AbftSink {
        AbftSink::new(self.fault_plan().cloned(), kernel, rows)
    }

    /// Runs a launch through the simulator (metrics only).
    pub fn simulate(&self, launch: &KernelLaunch) -> SimResult {
        simulate(&self.device, &self.cost, launch)
    }

    /// Completes a kernel: simulates `launch`, records into the context's
    /// registry, and pairs the metrics with the computed output. The
    /// per-block [`SimProfile`] is kept only when profiling is enabled.
    pub fn finish(&self, y: Matrix, launch: &KernelLaunch) -> GpuRun {
        self.finish_abft(y, launch, AbftSink::inactive())
    }

    /// [`GpuContext::finish`] for kernels that routed their output commits
    /// through an [`AbftSink`]: flushes the sink's last pending fault into
    /// `y`, simulates under the fault plan (when active), and attaches the
    /// ABFT checksum data to the run. With no active plan this is exactly
    /// the historical `finish` path.
    pub fn finish_abft(&self, mut y: Matrix, launch: &KernelLaunch, mut sink: AbftSink) -> GpuRun {
        sink.flush(&mut y);
        let plan = self.fault_plan();
        let (sim, profile) = simulate_instrumented(
            &self.device,
            &self.cost,
            launch,
            &self.registry,
            plan,
            self.instruments(),
        );
        // Faulted runs always keep the profile: the injected-fault ledger
        // lives there and resilience reporting needs it.
        let keep = plan.is_some() || self.profiling();
        GpuRun {
            y,
            sim,
            profile: keep.then_some(profile),
            abft: if plan.is_some() {
                sink.into_data()
            } else {
                None
            },
        }
    }
}

/// A kernel's outcome: the (real) MTTKRP output and the simulation metrics.
#[derive(Debug, Clone)]
pub struct GpuRun {
    pub y: Matrix,
    pub sim: SimResult,
    /// Per-block/per-SM attribution; `Some` when the context was profiling
    /// (see [`GpuContext::with_profiling`]) or carried an active fault plan.
    pub profile: Option<SimProfile>,
    /// ABFT checksums and injection ground truth; `Some` only when the
    /// context carried an active fault plan.
    pub abft: Option<AbftData>,
}

/// ABFT column-checksum record of one kernel execution, plus the injection
/// ground truth needed to *measure* detection (never consulted by
/// detection itself — [`crate::abft::verify`] sees only `check`/`abs`).
#[derive(Debug, Clone)]
pub struct AbftData {
    /// Kernel (launch) name the checksums belong to.
    pub kernel: String,
    /// Per output row: the `f64` sum of every committed contribution
    /// across all columns — what `Σ_c Y[i,c]` must equal up to `f32`
    /// rounding.
    pub check: Vec<f64>,
    /// Per output row: the `f64` sum of absolute contribution values,
    /// the scale against which the detection tolerance is set.
    pub abs: Vec<f64>,
    /// Ground truth: rows whose committed accumulation was corrupted by an
    /// injected flip (sorted, deduplicated).
    pub corrupted_rows: Vec<u32>,
    /// Number of bit flips actually applied to data (a drawn flip lands
    /// only if its block commits at least one contribution).
    pub flips_applied: u64,
}

/// A fault latched onto one block's accumulation: the block's running
/// partial for one `(row, col)` cell, corrupted at block retirement.
#[derive(Debug, Clone, Copy)]
struct InflightFlip {
    row: usize,
    col: usize,
    bit: u32,
    /// The block's accumulated (true) contribution to `y[row][col]`.
    partial: f32,
}

/// Routes every kernel output commit, maintaining ABFT column checksums
/// and applying the fault plan's bit flips to per-block accumulations.
///
/// Kernels call [`AbftSink::begin_block`] when they start emitting a
/// thread block and [`AbftSink::contribute`] instead of a bare
/// `axpy_into(y.row_mut(i), ..)` at every output commit. An inactive sink
/// (no fault plan) reduces each call to exactly the historical `axpy_into`
/// — the fault-free path stays bit-for-bit identical.
///
/// A drawn [`BitFlip`] corrupts the *block's accumulated partial* for one
/// output cell (the first cell the block commits to): the flip is modeled
/// as hitting the block's accumulator register before write-back, so the
/// injected error scales with the block's whole contribution — the
/// "bit flips in per-block accumulation" fault class.
#[derive(Debug)]
pub struct AbftSink {
    plan: Option<FaultPlan>,
    kernel: String,
    check: Vec<f64>,
    abs: Vec<f64>,
    /// Flip drawn for the current block, not yet latched to a cell.
    pending: Option<BitFlip>,
    /// Flip latched to a cell, accumulating the block's partial.
    inflight: Option<InflightFlip>,
    corrupted_rows: Vec<u32>,
    flips_applied: u64,
}

impl AbftSink {
    /// A permanently inactive sink (pure pass-through).
    pub fn inactive() -> AbftSink {
        AbftSink::new(None, "", 0)
    }

    fn new(plan: Option<FaultPlan>, kernel: &str, rows: usize) -> AbftSink {
        let n = if plan.is_some() { rows } else { 0 };
        AbftSink {
            plan,
            kernel: kernel.to_string(),
            check: vec![0.0; n],
            abs: vec![0.0; n],
            pending: None,
            inflight: None,
            corrupted_rows: Vec::new(),
            flips_applied: 0,
        }
    }

    /// Whether this sink checksums and injects (i.e. a fault plan is set).
    #[inline]
    pub fn active(&self) -> bool {
        self.plan.is_some()
    }

    /// Marks the start of thread block `block` (index in launch emission
    /// order, which matches the scheduler's block order): retires the
    /// previous block — applying its latched flip, if any — and draws this
    /// block's flip from the plan.
    #[inline]
    pub fn begin_block(&mut self, y: &mut Matrix, block: usize) {
        if let Some(plan) = &self.plan {
            let flip = plan.block_bitflip(&self.kernel, block);
            self.flush(y);
            self.pending = flip;
        }
    }

    /// Commits one output contribution: `y[i] += acc`, recording the `f64`
    /// checksum and latching/accumulating the block's fault partial.
    #[inline]
    pub fn contribute(&mut self, y: &mut Matrix, i: usize, acc: &[f32]) {
        if self.plan.is_none() {
            axpy_into(y.row_mut(i), 1.0, acc);
            return;
        }
        let (mut sum, mut abs) = (0.0f64, 0.0f64);
        for &a in acc {
            sum += f64::from(a);
            abs += f64::from(a).abs();
        }
        self.check[i] += sum;
        self.abs[i] += abs;
        axpy_into(y.row_mut(i), 1.0, acc);
        if let Some(flip) = self.pending {
            let col = flip.lane as usize % acc.len().max(1);
            match &mut self.inflight {
                // Latch the flip onto the block's first committed cell.
                None => {
                    self.inflight = Some(InflightFlip {
                        row: i,
                        col,
                        bit: flip.bit,
                        partial: acc[col],
                    })
                }
                // Same cell again: the block's partial keeps accumulating.
                Some(fl) if fl.row == i => fl.partial += acc[col],
                // Block moved to another row: the latched cell is final.
                Some(_) => {}
            }
        }
    }

    /// Retires the in-flight block: replaces its latched cell's true
    /// partial with the bit-flipped partial (`y[r][c] += flip(p) − p`).
    pub(crate) fn flush(&mut self, y: &mut Matrix) {
        self.pending = None;
        if let Some(fl) = self.inflight.take() {
            let corrupted = f32::from_bits(fl.partial.to_bits() ^ (1u32 << fl.bit));
            y.row_mut(fl.row)[fl.col] += corrupted - fl.partial;
            self.flips_applied += 1;
            self.corrupted_rows.push(fl.row as u32);
        }
    }

    /// The finished checksum record (`None` for inactive sinks). Callers
    /// must have flushed the final block first (`finish_abft` and
    /// [`crate::gpu::plan::Plan::execute`] do).
    pub(crate) fn into_data(mut self) -> Option<AbftData> {
        self.plan.as_ref()?;
        self.corrupted_rows.sort_unstable();
        self.corrupted_rows.dedup();
        Some(AbftData {
            kernel: self.kernel,
            check: self.check,
            abs: self.abs,
            corrupted_rows: self.corrupted_rows,
            flips_applied: self.flips_applied,
        })
    }
}

/// Synthetic device addresses of the factor matrices and the output.
#[derive(Debug, Clone)]
pub struct FactorAddrs {
    /// One span per mode (the output mode's span doubles as `Y`'s input-
    /// factor slot and is unused).
    pub factors: Vec<ArraySpan>,
    /// Output matrix `Y` (`dims[mode] × R`).
    pub y: ArraySpan,
    /// Bytes per factor/output row (`R × 4`).
    pub row_bytes: u64,
    /// Warp-wide instructions per row operation: `ceil(R / 32)`.
    pub rank_steps: u32,
}

impl FactorAddrs {
    /// Reserves address space for all factors and the mode-`mode` output.
    ///
    /// Sizes are computed with saturating arithmetic: a `dims × rank`
    /// product that overflows u64 yields a span of `u64::MAX` bytes,
    /// which no [`DeviceMemory`] capacity can satisfy — the overflow
    /// surfaces as a typed OOM instead of a silent wrap.
    pub fn layout(space: &mut AddressSpace, dims: &[Index], r: usize, mode: usize) -> FactorAddrs {
        let row_bytes = (r as u64).saturating_mul(4);
        let factors = dims
            .iter()
            .map(|&d| space.alloc(u64::from(d).saturating_mul(row_bytes)))
            .collect();
        let y = space.alloc(u64::from(dims[mode]).saturating_mul(row_bytes));
        FactorAddrs {
            factors,
            y,
            row_bytes,
            rank_steps: (r as u32).div_ceil(32),
        }
    }

    /// Emits the coalesced load of one factor row.
    #[inline]
    pub fn load_row(&self, w: &mut WarpWork, mode: usize, row: usize) {
        w.load_span(self.factors[mode].row(row, self.row_bytes), self.row_bytes);
    }

    /// Emits a plain store of output row `i`.
    #[inline]
    pub fn store_y(&self, w: &mut WarpWork, i: usize) {
        w.store_span(self.y.row(i, self.row_bytes), self.row_bytes);
    }

    /// Emits an atomic accumulate into output row `i`.
    #[inline]
    pub fn atomic_y(&self, w: &mut WarpWork, i: usize) {
        w.atomic_span(i as u32, self.y.row(i, self.row_bytes), self.row_bytes);
    }
}

/// Emits the coalesced load of `count` consecutive `u32` entries starting
/// at element `start` of `span` (index/pointer array streaming).
#[inline]
pub fn load_u32s(w: &mut WarpWork, span: ArraySpan, start: usize, count: usize) {
    if count > 0 {
        w.load_span(span.elem(start, 4), (count as u64).saturating_mul(4));
    }
}

/// Semantic helper: `acc[c] (op)= v * row[c]` for the two accumulation
/// patterns kernels need.
#[inline]
pub fn axpy_into(acc: &mut [f32], v: f32, row: &[f32]) {
    for (a, &f) in acc.iter_mut().zip(row) {
        *a += v * f;
    }
}

/// Semantic helper: `acc[c] *= row[c]`.
#[inline]
pub fn scale_by(acc: &mut [f32], row: &[f32]) {
    for (a, &f) in acc.iter_mut().zip(row) {
        *a *= f;
    }
}

/// [`axpy_into`] with a compile-time rank: the same per-lane
/// `acc[c] += v * row[c]` sequence, but with the trip count known to the
/// compiler so the loop fully unrolls and vectorizes. `row` must hold at
/// least `R` elements (factor rows of a rank-`R` plan hold exactly `R`).
/// Per lane the f32 operation is identical to the generic helper, so the
/// result is bit-for-bit the same.
#[inline]
pub(crate) fn axpy_into_fixed<const R: usize>(acc: &mut [f32; R], v: f32, row: &[f32]) {
    let row: &[f32; R] = row[..R].try_into().expect("row shorter than rank R");
    for c in 0..R {
        acc[c] += v * row[c];
    }
}

/// [`scale_by`] with a compile-time rank (see [`axpy_into_fixed`]).
#[inline]
pub(crate) fn scale_by_fixed<const R: usize>(acc: &mut [f32; R], row: &[f32]) {
    let row: &[f32; R] = row[..R].try_into().expect("row shorter than rank R");
    for c in 0..R {
        acc[c] *= row[c];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Op;

    #[test]
    fn layout_is_disjoint_and_rank_steps_correct() {
        let mut space = AddressSpace::new();
        let fa = FactorAddrs::layout(&mut space, &[10, 20, 30], 32, 0);
        assert_eq!(fa.factors.len(), 3);
        assert_eq!(fa.row_bytes, 128);
        assert_eq!(fa.rank_steps, 1);
        // Factor spans do not overlap.
        assert!(fa.factors[0].base + 10 * 128 <= fa.factors[1].base);
        assert!(fa.factors[1].base + 20 * 128 <= fa.factors[2].base);
        assert!(fa.factors[2].base + 30 * 128 <= fa.y.base);

        let fa64 = FactorAddrs::layout(&mut AddressSpace::new(), &[4, 4, 4], 64, 0);
        assert_eq!(fa64.rank_steps, 2);
        assert_eq!(fa64.row_bytes, 256);
    }

    #[test]
    fn row_ops_emit_expected_segments() {
        let mut space = AddressSpace::new();
        let fa = FactorAddrs::layout(&mut space, &[10, 10, 10], 32, 0);
        let mut w = WarpWork::new();
        fa.load_row(&mut w, 1, 3);
        assert_eq!(w.ops.len(), 1); // 128-B row = 1 segment
        fa.store_y(&mut w, 2);
        fa.atomic_y(&mut w, 2);
        assert_eq!(w.ops.len(), 3);
        match w.ops[2] {
            Op::AtomicAdd { row, .. } => assert_eq!(row, 2),
            ref other => panic!("expected atomic, got {other:?}"),
        }
    }

    #[test]
    fn profiling_context_yields_profiles_and_counters() {
        use crate::gpu::{AnyFormat, BuildOptions, Executor, KernelKind, LaunchArgs};
        use sptensor::synth::uniform_random;

        let t = uniform_random(&[10, 12, 14], 400, 17);
        let factors = crate::reference::random_factors(&t, 8, 18);
        let coo = AnyFormat::build(KernelKind::Coo, &t, 0, &BuildOptions::default()).unwrap();

        let plain_ctx = GpuContext::tiny();
        let plain = Executor::new(plain_ctx.clone())
            .run(&coo, &LaunchArgs::new(&factors))
            .unwrap()
            .run;
        assert!(plain.profile.is_none(), "profiling off by default");
        assert!(plain_ctx.registry.counters().is_empty());

        let ctx = GpuContext::tiny().with_profiling();
        let run = Executor::new(ctx.clone())
            .run(&coo, &LaunchArgs::new(&factors))
            .unwrap()
            .run;
        assert_eq!(plain.sim, run.sim, "profiling must not perturb metrics");
        let profile = run.profile.expect("profiling context keeps the profile");
        assert_eq!(profile.blocks.len(), run.sim.num_blocks);
        assert_eq!(ctx.registry.counter("sim.launches"), 1);
        assert_eq!(
            ctx.registry.counter("sim.blocks"),
            run.sim.num_blocks as u64
        );
        assert_eq!(ctx.registry.spans().len(), 1);
    }

    #[test]
    fn u32_loads_coalesce() {
        let mut space = AddressSpace::new();
        let span = space.alloc_elems(1000, 4);
        let mut w = WarpWork::new();
        load_u32s(&mut w, span, 0, 32); // 128 B = 1 segment
        assert_eq!(w.ops.len(), 1);
        load_u32s(&mut w, span, 31, 2); // straddles a boundary
        assert_eq!(w.ops.len(), 3);
        load_u32s(&mut w, span, 0, 0);
        assert_eq!(w.ops.len(), 3);
    }
}
