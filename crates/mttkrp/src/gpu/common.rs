//! Shared machinery for the simulated GPU kernels: context, address
//! layout, and the lane-layout conventions every kernel follows.
//!
//! **Lane layout.** All structured kernels put the rank dimension across
//! the 32 lanes of a warp (lane `l` owns rank elements `l, l+32, …`), the
//! standard layout for MTTKRP with `R ≥ 32`: a factor-row access is then a
//! fully coalesced load of `ceil(R/32)` segments and a per-nonzero
//! multiply-accumulate is `ceil(R/32)` warp-wide FMA instructions.

use dense::Matrix;
use gpu_sim::{simulate, AddressSpace, ArraySpan, CostModel, DeviceProfile, KernelLaunch, SimResult, WarpWork};
use sptensor::Index;

/// Device + cost-model bundle passed to every GPU kernel.
#[derive(Debug, Clone)]
pub struct GpuContext {
    pub device: DeviceProfile,
    pub cost: CostModel,
    /// Warps per thread block for the structured kernels (paper: 512
    /// threads = 16 warps).
    pub warps_per_block: usize,
}

impl Default for GpuContext {
    fn default() -> Self {
        GpuContext {
            device: DeviceProfile::p100(),
            cost: CostModel::default(),
            warps_per_block: 16,
        }
    }
}

impl GpuContext {
    /// A small-device context for fast unit tests.
    pub fn tiny() -> GpuContext {
        GpuContext {
            device: DeviceProfile::tiny(),
            cost: CostModel::default(),
            warps_per_block: 4,
        }
    }

    /// Runs a launch through the simulator.
    pub fn simulate(&self, launch: &KernelLaunch) -> SimResult {
        simulate(&self.device, &self.cost, launch)
    }
}

/// A kernel's outcome: the (real) MTTKRP output and the simulation metrics.
#[derive(Debug, Clone)]
pub struct GpuRun {
    pub y: Matrix,
    pub sim: SimResult,
}

/// Synthetic device addresses of the factor matrices and the output.
#[derive(Debug, Clone)]
pub struct FactorAddrs {
    /// One span per mode (the output mode's span doubles as `Y`'s input-
    /// factor slot and is unused).
    pub factors: Vec<ArraySpan>,
    /// Output matrix `Y` (`dims[mode] × R`).
    pub y: ArraySpan,
    /// Bytes per factor/output row (`R × 4`).
    pub row_bytes: u64,
    /// Warp-wide instructions per row operation: `ceil(R / 32)`.
    pub rank_steps: u32,
}

impl FactorAddrs {
    /// Reserves address space for all factors and the mode-`mode` output.
    pub fn layout(space: &mut AddressSpace, dims: &[Index], r: usize, mode: usize) -> FactorAddrs {
        let row_bytes = r as u64 * 4;
        let factors = dims
            .iter()
            .map(|&d| space.alloc(d as u64 * row_bytes))
            .collect();
        let y = space.alloc(dims[mode] as u64 * row_bytes);
        FactorAddrs {
            factors,
            y,
            row_bytes,
            rank_steps: (r as u32).div_ceil(32),
        }
    }

    /// Emits the coalesced load of one factor row.
    #[inline]
    pub fn load_row(&self, w: &mut WarpWork, mode: usize, row: usize) {
        w.load_span(self.factors[mode].row(row, self.row_bytes), self.row_bytes);
    }

    /// Emits a plain store of output row `i`.
    #[inline]
    pub fn store_y(&self, w: &mut WarpWork, i: usize) {
        w.store_span(self.y.row(i, self.row_bytes), self.row_bytes);
    }

    /// Emits an atomic accumulate into output row `i`.
    #[inline]
    pub fn atomic_y(&self, w: &mut WarpWork, i: usize) {
        w.atomic_span(i as u32, self.y.row(i, self.row_bytes), self.row_bytes);
    }
}

/// Emits the coalesced load of `count` consecutive `u32` entries starting
/// at element `start` of `span` (index/pointer array streaming).
#[inline]
pub fn load_u32s(w: &mut WarpWork, span: ArraySpan, start: usize, count: usize) {
    if count > 0 {
        w.load_span(span.elem(start, 4), count as u64 * 4);
    }
}

/// Semantic helper: `acc[c] (op)= v * row[c]` for the two accumulation
/// patterns kernels need.
#[inline]
pub fn axpy_into(acc: &mut [f32], v: f32, row: &[f32]) {
    for (a, &f) in acc.iter_mut().zip(row) {
        *a += v * f;
    }
}

/// Semantic helper: `acc[c] *= row[c]`.
#[inline]
pub fn scale_by(acc: &mut [f32], row: &[f32]) {
    for (a, &f) in acc.iter_mut().zip(row) {
        *a *= f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Op;

    #[test]
    fn layout_is_disjoint_and_rank_steps_correct() {
        let mut space = AddressSpace::new();
        let fa = FactorAddrs::layout(&mut space, &[10, 20, 30], 32, 0);
        assert_eq!(fa.factors.len(), 3);
        assert_eq!(fa.row_bytes, 128);
        assert_eq!(fa.rank_steps, 1);
        // Factor spans do not overlap.
        assert!(fa.factors[0].base + 10 * 128 <= fa.factors[1].base);
        assert!(fa.factors[1].base + 20 * 128 <= fa.factors[2].base);
        assert!(fa.factors[2].base + 30 * 128 <= fa.y.base);

        let fa64 = FactorAddrs::layout(&mut AddressSpace::new(), &[4, 4, 4], 64, 0);
        assert_eq!(fa64.rank_steps, 2);
        assert_eq!(fa64.row_bytes, 256);
    }

    #[test]
    fn row_ops_emit_expected_segments() {
        let mut space = AddressSpace::new();
        let fa = FactorAddrs::layout(&mut space, &[10, 10, 10], 32, 0);
        let mut w = WarpWork::new();
        fa.load_row(&mut w, 1, 3);
        assert_eq!(w.ops.len(), 1); // 128-B row = 1 segment
        fa.store_y(&mut w, 2);
        fa.atomic_y(&mut w, 2);
        assert_eq!(w.ops.len(), 3);
        match w.ops[2] {
            Op::AtomicAdd { row, .. } => assert_eq!(row, 2),
            ref other => panic!("expected atomic, got {other:?}"),
        }
    }

    #[test]
    fn u32_loads_coalesce() {
        let mut space = AddressSpace::new();
        let span = space.alloc_elems(1000, 4);
        let mut w = WarpWork::new();
        load_u32s(&mut w, span, 0, 32); // 128 B = 1 segment
        assert_eq!(w.ops.len(), 1);
        load_u32s(&mut w, span, 31, 2); // straddles a boundary
        assert_eq!(w.ops.len(), 3);
        load_u32s(&mut w, span, 0, 0);
        assert_eq!(w.ops.len(), 3);
    }
}
