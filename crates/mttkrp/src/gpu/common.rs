//! Shared machinery for the simulated GPU kernels: context, address
//! layout, and the lane-layout conventions every kernel follows.
//!
//! **Lane layout.** All structured kernels put the rank dimension across
//! the 32 lanes of a warp (lane `l` owns rank elements `l, l+32, …`), the
//! standard layout for MTTKRP with `R ≥ 32`: a factor-row access is then a
//! fully coalesced load of `ceil(R/32)` segments and a per-nonzero
//! multiply-accumulate is `ceil(R/32)` warp-wide FMA instructions.

use std::sync::Arc;

use dense::Matrix;
use gpu_sim::{
    simulate, simulate_profiled, AddressSpace, ArraySpan, CostModel, DeviceProfile, KernelLaunch,
    SimProfile, SimResult, WarpWork,
};
use sptensor::Index;

/// Device + cost-model bundle passed to every GPU kernel, plus the
/// profiling sink every launch records into.
#[derive(Debug, Clone)]
pub struct GpuContext {
    pub device: DeviceProfile,
    pub cost: CostModel,
    /// Warps per thread block for the structured kernels (paper: 512
    /// threads = 16 warps).
    pub warps_per_block: usize,
    /// Profiling sink. Disabled by default: every recording call then
    /// costs one relaxed atomic load. Enable via [`GpuContext::with_profiling`]
    /// to collect per-launch counters/spans and per-block [`SimProfile`]s.
    pub registry: Arc<simprof::Registry>,
}

impl Default for GpuContext {
    fn default() -> Self {
        GpuContext {
            device: DeviceProfile::p100(),
            cost: CostModel::default(),
            warps_per_block: 16,
            registry: Arc::new(simprof::Registry::disabled()),
        }
    }
}

impl GpuContext {
    /// A small-device context for fast unit tests.
    pub fn tiny() -> GpuContext {
        GpuContext {
            device: DeviceProfile::tiny(),
            cost: CostModel::default(),
            warps_per_block: 4,
            ..Default::default()
        }
    }

    /// Same context with an enabled profiling registry.
    pub fn with_profiling(mut self) -> GpuContext {
        self.registry = Arc::new(simprof::Registry::new());
        self
    }

    /// Whether launches through this context collect profiles.
    pub fn profiling(&self) -> bool {
        self.registry.enabled()
    }

    /// Runs a launch through the simulator (metrics only).
    pub fn simulate(&self, launch: &KernelLaunch) -> SimResult {
        simulate(&self.device, &self.cost, launch)
    }

    /// Completes a kernel: simulates `launch`, records into the context's
    /// registry, and pairs the metrics with the computed output. The
    /// per-block [`SimProfile`] is kept only when profiling is enabled.
    pub fn finish(&self, y: Matrix, launch: &KernelLaunch) -> GpuRun {
        let (sim, profile) = simulate_profiled(&self.device, &self.cost, launch, &self.registry);
        let profile = self.profiling().then_some(profile);
        GpuRun { y, sim, profile }
    }
}

/// A kernel's outcome: the (real) MTTKRP output and the simulation metrics.
#[derive(Debug, Clone)]
pub struct GpuRun {
    pub y: Matrix,
    pub sim: SimResult,
    /// Per-block/per-SM attribution; `Some` only when the context was
    /// profiling (see [`GpuContext::with_profiling`]).
    pub profile: Option<SimProfile>,
}

/// Synthetic device addresses of the factor matrices and the output.
#[derive(Debug, Clone)]
pub struct FactorAddrs {
    /// One span per mode (the output mode's span doubles as `Y`'s input-
    /// factor slot and is unused).
    pub factors: Vec<ArraySpan>,
    /// Output matrix `Y` (`dims[mode] × R`).
    pub y: ArraySpan,
    /// Bytes per factor/output row (`R × 4`).
    pub row_bytes: u64,
    /// Warp-wide instructions per row operation: `ceil(R / 32)`.
    pub rank_steps: u32,
}

impl FactorAddrs {
    /// Reserves address space for all factors and the mode-`mode` output.
    pub fn layout(space: &mut AddressSpace, dims: &[Index], r: usize, mode: usize) -> FactorAddrs {
        let row_bytes = r as u64 * 4;
        let factors = dims
            .iter()
            .map(|&d| space.alloc(d as u64 * row_bytes))
            .collect();
        let y = space.alloc(dims[mode] as u64 * row_bytes);
        FactorAddrs {
            factors,
            y,
            row_bytes,
            rank_steps: (r as u32).div_ceil(32),
        }
    }

    /// Emits the coalesced load of one factor row.
    #[inline]
    pub fn load_row(&self, w: &mut WarpWork, mode: usize, row: usize) {
        w.load_span(self.factors[mode].row(row, self.row_bytes), self.row_bytes);
    }

    /// Emits a plain store of output row `i`.
    #[inline]
    pub fn store_y(&self, w: &mut WarpWork, i: usize) {
        w.store_span(self.y.row(i, self.row_bytes), self.row_bytes);
    }

    /// Emits an atomic accumulate into output row `i`.
    #[inline]
    pub fn atomic_y(&self, w: &mut WarpWork, i: usize) {
        w.atomic_span(i as u32, self.y.row(i, self.row_bytes), self.row_bytes);
    }
}

/// Emits the coalesced load of `count` consecutive `u32` entries starting
/// at element `start` of `span` (index/pointer array streaming).
#[inline]
pub fn load_u32s(w: &mut WarpWork, span: ArraySpan, start: usize, count: usize) {
    if count > 0 {
        w.load_span(span.elem(start, 4), count as u64 * 4);
    }
}

/// Semantic helper: `acc[c] (op)= v * row[c]` for the two accumulation
/// patterns kernels need.
#[inline]
pub fn axpy_into(acc: &mut [f32], v: f32, row: &[f32]) {
    for (a, &f) in acc.iter_mut().zip(row) {
        *a += v * f;
    }
}

/// Semantic helper: `acc[c] *= row[c]`.
#[inline]
pub fn scale_by(acc: &mut [f32], row: &[f32]) {
    for (a, &f) in acc.iter_mut().zip(row) {
        *a *= f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Op;

    #[test]
    fn layout_is_disjoint_and_rank_steps_correct() {
        let mut space = AddressSpace::new();
        let fa = FactorAddrs::layout(&mut space, &[10, 20, 30], 32, 0);
        assert_eq!(fa.factors.len(), 3);
        assert_eq!(fa.row_bytes, 128);
        assert_eq!(fa.rank_steps, 1);
        // Factor spans do not overlap.
        assert!(fa.factors[0].base + 10 * 128 <= fa.factors[1].base);
        assert!(fa.factors[1].base + 20 * 128 <= fa.factors[2].base);
        assert!(fa.factors[2].base + 30 * 128 <= fa.y.base);

        let fa64 = FactorAddrs::layout(&mut AddressSpace::new(), &[4, 4, 4], 64, 0);
        assert_eq!(fa64.rank_steps, 2);
        assert_eq!(fa64.row_bytes, 256);
    }

    #[test]
    fn row_ops_emit_expected_segments() {
        let mut space = AddressSpace::new();
        let fa = FactorAddrs::layout(&mut space, &[10, 10, 10], 32, 0);
        let mut w = WarpWork::new();
        fa.load_row(&mut w, 1, 3);
        assert_eq!(w.ops.len(), 1); // 128-B row = 1 segment
        fa.store_y(&mut w, 2);
        fa.atomic_y(&mut w, 2);
        assert_eq!(w.ops.len(), 3);
        match w.ops[2] {
            Op::AtomicAdd { row, .. } => assert_eq!(row, 2),
            ref other => panic!("expected atomic, got {other:?}"),
        }
    }

    #[test]
    fn profiling_context_yields_profiles_and_counters() {
        use sptensor::synth::uniform_random;

        let t = uniform_random(&[10, 12, 14], 400, 17);
        let factors = crate::reference::random_factors(&t, 8, 18);

        let plain_ctx = GpuContext::tiny();
        let plain = crate::gpu::parti_coo::run(&plain_ctx, &t, &factors, 0);
        assert!(plain.profile.is_none(), "profiling off by default");
        assert!(plain_ctx.registry.counters().is_empty());

        let ctx = GpuContext::tiny().with_profiling();
        let run = crate::gpu::parti_coo::run(&ctx, &t, &factors, 0);
        assert_eq!(plain.sim, run.sim, "profiling must not perturb metrics");
        let profile = run.profile.expect("profiling context keeps the profile");
        assert_eq!(profile.blocks.len(), run.sim.num_blocks);
        assert_eq!(ctx.registry.counter("sim.launches"), 1);
        assert_eq!(
            ctx.registry.counter("sim.blocks"),
            run.sim.num_blocks as u64
        );
        assert_eq!(ctx.registry.spans().len(), 1);
    }

    #[test]
    fn u32_loads_coalesce() {
        let mut space = AddressSpace::new();
        let span = space.alloc_elems(1000, 4);
        let mut w = WarpWork::new();
        load_u32s(&mut w, span, 0, 32); // 128 B = 1 segment
        assert_eq!(w.ops.len(), 1);
        load_u32s(&mut w, span, 31, 2); // straddles a boundary
        assert_eq!(w.ops.len(), 3);
        load_u32s(&mut w, span, 0, 0);
        assert_eq!(w.ops.len(), 3);
    }
}
