//! F-COO GPU MTTKRP — the segmented-scan baseline of Liu et al.
//!
//! Work mapping (per the F-COO paper): each thread owns `threadlen`
//! *consecutive* nonzeros; a warp therefore covers `32 × threadlen`
//! nonzeros but reads the index/value arrays with a `threadlen`-strided
//! pattern (lane `l` starts at `base + l·threadlen`) — less coalesced than
//! the chunked kernels, which the emission reproduces faithfully. Partial
//! products are combined by a warp segmented scan keyed on the bit flags;
//! interior output rows are stored directly, while first/last (possibly
//! warp-spanning) rows spill R-wide partials to global memory for a second
//! reduction pass — F-COO's two-kernel structure.
//!
//! The lane-per-nonzero layout has a second cost the rank-on-lanes kernels
//! avoid: each thread's sequential rank loop fetches its factor rows as
//! per-lane float4 transactions (8 per 32-float row) instead of one
//! coalesced segment. The emission charges these as [`Op::Replay`]
//! transactions; this is the documented model behind Fig. 15's 3-4×
//! HB-CSF advantage (see EXPERIMENTS.md).
//!
//! Third-order only, like the real framework (missing 4-D bars in Fig. 15).

use gpu_sim::{AddressSpace, ArraySpan, BlockWork, Op, WarpWork};
use tensor_formats::Fcoo;

use super::common::{FactorAddrs, GpuContext};
use super::plan::{MemoryFootprint, Plan, PlanBuilder};

/// Default per-thread chunk length (the framework's tuning sweet spot in
/// our packing; the paper tunes over {8, 16, 32, 64}).
pub const DEFAULT_THREADLEN: usize = 8;

/// Captures the F-COO kernel (both passes) as a replayable [`Plan`];
/// output mode is `fcoo.perm[0]`. The capture body behind [`Fcoo`]'s
/// `MttkrpKernel` impl.
///
/// # Panics
/// If the tensor is not third-order.
pub(crate) fn plan_impl(ctx: &GpuContext, fcoo: &Fcoo, rank: usize) -> Plan {
    assert_eq!(
        fcoo.order(),
        3,
        "F-COO supports only third-order tensors (paper Fig. 15)"
    );
    let r = rank;
    let mode = fcoo.perm[0];
    let mut space = AddressSpace::new();
    let fa = FactorAddrs::layout(&mut space, &fcoo.dims, r, mode);
    let coord_spans: Vec<ArraySpan> = fcoo
        .coord
        .iter()
        .map(|a| space.alloc_elems(a.len(), 4))
        .collect();
    let vals_span = space.alloc_elems(fcoo.vals.len(), 4);
    let flag_span = space.alloc(2 * (fcoo.nnz() as u64).div_ceil(8));
    // Per-warp boundary-partial spill buffer (two R-wide rows per warp):
    // F-COO's first pass cannot commit its first/last segments because a
    // slice can span warps, so they go to global memory and a second
    // reduction pass folds them into Y.
    let warp_span_len = 32 * fcoo.threadlen;
    let num_warps = fcoo.nnz().div_ceil(warp_span_len.max(1));
    let partials_span = space.alloc(
        (num_warps as u64)
            .saturating_mul(r as u64)
            .saturating_mul(2 * 4),
    );

    let tl = fcoo.threadlen;
    let warp_span = 32 * tl;

    let mut pb = PlanBuilder::new("f-coo-gpu", mode, rank, fcoo.dims[mode] as usize);
    pb.set_footprint(MemoryFootprint::from_layout(&space, &fa));
    let mut warp_base = 0usize;
    let mut boundary_rows: Vec<u32> = Vec::new();
    'outer: loop {
        pb.begin_block();
        let mut block = BlockWork::new();
        for _ in 0..ctx.warps_per_block {
            if warp_base >= fcoo.nnz() {
                if !block.warps.is_empty() {
                    pb.launch.blocks.push(block);
                }
                break 'outer;
            }
            let warp_end = (warp_base + warp_span).min(fcoo.nnz());
            let mut w = WarpWork::new();

            // Flag bits for the span (tiny, coalesced).
            w.load_span(
                flag_span.base + warp_base as u64 / 8,
                ((warp_end - warp_base) as u64).div_ceil(8),
            );

            // Strided index/value loads: one pass per of the `threadlen`
            // per-thread steps, lanes `threadlen` entries apart.
            for step in 0..tl {
                for span in coord_spans.iter().chain(std::iter::once(&vals_span)) {
                    emit_strided_step(&mut w, *span, warp_base, warp_end, tl, step);
                }
            }

            // Per nonzero: product-mode factor rows (uncoalesced across
            // lanes) and the sequential rank loop's FMAs per step.
            for step in 0..tl {
                let mut any = false;
                for lane in 0..32 {
                    let z = warp_base + lane * tl + step;
                    if z >= warp_end {
                        break;
                    }
                    any = true;
                    for (l, &pm) in fcoo.perm[1..].iter().enumerate() {
                        fa.load_row(&mut w, pm, fcoo.coord[l][z] as usize);
                        // Lane-per-nonzero layout: the thread's sequential
                        // rank loop re-fetches its row as per-lane float4
                        // transactions — 8 per 32-float row — instead of
                        // one coalesced segment. 7 replays per row per
                        // rank-step beyond the initial fetch.
                        w.push(Op::Replay(7 * fa.rank_steps));
                    }
                }
                if any {
                    w.push(Op::Fma(r as u32 * 2));
                }
            }

            // Warp segmented scan (log2(32) shuffle rounds per rank step).
            w.push(Op::Sync(5 * fa.rank_steps));

            // Semantic accumulation + commits. Interior output rows (fully
            // contained in this warp's span) are written directly; the
            // first and last rows may span warps, so their partials spill
            // to global memory for the second reduction pass.
            let first_chunk = warp_base / tl;
            let warp_id = warp_base / warp_span;
            let mut ordinal = fcoo.chunk_start_slice[first_chunk] as i64;
            if fcoo.slice_flag.get(warp_base) {
                ordinal -= 1; // flag at the base re-increments below
            }
            let first_ordinal = fcoo.chunk_start_slice[first_chunk] as i64;
            let last_ordinal = {
                // Ordinal of the row active at the last nonzero.
                let mut o = ordinal;
                for z in warp_base..warp_end {
                    if fcoo.slice_flag.get(z) {
                        o += 1;
                    }
                }
                o
            };
            let mut committed: i64 = -1;
            for z in warp_base..warp_end {
                if fcoo.slice_flag.get(z) {
                    ordinal += 1;
                }
                let i = fcoo.slice_ids[ordinal as usize] as usize;
                pb.contrib(i, fcoo.vals[z]);
                for (l, &pm) in fcoo.perm[1..].iter().enumerate() {
                    pb.chain(pm, fcoo.coord[l][z] as usize);
                }
                if ordinal != committed {
                    if ordinal == first_ordinal || ordinal == last_ordinal {
                        // Boundary partial: spill one R-wide row per end.
                        let slot = 2 * warp_id + usize::from(ordinal == last_ordinal);
                        let off = (slot as u64).saturating_mul(r as u64).saturating_mul(4);
                        w.store_span(partials_span.base + off, fa.row_bytes);
                        boundary_rows.push(i as u32);
                    } else {
                        fa.store_y(&mut w, i);
                    }
                    committed = ordinal;
                }
            }

            block.warps.push(w);
            warp_base = warp_end;
        }
        pb.launch.blocks.push(block);
    }

    // ---- Pass 2: global segmented reduction of the spilled boundary
    // partials (F-COO's second kernel): load each partial row, fold it
    // into Y atomically.
    // These reduction blocks commit no semantic contributions, so a flip
    // drawn for one of them lands in dead state — the realistic fate of a
    // flip hitting a block with no live accumulator.
    let mut idx = 0usize;
    while idx < boundary_rows.len() {
        pb.begin_block();
        let mut block = BlockWork::new();
        for _ in 0..ctx.warps_per_block {
            if idx >= boundary_rows.len() {
                break;
            }
            let end = (idx + 32).min(boundary_rows.len());
            let mut w = WarpWork::new();
            for (off, &row) in boundary_rows[idx..end].iter().enumerate() {
                let poff = ((idx + off) as u64)
                    .saturating_mul(r as u64)
                    .saturating_mul(4);
                w.load_span(partials_span.base + poff, fa.row_bytes);
                fa.atomic_y(&mut w, row as usize);
            }
            block.warps.push(w);
            idx = end;
        }
        pb.launch.blocks.push(block);
    }

    pb.finish()
}

/// Emits the segments touched when 32 lanes read 4-byte entries at
/// positions `base + lane·threadlen + step` (deduplicating within the
/// instruction, as the hardware coalescer would).
fn emit_strided_step(
    w: &mut WarpWork,
    span: ArraySpan,
    base: usize,
    end: usize,
    threadlen: usize,
    step: usize,
) {
    let mut prev = u64::MAX;
    for lane in 0..32 {
        let z = base + lane * threadlen + step;
        if z >= end {
            break;
        }
        let seg = span.elem(z, 4) / gpu_sim::grid::SEG_BYTES;
        if seg != prev {
            w.push(Op::Load(seg));
            prev = seg;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{
        AnyFormat, BuildOptions, Executor, GpuRun, KernelKind, LaunchArgs, LaunchError,
        MttkrpKernel,
    };
    use crate::reference;
    use dense::Matrix;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    fn build_and_run(
        ctx: &GpuContext,
        t: &sptensor::CooTensor,
        factors: &[Matrix],
        mode: usize,
        threadlen: usize,
    ) -> GpuRun {
        let opts = BuildOptions {
            fcoo_threadlen: threadlen,
            ..BuildOptions::default()
        };
        Executor::new(ctx.clone())
            .with_build(opts)
            .build_run(KernelKind::Fcoo, t, factors, mode)
            .unwrap()
            .run
    }

    #[test]
    fn matches_reference_all_modes_and_threadlens() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[18, 20, 22], 900, 91);
        let factors = reference::random_factors(&t, 8, 61);
        for mode in 0..3 {
            for tl in [1, 4, 8, 32] {
                let run = build_and_run(&ctx, &t, &factors, mode, tl);
                let seq = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&run.y, &seq),
                    "mode {mode} threadlen {tl} diff {}",
                    run.y.rel_fro_diff(&seq)
                );
            }
        }
    }

    #[test]
    fn rejects_4d() {
        // The unified builder turns the old panic into a typed error.
        let t = uniform_random(&[4, 4, 4, 4], 50, 92);
        assert!(matches!(
            AnyFormat::build(KernelKind::Fcoo, &t, 0, &BuildOptions::default()),
            Err(LaunchError::OrderUnsupported { order: 4, .. })
        ));
    }

    #[test]
    fn fewer_atomics_than_parti_on_long_slices() {
        let ctx = GpuContext::tiny();
        // Long slices: segmented scan folds most updates in-warp.
        let mut t = sptensor::CooTensor::new(vec![8, 400, 4]);
        for i in 0..8u32 {
            for j in 0..300u32 {
                t.push(&[i, j, (j % 4)], 1.0);
            }
        }
        let factors = reference::random_factors(&t, 8, 63);
        let f = build_and_run(&ctx, &t, &factors, 0, 8);
        let coo = AnyFormat::build(KernelKind::Coo, &t, 0, &BuildOptions::default()).unwrap();
        let p = Executor::new(ctx.clone())
            .run(&coo, &LaunchArgs::new(&factors))
            .unwrap()
            .run;
        assert_eq!(coo.kernel_name(), "parti-coo-gpu");
        assert!(crate::outputs_match(&f.y, &p.y));
        assert!(
            f.sim.atomic_ops * 4 < p.sim.atomic_ops,
            "fcoo {} vs parti {}",
            f.sim.atomic_ops,
            p.sim.atomic_ops
        );
    }

    #[test]
    fn correct_on_singleton_standin() {
        let ctx = GpuContext::tiny();
        let t = standin("fr_s").unwrap().generate(&SynthConfig::tiny());
        let factors = reference::random_factors(&t, 8, 64);
        let run = build_and_run(&ctx, &t, &factors, 0, DEFAULT_THREADLEN);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&run.y, &seq));
    }

    #[test]
    fn empty_tensor() {
        let ctx = GpuContext::tiny();
        let t = sptensor::CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 65);
        let run = build_and_run(&ctx, &t, &factors, 0, 8);
        assert_eq!(run.sim.num_blocks, 0);
    }
}
