//! Streaming shard-by-shard plan capture and the bounded-memory CPD
//! driver — the GPU end of the billion-scale ingestion pipeline.
//!
//! The classic capture ([`super::plan::ModePlans`]) materializes one
//! [`Plan`] per mode, each holding the *entire* replay schedule — dozens
//! of bytes per nonzero, times every mode, resident at once. This module
//! keeps the host footprint bounded by the largest single shard instead:
//!
//! 1. **Pass 1 (weights)** — the HB-CSF capture body runs against a
//!    weights-only `PlanBuilder`, which folds every block down to the
//!    `1 + contribs + leaves + chains` weight the sharded engine balances
//!    by and discards the rest. Peak memory: one block.
//! 2. **Cuts** — the weight prefix feeds the same `shard_ranges` the
//!    multi-device engine uses, so streaming shards are *exactly* the
//!    device shards a resident [`ShardModel`](super::ShardModel) would
//!    carve.
//! 3. **Pass 2 (shards)** — the capture body runs once per shard against
//!    a shard-filtered builder that keeps only its block range; each
//!    sealed shard plan is serialized to a [`ShardStore`] on disk and
//!    dropped. No builder ever sees the whole schedule.
//!
//! Replay loads shards back one at a time and folds each shard's
//! contributions into the shared output in global emission order —
//! consecutive-range folds are bit-identical to the untiled replay (the
//! same argument `sharded.rs` relies on), so a streamed MTTKRP equals
//! [`Plan::execute`]'s `y` bit for bit, and [`cpd_als_streamed`] equals
//! [`cpd_als_planned`](crate::cpd::cpd_als_planned) on the materialized
//! tensor exactly.
//!
//! The streaming driver computes *values only*: deserialized shard plans
//! carry no instruction stream, so there is no machine-model simulation,
//! no telemetry clock, and no fault injection on this path. Modeled
//! timing stays with the resident engines.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

use dense::{pseudo_inverse, HadamardChain, Matrix};
use sptensor::source::CooChunk;
use sptensor::spill::SortedChunks;
use sptensor::{mode_orientation, IngestOptions, SpilledTensor, TensorError, TensorResult};
use tensor_formats::{BcsfOptions, Csf, Hbcsf};

use super::common::GpuContext;
use super::plan::{Plan, PlanBuilder};
use super::sharded::shard_ranges;
use crate::cpd::{fit_from_inner, CpdOptions, CpdResult};

/// On-disk store of serialized shard plans, keyed `(mode, shard)`. Owns a
/// fresh subdirectory of the root it was created under and removes it on
/// drop.
pub struct ShardStore {
    dir: PathBuf,
    counts: Vec<usize>,
}

impl ShardStore {
    /// Creates an empty store in a fresh subdirectory of `root`.
    pub fn create(root: &Path) -> TensorResult<ShardStore> {
        std::fs::create_dir_all(root).map_err(TensorError::from)?;
        let pid = std::process::id();
        for k in 0.. {
            let dir = root.join(format!("plans_{pid}_{k}"));
            match std::fs::create_dir(&dir) {
                Ok(()) => {
                    return Ok(ShardStore {
                        dir,
                        counts: Vec::new(),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(TensorError::from(e)),
            }
        }
        unreachable!("directory probe loop is unbounded")
    }

    fn path(&self, mode: usize, shard: usize) -> PathBuf {
        self.dir.join(format!("mode{mode}_shard{shard:04}.plan"))
    }

    /// Serializes `plan` as shard `shard` of `mode`.
    pub fn put(&mut self, mode: usize, shard: usize, plan: &Plan) -> TensorResult<()> {
        if self.counts.len() <= mode {
            self.counts.resize(mode + 1, 0);
        }
        let mut w = BufWriter::with_capacity(1 << 20, File::create(self.path(mode, shard))?);
        plan.write_schedule(&mut w)?;
        self.counts[mode] = self.counts[mode].max(shard + 1);
        Ok(())
    }

    /// Loads shard `shard` of `mode` back into a value-replayable plan.
    pub fn load(&self, mode: usize, shard: usize) -> TensorResult<Plan> {
        let mut r = BufReader::with_capacity(1 << 20, File::open(self.path(mode, shard))?);
        Ok(Plan::read_schedule(&mut r)?)
    }

    /// Shards stored for `mode`.
    pub fn shards(&self, mode: usize) -> usize {
        self.counts.get(mode).copied().unwrap_or(0)
    }

    /// Modes with at least one stored shard slot.
    pub fn modes(&self) -> usize {
        self.counts.len()
    }

    /// Total bytes the store occupies on disk (bench reporting).
    pub fn bytes_on_disk(&self) -> u64 {
        let mut total = 0u64;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                if let Ok(md) = e.metadata() {
                    total += md.len();
                }
            }
        }
        total
    }
}

impl Drop for ShardStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Pass 1: the HB-CSF capture body against a weights-only builder. The
/// returned prefix is entry-for-entry what a full capture's
/// `Plan::block_weight_prefix` would report.
pub fn capture_weight_prefix(ctx: &GpuContext, h: &Hbcsf, rank: usize) -> Vec<u64> {
    let mode = h.perm[0];
    let mut pb = PlanBuilder::new_weights_only("hb-csf", mode, rank, h.dims[mode] as usize);
    super::hbcsf::capture_into(ctx, h, rank, &mut pb);
    pb.finish_weight_prefix()
}

/// Pass 2 for one shard: the capture body against a shard-filtered
/// builder keeping only blocks `range.0..range.1`.
pub fn capture_shard(ctx: &GpuContext, h: &Hbcsf, rank: usize, range: (usize, usize)) -> Plan {
    let mode = h.perm[0];
    let mut pb = PlanBuilder::new_shard_filter("hb-csf", mode, rank, h.dims[mode] as usize, range);
    super::hbcsf::capture_into(ctx, h, rank, &mut pb);
    pb.finish()
}

/// Captures `h`'s launch as `devices` weight-balanced shard plans written
/// straight to `store` (keyed by `h.perm[0]`), holding at most one shard's
/// schedule in memory at a time. Returns the shard count.
pub fn capture_sharded_hbcsf(
    ctx: &GpuContext,
    h: &Hbcsf,
    rank: usize,
    devices: usize,
    store: &mut ShardStore,
) -> TensorResult<usize> {
    let prefix = capture_weight_prefix(ctx, h, rank);
    let ranges = shard_ranges(&prefix, devices.max(1));
    let mode = h.perm[0];
    for (s, &range) in ranges.iter().enumerate() {
        let plan = capture_shard(ctx, h, rank, range);
        store.put(mode, s, &plan)?;
    }
    Ok(ranges.len())
}

/// Replays mode `mode` from the store: shards load one at a time and fold
/// into one output in shard order — global emission order, so the result
/// is bit-identical to the unsharded plan's replay.
pub fn replay_mode(
    store: &ShardStore,
    mode: usize,
    rank: usize,
    factors: &[Matrix],
) -> TensorResult<Matrix> {
    let mut y: Option<Matrix> = None;
    for s in 0..store.shards(mode) {
        let plan = store.load(mode, s)?;
        let out = y.get_or_insert_with(|| Matrix::zeros(plan.out_rows(), plan.rank()));
        plan.replay_range_parallel(out, factors, 0, plan.schedule().num_blocks());
    }
    Ok(y.unwrap_or_else(|| Matrix::zeros(0, rank)))
}

/// Configuration of the streaming CPD driver.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// ALS parameters (rank, iterations, tolerance, seed).
    pub cpd: CpdOptions,
    /// Shards per mode — the simulated device count whose `shard_ranges`
    /// cuts bound the resident schedule to `~1/devices` of a mode.
    pub devices: usize,
    /// Entries per chunk for every streaming pass (format build, norm,
    /// fit).
    pub chunk_nnz: usize,
    /// HB-CSF construction options.
    pub bcsf: BcsfOptions,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            cpd: CpdOptions::default(),
            devices: 4,
            chunk_nnz: 1 << 20,
            bcsf: BcsfOptions::default(),
        }
    }
}

/// A finished streaming decomposition.
pub struct StreamedCpd {
    /// Factors, lambda, fit trajectory — same shape as the resident
    /// driver's result.
    pub result: CpdResult,
    /// Shards captured per mode.
    pub shards_per_mode: Vec<usize>,
    /// Peak bytes of serialized shard plans on disk.
    pub store_bytes: u64,
}

/// `Σ v²` over the spilled stream, folded in the identical entry order as
/// the resident `norm_x` computation on the materialized tensor.
fn stream_norm_x(spill: &SpilledTensor, chunk_nnz: usize) -> TensorResult<f64> {
    let mut stream = spill.stream()?;
    let mut chunk = CooChunk::default();
    let mut sum = 0.0f64;
    loop {
        let n = stream.next_chunk(chunk_nnz, &mut chunk)?;
        if n == 0 {
            break;
        }
        for &v in &chunk.vals[..n] {
            sum += (v as f64) * (v as f64);
        }
    }
    Ok(sum.sqrt())
}

/// `⟨X, X̃⟩` over the spilled stream — per entry the exact arithmetic of
/// the resident `compute_fit` inner loop, in the same order.
fn stream_inner(
    spill: &SpilledTensor,
    chunk_nnz: usize,
    factors: &[Matrix],
    lambda: &[f32],
) -> TensorResult<f64> {
    let order = spill.dims().len();
    let r = lambda.len();
    let mut stream = spill.stream()?;
    let mut chunk = CooChunk::default();
    let mut inner = 0.0f64;
    let mut prod = vec![0.0f32; r];
    loop {
        let n = stream.next_chunk(chunk_nnz, &mut chunk)?;
        if n == 0 {
            break;
        }
        for i in 0..n {
            for (c, p) in prod.iter_mut().enumerate() {
                *p = lambda[c];
            }
            for m in 0..order {
                let row = factors[m].row(chunk.coords[m][i] as usize);
                for (p, &f) in prod.iter_mut().zip(row) {
                    *p *= f;
                }
            }
            inner += chunk.vals[i] as f64 * prod.iter().map(|&p| p as f64).sum::<f64>();
        }
    }
    Ok(inner)
}

/// CPD-ALS over a spilled tensor without ever materializing it: per-mode
/// formats are built out-of-core ([`Csf::build_streamed`]), plans are
/// captured shard by shard to disk, and each ALS MTTKRP replays the
/// shards sequentially. `scratch` hosts the re-sorted spills and the
/// shard store (both removed when dropped).
///
/// Peak host memory is bounded by one mode's HB-CSF format plus one
/// shard's schedule plus the chunk buffers — never the COO tensor, never
/// a whole-schedule plan.
///
/// Bit-identity contract: on a duplicate-free tensor this equals
/// [`cpd_als_planned`](crate::cpd::cpd_als_planned) over the identity-
/// sorted materialized tensor with in-core HB-CSF plans — same fits, same
/// factors, bit for bit (asserted in this module's tests and the CI
/// ingest smoke job).
pub fn cpd_als_streamed(
    ctx: &GpuContext,
    spill: &SpilledTensor,
    opts: &StreamOptions,
    scratch: &Path,
) -> TensorResult<StreamedCpd> {
    let dims = spill.dims().to_vec();
    let order = dims.len();
    let rank = opts.cpd.rank;
    let chunk_nnz = opts.chunk_nnz.max(1);
    let ingest_opts = IngestOptions::new().with_chunk_nnz(chunk_nnz);

    // Capture phase: one mode's format + one shard resident at a time.
    let mut store = ShardStore::create(scratch)?;
    let mut shards_per_mode = Vec::with_capacity(order);
    for mode in 0..order {
        let perm = mode_orientation(order, mode);
        let resorted = spill.resort(&perm, scratch, &ingest_opts)?;
        let csf = Csf::build_streamed(&mut resorted.stream()?, chunk_nnz)?;
        drop(resorted);
        let h = Hbcsf::from_csf(csf, opts.bcsf);
        shards_per_mode.push(capture_sharded_hbcsf(
            ctx,
            &h,
            rank,
            opts.devices,
            &mut store,
        )?);
    }
    let store_bytes = store.bytes_on_disk();

    // ALS phase: the exact update sequence of `cpd_als`, with the MTTKRP
    // served by sequential shard replay and the fit's inner product
    // streamed off the spill.
    let mut factors = crate::reference::random_factors_for_dims(&dims, rank, opts.cpd.seed);
    let mut lambda = vec![1.0f32; rank];
    let mut grams: Vec<Matrix> = factors.iter().map(Matrix::gram).collect();
    let norm_x = stream_norm_x(spill, chunk_nnz)?;

    let mut fits = Vec::new();
    let mut prev_fit = 0.0f64;
    let mut iterations = 0;
    for _iter in 0..opts.cpd.max_iters {
        let mut chain = HadamardChain::new(&grams, rank);
        for mode in 0..order {
            let y = replay_mode(&store, mode, rank, &factors)?;
            let v = chain.v(mode);
            let mut a_new = y.matmul(&pseudo_inverse(&v));
            lambda = a_new.normalize_columns();
            for l in &mut lambda {
                if *l == 0.0 {
                    *l = 1e-30;
                }
            }
            grams[mode] = a_new.gram();
            chain.advance(&grams[mode]);
            factors[mode] = a_new;
        }
        iterations += 1;

        let inner = stream_inner(spill, chunk_nnz, &factors, &lambda)?;
        let fit = fit_from_inner(inner, &lambda, &grams, norm_x);
        fits.push(fit);
        if iterations > 1 && (fit - prev_fit).abs() < opts.cpd.tol {
            break;
        }
        prev_fit = fit;
    }

    Ok(StreamedCpd {
        result: CpdResult {
            factors,
            lambda,
            fits,
            iterations,
        },
        shards_per_mode,
        store_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpd::cpd_als_planned;
    use crate::gpu::ModePlans;
    use sptensor::dims::identity_perm;
    use sptensor::synth::uniform_random;
    use sptensor::{CooSource, DuplicatePolicy};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sptk_stream_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn weight_prefix_matches_full_capture() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[20, 30, 40], 1_500, 9);
        let h = Hbcsf::build(&t, &identity_perm(3), BcsfOptions::default());
        let full = super::super::hbcsf::plan_impl(&ctx, &h, 8);
        assert_eq!(
            capture_weight_prefix(&ctx, &h, 8),
            full.block_weight_prefix()
        );
    }

    #[test]
    fn sharded_capture_replays_bit_identically_to_full_plan() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[18, 22, 26], 1_200, 10);
        let factors = crate::reference::random_factors(&t, 8, 77);
        let h = Hbcsf::build(&t, &identity_perm(3), BcsfOptions::default());
        let full = super::super::hbcsf::plan_impl(&ctx, &h, 8);
        let expect = full.execute(&ctx, &factors).unwrap().y;
        for devices in [1usize, 3, 7] {
            let dir = tmp(&format!("cap{devices}"));
            let mut store = ShardStore::create(&dir).unwrap();
            let n = capture_sharded_hbcsf(&ctx, &h, 8, devices, &mut store).unwrap();
            assert_eq!(n, devices);
            let y = replay_mode(&store, 0, 8, &factors).unwrap();
            assert_eq!(y, expect, "devices {devices}");
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn schedule_survives_disk_round_trip() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[12, 14, 16], 600, 11);
        let factors = crate::reference::random_factors(&t, 8, 78);
        let h = Hbcsf::build(&t, &identity_perm(3), BcsfOptions::default());
        let full = super::super::hbcsf::plan_impl(&ctx, &h, 8);
        let mut buf = Vec::new();
        full.write_schedule(&mut buf).unwrap();
        let back = Plan::read_schedule(&mut &buf[..]).unwrap();
        assert_eq!(back.name(), full.name());
        assert_eq!(back.out_rows(), full.out_rows());
        let mut y0 = Matrix::zeros(full.out_rows(), 8);
        let mut y1 = Matrix::zeros(full.out_rows(), 8);
        full.replay_range_parallel(&mut y0, &factors, 0, full.schedule().num_blocks());
        back.replay_range_parallel(&mut y1, &factors, 0, back.schedule().num_blocks());
        assert_eq!(y0, y1);
    }

    #[test]
    fn streamed_cpd_matches_planned_incore_bitwise() {
        let ctx = GpuContext::tiny();
        // Identity-sorted resident tensor: its entry order equals the
        // spilled merge order, so norms and fits fold identically.
        let mut t = uniform_random(&[14, 17, 12], 900, 33);
        t.sort_by_perm_stable(&identity_perm(3));
        let dir = tmp("cpd");
        let opts = IngestOptions::new()
            .with_policy(DuplicatePolicy::Sum)
            .with_chunk_nnz(97);
        let spill = SpilledTensor::ingest(CooSource::new(t.clone()), &opts, &dir).unwrap();

        let cpd = CpdOptions {
            rank: 8,
            max_iters: 5,
            tol: 0.0,
            seed: 42,
        };
        let streamed = cpd_als_streamed(
            &ctx,
            &spill,
            &StreamOptions {
                cpd,
                devices: 3,
                chunk_nnz: 64,
                bcsf: BcsfOptions::default(),
            },
            &dir,
        )
        .unwrap();

        let plans = ModePlans::build_hbcsf(&ctx, &t, 8, BcsfOptions::default());
        let incore = cpd_als_planned(&t, &cpd, &ctx, &plans);

        assert_eq!(
            incore.fits, streamed.result.fits,
            "fit trajectories diverge"
        );
        assert_eq!(incore.lambda, streamed.result.lambda);
        assert_eq!(incore.factors, streamed.result.factors);
        assert_eq!(streamed.shards_per_mode, vec![3, 3, 3]);
        drop(spill);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
