//! Launch capture & replay: the plan/execute split for the simulated GPU
//! kernels (CUDA-graph style).
//!
//! A kernel's instruction stream, address layout, and traversal order
//! depend only on *structure* — the tensor's format, the rank, and the
//! [`GpuContext`]'s block geometry — never on factor values. A [`Plan`]
//! captures all of that once: the emitted [`KernelLaunch`] plus a
//! [`ReplaySchedule`], a flat record of every semantic output contribution
//! (which output row, which leaf reductions, which factor-row scalings, in
//! emission order). [`Plan::execute`] then replays the schedule against
//! fresh factor matrices, computing only the value-dependent output `y`,
//! and reuses a memoized [`SimResult`] instead of re-simulating.
//!
//! Replay is bit-for-bit identical to emit-and-run by construction: the
//! per-contribution accumulators are computed by the same `fill` /
//! [`axpy_into`] / [`scale_by`] sequences the emitting kernels perform,
//! and the fold into `y` happens one contribution at a time in exact
//! emission order. The accumulator computation itself never reads `y`, so
//! it fans out over rayon in per-block batches; only the (cheap) ordered
//! fold stays sequential.
//!
//! Under an active [`FaultPlan`] the replay routes through an [`AbftSink`]
//! exactly as the emitting kernels do (checksums, latched bit flips), and
//! the faulted simulation is cached keyed on the plan — `run_verified`'s
//! retries carry a different `attempt`, which re-keys the cache.

use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use dense::Matrix;
use gpu_sim::{
    simulate_instrumented, AddressSpace, FaultPlan, KernelLaunch, MemLease, SimProfile, SimResult,
};
use rayon::prelude::*;
use simprof::FieldValue;
use sptensor::CooTensor;
use tensor_formats::{BcsfOptions, Hbcsf};

use super::common::{
    axpy_into, axpy_into_fixed, scale_by, scale_by_fixed, AbftSink, FactorAddrs, GpuContext, GpuRun,
};
use super::exec::LaunchError;

/// Accumulator elements per parallel replay batch (≈4 MB of partials):
/// bounds scratch memory while giving rayon enough blocks per batch.
const BATCH_ELEMS: usize = 1 << 20;

/// Which value-phase implementation a plan replays through, keyed off the
/// captured rank. The specialized variants run the *same* per-element f32
/// operation sequence as the generic path but with `[f32; R]` accumulators
/// and compile-time trip counts, so the inner loops fully unroll and
/// vectorize while every fold stays bit-identical (see DESIGN §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankDispatch {
    /// Const-generic path, `R = 8`.
    R8,
    /// Const-generic path, `R = 16`.
    R16,
    /// Const-generic path, `R = 32`.
    R32,
    /// Dynamically-sized fallback for every other rank.
    Generic,
}

impl RankDispatch {
    /// The dispatch a freshly captured plan of `rank` gets.
    pub fn for_rank(rank: usize) -> RankDispatch {
        match rank {
            8 => RankDispatch::R8,
            16 => RankDispatch::R16,
            32 => RankDispatch::R32,
            _ => RankDispatch::Generic,
        }
    }

    /// Stable label for benches/telemetry.
    pub fn label(self) -> &'static str {
        match self {
            RankDispatch::R8 => "specialized-r8",
            RankDispatch::R16 => "specialized-r16",
            RankDispatch::R32 => "specialized-r32",
            RankDispatch::Generic => "generic",
        }
    }

    /// Whether this is one of the const-generic fast paths.
    pub fn is_specialized(self) -> bool {
        self != RankDispatch::Generic
    }
}

/// A plan's device-memory requirements, sized at capture time from the
/// kernel's own [`AddressSpace`] layout. All sums saturate: a footprint
/// that overflows u64 reads as `u64::MAX` bytes — never satisfiable, so
/// overflow degrades into a typed OOM instead of wrapping silently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct MemoryFootprint {
    /// Factor matrices (segment-padded), all modes.
    pub factor_bytes: u64,
    /// The output matrix `Y` (segment-padded).
    pub output_bytes: u64,
    /// Everything else the kernel laid out: format pointer/index/value
    /// arrays, flags, scratch. This is the streamable part — tiles carry
    /// only their share of it.
    pub format_bytes: u64,
}

impl MemoryFootprint {
    /// Splits a finished layout into the resident arrays (factors,
    /// output) and the streamable format remainder.
    pub fn from_layout(space: &AddressSpace, fa: &FactorAddrs) -> MemoryFootprint {
        let factor_bytes = fa
            .factors
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.padded_bytes()));
        let output_bytes = fa.y.padded_bytes();
        let format_bytes = space
            .total_bytes()
            .saturating_sub(factor_bytes)
            .saturating_sub(output_bytes);
        MemoryFootprint {
            factor_bytes,
            output_bytes,
            format_bytes,
        }
    }

    /// Bytes that must stay resident for the whole launch (factors + Y).
    pub fn resident_bytes(&self) -> u64 {
        self.factor_bytes.saturating_add(self.output_bytes)
    }

    /// The full-device footprint: everything at once.
    pub fn total_bytes(&self) -> u64 {
        self.resident_bytes().saturating_add(self.format_bytes)
    }

    /// Whether the whole plan fits in `capacity` bytes at once.
    pub fn fits_within(&self, capacity: u64) -> bool {
        self.total_bytes() <= capacity
    }
}

/// The value-dependent half of a captured kernel, stored structure-of-
/// arrays: every semantic output contribution in emission order, grouped
/// by thread block (CSR-style `block_ptr`).
///
/// One contribution `c` replays as:
/// 1. leaf range empty → `acc.fill(init_vals[c])` (flat kernels seed the
///    accumulator with the nonzero value); otherwise `acc.fill(0.0)` then
///    `axpy_into(acc, leaf_vals[k], factors[leaf_mode].row(leaf_rows[k]))`
///    per leaf (the fiber kernels' leaf reduction);
/// 2. `scale_by(acc, factors[chain_modes[j]].row(chain_rows[j]))` per
///    chain entry (the Hadamard fold through the remaining modes);
/// 3. `y[rows[c]] += acc` — folded sequentially in emission order.
#[derive(Debug, Clone)]
pub struct ReplaySchedule {
    /// Factor mode the leaf reduction reads (fiber kernels only).
    leaf_mode: usize,
    /// Contribution range starts per block; `block_ptr[b]..block_ptr[b+1]`.
    block_ptr: Vec<u32>,
    /// Output row per contribution.
    rows: Vec<u32>,
    /// Accumulator seed per contribution (used when its leaf range is empty).
    init_vals: Vec<f32>,
    /// Leaf range starts per contribution (into `leaf_vals`/`leaf_rows`).
    leaf_ptr: Vec<u32>,
    leaf_vals: Vec<f32>,
    leaf_rows: Vec<u32>,
    /// Chain range starts per contribution (into `chain_modes`/`chain_rows`).
    chain_ptr: Vec<u32>,
    chain_modes: Vec<u32>,
    chain_rows: Vec<u32>,
}

impl ReplaySchedule {
    /// Number of captured thread blocks (== `begin_block` calls, which can
    /// exceed the launch's block count when a kernel probes past its last
    /// block — fault draws key on this same ordinal either way).
    pub fn num_blocks(&self) -> usize {
        self.block_ptr.len() - 1
    }

    /// Total semantic contributions.
    pub fn num_contributions(&self) -> usize {
        self.rows.len()
    }

    /// Recomputes contribution `c`'s accumulator into `acc` (length R),
    /// performing exactly the emitting kernel's value arithmetic.
    #[inline]
    fn replay_into(&self, c: usize, factors: &[Matrix], acc: &mut [f32]) {
        let (lo, hi) = (self.leaf_ptr[c] as usize, self.leaf_ptr[c + 1] as usize);
        if lo == hi {
            acc.fill(self.init_vals[c]);
        } else {
            acc.fill(0.0);
            for z in lo..hi {
                let row = self.leaf_rows[z] as usize;
                axpy_into(acc, self.leaf_vals[z], factors[self.leaf_mode].row(row));
            }
        }
        for j in self.chain_ptr[c] as usize..self.chain_ptr[c + 1] as usize {
            let (m, row) = (self.chain_modes[j] as usize, self.chain_rows[j] as usize);
            scale_by(acc, factors[m].row(row));
        }
    }

    /// [`ReplaySchedule::replay_into`] with a compile-time rank: the same
    /// seed/leaf/chain sequence over a `[f32; R]` accumulator. Each step
    /// performs per lane exactly the f32 ops of the generic helpers, so
    /// the accumulator bits match [`ReplaySchedule::replay_into`] exactly.
    #[inline]
    fn replay_into_fixed<const R: usize>(&self, c: usize, factors: &[Matrix], acc: &mut [f32; R]) {
        let (lo, hi) = (self.leaf_ptr[c] as usize, self.leaf_ptr[c + 1] as usize);
        if lo == hi {
            *acc = [self.init_vals[c]; R];
        } else {
            *acc = [0.0; R];
            for z in lo..hi {
                let row = self.leaf_rows[z] as usize;
                axpy_into_fixed(acc, self.leaf_vals[z], factors[self.leaf_mode].row(row));
            }
        }
        for j in self.chain_ptr[c] as usize..self.chain_ptr[c + 1] as usize {
            let (m, row) = (self.chain_modes[j] as usize, self.chain_rows[j] as usize);
            scale_by_fixed(acc, factors[m].row(row));
        }
    }
}

/// What a [`PlanBuilder`] retains of the capture. The kernels' emit code
/// is mode-blind — it calls the same `begin_block`/`contrib`/`leaf`/
/// `chain` sequence either way — so the block ordinals, weights, and kept
/// schedules are identical across modes by construction. This is what lets
/// the streaming capture (`super::stream`) run the emit body a few times
/// with small builders instead of once with a whole-schedule builder.
pub(crate) enum CaptureMode {
    /// Retain everything (the classic capture).
    Full,
    /// Retain only a per-block weight (`1 + contribs + leaves + chains`,
    /// the [`Plan::block_weight_prefix`] formula); schedule arrays and
    /// launch blocks are discarded block by block, so the builder's
    /// footprint is one block, not one schedule.
    WeightsOnly {
        weights: Vec<u64>,
        started: bool,
        contribs: u64,
        leaves: u64,
        chains: u64,
    },
    /// Retain only blocks with global ordinal in `keep_begin..keep_end`
    /// (block ordinal = `begin_block` call count, exactly the ordinals
    /// [`Plan::block_weight_prefix`] weights). Out-of-range contributions
    /// are dropped as they arrive, and launch blocks are dropped for
    /// *every* block — shard plans are values-only replay artifacts
    /// (only the schedule is serialized), so keeping the simulation
    /// instruction stream would only inflate capture-time peak memory.
    ShardFilter {
        keep_begin: usize,
        keep_end: usize,
        seen: usize,
        active: bool,
    },
}

/// Capture-time recorder the kernels emit into: collects the
/// [`KernelLaunch`] (blocks/warps/ops) and the [`ReplaySchedule`]
/// side by side, replacing the historical `(launch, y, sink)` triple.
pub(crate) struct PlanBuilder {
    name: String,
    mode: usize,
    rank: usize,
    out_rows: usize,
    /// The simulated instruction stream; kernels push blocks directly.
    pub launch: KernelLaunch,
    sched: ReplaySchedule,
    footprint: MemoryFootprint,
    capture: CaptureMode,
}

impl PlanBuilder {
    pub fn new(name: &str, mode: usize, rank: usize, out_rows: usize) -> PlanBuilder {
        Self::with_capture(name, mode, rank, out_rows, CaptureMode::Full)
    }

    /// A builder that records only per-block weights (streaming pass 1).
    pub fn new_weights_only(name: &str, mode: usize, rank: usize, out_rows: usize) -> PlanBuilder {
        Self::with_capture(
            name,
            mode,
            rank,
            out_rows,
            CaptureMode::WeightsOnly {
                weights: Vec::new(),
                started: false,
                contribs: 0,
                leaves: 0,
                chains: 0,
            },
        )
    }

    /// A builder that keeps only blocks `range.0..range.1` (streaming
    /// pass 2, one shard).
    pub fn new_shard_filter(
        name: &str,
        mode: usize,
        rank: usize,
        out_rows: usize,
        range: (usize, usize),
    ) -> PlanBuilder {
        Self::with_capture(
            name,
            mode,
            rank,
            out_rows,
            CaptureMode::ShardFilter {
                keep_begin: range.0,
                keep_end: range.1,
                seen: 0,
                active: true,
            },
        )
    }

    fn with_capture(
        name: &str,
        mode: usize,
        rank: usize,
        out_rows: usize,
        capture: CaptureMode,
    ) -> PlanBuilder {
        PlanBuilder {
            name: name.to_string(),
            mode,
            rank,
            out_rows,
            launch: KernelLaunch::new(name),
            sched: ReplaySchedule {
                leaf_mode: 0,
                block_ptr: Vec::new(),
                rows: Vec::new(),
                init_vals: Vec::new(),
                leaf_ptr: Vec::new(),
                leaf_vals: Vec::new(),
                leaf_rows: Vec::new(),
                chain_ptr: Vec::new(),
                chain_modes: Vec::new(),
                chain_rows: Vec::new(),
            },
            footprint: MemoryFootprint::default(),
            capture,
        }
    }

    /// Declares the factor mode leaf reductions read (fiber kernels).
    pub fn set_leaf_mode(&mut self, mode: usize) {
        self.sched.leaf_mode = mode;
    }

    /// Records the capture's device-memory footprint (kernels call this
    /// right after finishing their [`AddressSpace`] layout).
    pub fn set_footprint(&mut self, footprint: MemoryFootprint) {
        self.footprint = footprint;
    }

    /// Marks the start of the next thread block — called exactly where the
    /// kernels called `sink.begin_block` (once per block ordinal, in
    /// emission order), so fault draws key identically at replay.
    pub fn begin_block(&mut self) {
        match &mut self.capture {
            CaptureMode::Full => self.sched.block_ptr.push(self.sched.rows.len() as u32),
            CaptureMode::WeightsOnly {
                weights,
                started,
                contribs,
                leaves,
                chains,
            } => {
                if *started {
                    weights.push(1 + *contribs + *leaves + *chains);
                }
                *started = true;
                *contribs = 0;
                *leaves = 0;
                *chains = 0;
                // Launch blocks are pushed by the kernels between our
                // calls; a weights pass has no use for them.
                self.launch.blocks.clear();
            }
            CaptureMode::ShardFilter {
                keep_begin,
                keep_end,
                seen,
                active,
            } => {
                self.launch.blocks.clear();
                *active = (*keep_begin..*keep_end).contains(seen);
                *seen += 1;
                if *active {
                    self.sched.block_ptr.push(self.sched.rows.len() as u32);
                }
            }
        }
    }

    /// Starts a contribution to output row `row` with accumulator seed
    /// `init` (used only if no leaves follow).
    pub fn contrib(&mut self, row: usize, init: f32) {
        match &mut self.capture {
            CaptureMode::WeightsOnly { contribs, .. } => {
                *contribs += 1;
                return;
            }
            CaptureMode::ShardFilter { active: false, .. } => return,
            _ => {}
        }
        self.sched.rows.push(row as u32);
        self.sched.init_vals.push(init);
        self.sched.leaf_ptr.push(self.sched.leaf_vals.len() as u32);
        self.sched
            .chain_ptr
            .push(self.sched.chain_modes.len() as u32);
    }

    /// Appends a leaf term `val × factors[leaf_mode].row(row)` to the
    /// current contribution.
    pub fn leaf(&mut self, val: f32, row: usize) {
        match &mut self.capture {
            CaptureMode::WeightsOnly { leaves, .. } => {
                *leaves += 1;
                return;
            }
            CaptureMode::ShardFilter { active: false, .. } => return,
            _ => {}
        }
        self.sched.leaf_vals.push(val);
        self.sched.leaf_rows.push(row as u32);
    }

    /// Appends a Hadamard scaling by `factors[mode].row(row)` to the
    /// current contribution.
    pub fn chain(&mut self, mode: usize, row: usize) {
        match &mut self.capture {
            CaptureMode::WeightsOnly { chains, .. } => {
                *chains += 1;
                return;
            }
            CaptureMode::ShardFilter { active: false, .. } => return,
            _ => {}
        }
        self.sched.chain_modes.push(mode as u32);
        self.sched.chain_rows.push(row as u32);
    }

    /// Seals the capture into an executable [`Plan`].
    ///
    /// For a [`CaptureMode::ShardFilter`] builder the plan covers only the
    /// kept block range, with *local* block ordinals — correct for clean
    /// replay (the ordered fold is position-independent) but not for
    /// fault draws, which key on global ordinals.
    pub fn finish(mut self) -> Plan {
        if let CaptureMode::ShardFilter { .. } = self.capture {
            self.launch.blocks.clear();
        }
        self.sched.block_ptr.push(self.sched.rows.len() as u32);
        self.sched.leaf_ptr.push(self.sched.leaf_vals.len() as u32);
        self.sched
            .chain_ptr
            .push(self.sched.chain_modes.len() as u32);
        Plan {
            name: self.name,
            mode: self.mode,
            rank: self.rank,
            out_rows: self.out_rows,
            dispatch: RankDispatch::for_rank(self.rank),
            launch: self.launch,
            sched: self.sched,
            footprint: self.footprint,
            sim_clean: OnceLock::new(),
            sim_faulted: Mutex::new(None),
            sim_tiled: Mutex::new(None),
        }
    }

    /// Seals a [`CaptureMode::WeightsOnly`] capture into the block-weight
    /// prefix sums — `len == begin_block calls + 1`, entry for entry what
    /// [`Plan::block_weight_prefix`] computes from a full capture.
    ///
    /// # Panics
    /// If the builder was not created with [`PlanBuilder::new_weights_only`].
    pub fn finish_weight_prefix(self) -> Vec<u64> {
        let CaptureMode::WeightsOnly {
            mut weights,
            started,
            contribs,
            leaves,
            chains,
        } = self.capture
        else {
            panic!("finish_weight_prefix on a non-weights capture");
        };
        if started {
            weights.push(1 + contribs + leaves + chains);
        }
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        prefix.push(0u64);
        for (b, w) in weights.into_iter().enumerate() {
            prefix.push(prefix[b] + w);
        }
        prefix
    }
}

/// A captured kernel launch: replayable against any factor values of the
/// captured rank, with the structure-dependent simulation memoized.
///
/// A plan is specific to the `(format, rank, ctx)` it was captured under:
/// replaying it through a context with a different device, cost model, or
/// `warps_per_block` would pair the wrong simulation with the output.
/// Fault plans are the exception — they vary per execute (see
/// [`Plan::execute`]).
#[derive(Debug)]
pub struct Plan {
    name: String,
    mode: usize,
    rank: usize,
    out_rows: usize,
    /// Which value-phase implementation replays run through; defaults to
    /// the rank-keyed specialization and can be forced generic (benches,
    /// bit-identity tests).
    dispatch: RankDispatch,
    launch: KernelLaunch,
    sched: ReplaySchedule,
    /// Device-memory requirements, sized at capture time.
    footprint: MemoryFootprint,
    /// Fault-free simulation, computed once on first execute.
    sim_clean: OnceLock<(SimResult, SimProfile)>,
    /// Last faulted simulation keyed by its [`FaultPlan`] — `run_verified`
    /// retries re-execute under `plan.with_attempt(n)`, a different key.
    sim_faulted: Mutex<Option<(FaultPlan, SimResult, SimProfile)>>,
    /// Last aggregated tiled simulation, keyed by the tile byte budget
    /// (tile ranges are a pure function of the budget).
    sim_tiled: Mutex<Option<(u64, SimResult)>>,
}

impl Plan {
    /// Kernel (launch) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output mode the capture computes.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Factor rank the capture is valid for.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Output rows (`dims[mode]`) the capture produces.
    pub fn out_rows(&self) -> usize {
        self.out_rows
    }

    /// The value-phase implementation replays run through.
    pub fn dispatch(&self) -> RankDispatch {
        self.dispatch
    }

    /// Toggles the const-generic value phase: `true` restores the
    /// rank-keyed default, `false` forces the generic fallback (the two
    /// produce bit-identical output — this exists so benches and tests can
    /// time/compare the arms).
    pub fn set_rank_specialization(&mut self, on: bool) {
        self.dispatch = if on {
            RankDispatch::for_rank(self.rank)
        } else {
            RankDispatch::Generic
        };
    }

    /// Device-memory requirements, sized at capture time.
    pub fn footprint(&self) -> &MemoryFootprint {
        &self.footprint
    }

    /// The captured instruction stream.
    pub fn launch(&self) -> &KernelLaunch {
        &self.launch
    }

    /// Consumes the plan, yielding the captured launch (for tools that
    /// drive the simulator themselves, e.g. `balance_viz`).
    pub fn into_launch(self) -> KernelLaunch {
        self.launch
    }

    /// The captured replay schedule.
    pub fn schedule(&self) -> &ReplaySchedule {
        &self.sched
    }

    /// Replays the capture against `factors`, producing the same [`GpuRun`]
    /// the emitting kernel would: identical `y` bits, identical (memoized)
    /// `SimResult`, and — under `ctx`'s fault plan — identical ABFT data.
    ///
    /// Factors whose rank disagrees with the captured rank are rejected
    /// with [`LaunchError::RankMismatch`] (service-facing paths must not
    /// panic on tenant input).
    pub fn execute(&self, ctx: &GpuContext, factors: &[Matrix]) -> Result<GpuRun, LaunchError> {
        self.validate_factors(factors)?;
        let _lease = self.lease_full(ctx);
        Ok(self.execute_inner(ctx, factors))
    }

    /// [`Plan::execute`] for callers that already ran
    /// [`Plan::validate_factors`]. Validation is context-independent
    /// (factor shapes against the captured rank), so one up-front check
    /// covers every replay of the same factors — including ABFT retry
    /// contexts — and the replay itself is infallible.
    pub fn execute_validated(&self, ctx: &GpuContext, factors: &[Matrix]) -> GpuRun {
        let _lease = self.lease_full(ctx);
        self.execute_inner(ctx, factors)
    }

    /// Checks every factor's column count against the captured rank.
    pub fn validate_factors(&self, factors: &[Matrix]) -> Result<(), LaunchError> {
        if factors.is_empty() && self.rank != 0 {
            return Err(LaunchError::RankMismatch {
                expected: self.rank,
                got: 0,
            });
        }
        for f in factors {
            if f.cols() != self.rank {
                return Err(LaunchError::RankMismatch {
                    expected: self.rank,
                    got: f.cols(),
                });
            }
        }
        Ok(())
    }

    /// Leases the plan's full footprint from `ctx`'s device memory
    /// (unchecked observation — the checked path lives in
    /// [`super::ooc::execute_adaptive`]).
    pub(crate) fn lease_full(&self, ctx: &GpuContext) -> MemLease {
        ctx.memory.lease(&self.footprint_parts())
    }

    /// `(label, bytes)` triplet describing the full footprint.
    pub(crate) fn footprint_parts(&self) -> Vec<(String, u64)> {
        vec![
            (
                format!("{}.factors", self.name),
                self.footprint.factor_bytes,
            ),
            (format!("{}.output", self.name), self.footprint.output_bytes),
            (format!("{}.format", self.name), self.footprint.format_bytes),
        ]
    }

    /// [`Plan::execute`] without the memory lease or factor validation —
    /// for callers that have already leased (full-device or per-tile) and
    /// validated through the checked path.
    pub(crate) fn execute_inner(&self, ctx: &GpuContext, factors: &[Matrix]) -> GpuRun {
        debug_assert!(
            self.validate_factors(factors).is_ok(),
            "plan '{}' captured for rank {}, factors disagree",
            self.name,
            self.rank
        );
        let mut y = Matrix::zeros(self.out_rows, self.rank);
        let abft = if ctx.fault_plan().is_some() {
            // Faulted path: sequential, routing every contribution through
            // the sink so checksums and latched flips match emission.
            let mut sink = ctx.abft_sink(&self.name, self.out_rows);
            self.replay_sequential(&mut y, factors, &mut sink);
            sink.flush(&mut y);
            sink.into_data()
        } else {
            self.replay_parallel(&mut y, factors);
            None
        };
        let (sim, profile) = self.sim_for(ctx);
        if ctx.profiling() {
            ctx.registry.add("plan.replays", 1);
            if self.dispatch.is_specialized() {
                ctx.registry.add("plan.replays_specialized", 1);
            }
        }
        let tel = &ctx.telemetry;
        if tel.enabled() {
            tel.emit(
                "kernel-replay",
                None,
                tel.new_span(),
                &[
                    ("kernel", FieldValue::from(self.name.as_str())),
                    ("mode", FieldValue::from(self.mode)),
                    ("sim_kernel_us", FieldValue::from(sim.time_s * 1e6)),
                    ("faulted", FieldValue::from(ctx.fault_plan().is_some())),
                    ("dispatch", FieldValue::from(self.dispatch.label())),
                ],
            );
        }
        // The simulated clock advances by the replayed kernel's sim time
        // whether or not events are being rendered — iteration timings in
        // cpd.rs are derived from it.
        tel.advance_us(sim.time_s * 1e6);
        GpuRun {
            y,
            sim,
            profile,
            abft,
        }
    }

    /// The memoized simulation for `ctx`'s fault state. Faulted runs always
    /// keep the profile (the injected-fault ledger lives there); clean runs
    /// keep it only when profiling, matching `finish_abft`.
    fn sim_for(&self, ctx: &GpuContext) -> (SimResult, Option<SimProfile>) {
        match ctx.fault_plan() {
            Some(plan) => {
                // Poisoning only means a panic elsewhere mid-fill; refill
                // rather than cascading the panic out of a cache lookup.
                let mut cached = self
                    .sim_faulted
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                match cached.as_ref() {
                    Some((key, sim, profile)) if key == plan => {
                        let out = (sim.clone(), Some(profile.clone()));
                        drop(cached);
                        self.note_cache_hit(ctx, "faulted");
                        out
                    }
                    _ => {
                        let (sim, profile) = simulate_instrumented(
                            &ctx.device,
                            &ctx.cost,
                            &self.launch,
                            &ctx.registry,
                            Some(plan),
                            ctx.instruments(),
                        );
                        *cached = Some((plan.clone(), sim.clone(), profile.clone()));
                        (sim, Some(profile))
                    }
                }
            }
            None => {
                let (sim, profile) = self.clean_sim_cached(ctx);
                (sim.clone(), ctx.profiling().then(|| profile.clone()))
            }
        }
    }

    /// The memoized fault-free simulation, computing (and instrumenting)
    /// it on first use. This is the *canonical* per-replay timing: it
    /// depends only on the captured launch and the device model — never on
    /// device count or fault state — so the telemetry clock advanced from
    /// it is identical across `--devices 1` and `--devices N` runs.
    pub(crate) fn clean_sim_cached(&self, ctx: &GpuContext) -> &(SimResult, SimProfile) {
        let hit = self.sim_clean.get().is_some();
        let pair = self.sim_clean.get_or_init(|| {
            simulate_instrumented(
                &ctx.device,
                &ctx.cost,
                &self.launch,
                &ctx.registry,
                None,
                ctx.instruments(),
            )
        });
        if hit {
            self.note_cache_hit(ctx, "clean");
        }
        pair
    }

    /// Emits a `plan-cache-hit` event: a replay was served from the
    /// memoized simulation instead of re-running the machine model.
    fn note_cache_hit(&self, ctx: &GpuContext, cache: &str) {
        let tel = &ctx.telemetry;
        if tel.enabled() {
            tel.emit(
                "plan-cache-hit",
                None,
                tel.new_span(),
                &[
                    ("kernel", FieldValue::from(self.name.as_str())),
                    ("mode", FieldValue::from(self.mode)),
                    ("cache", FieldValue::from(cache)),
                ],
            );
        }
    }

    /// Fault-free replay: per-contribution accumulators computed in
    /// parallel (they never read `y`), then folded into `y` one at a time
    /// in emission order — the exact f32 summation order of the inactive
    /// sink's `axpy_into` path.
    fn replay_parallel(&self, y: &mut Matrix, factors: &[Matrix]) {
        self.replay_range_parallel(y, factors, 0, self.sched.num_blocks());
    }

    /// [`Plan::replay_parallel`] restricted to blocks `range_b0..range_b1`
    /// of the schedule. Tiling only moves batch boundaries: the ordered
    /// per-contribution fold is unchanged, so any tiling of `0..nblocks`
    /// into consecutive ranges accumulates `y` bit-for-bit identically to
    /// the untiled replay.
    ///
    /// Dispatch shim: routes to the const-generic value phase when the
    /// captured rank has one (8/16/32), else the dynamically-sized
    /// fallback. Both arms run the identical batching loop and fold order,
    /// so the choice never changes output bits — OOC tiles and shard
    /// ranges (which call this per range) inherit the fast path for free.
    pub(crate) fn replay_range_parallel(
        &self,
        y: &mut Matrix,
        factors: &[Matrix],
        range_b0: usize,
        range_b1: usize,
    ) {
        match self.dispatch {
            RankDispatch::R8 => {
                self.replay_range_parallel_spec::<8>(y, factors, range_b0, range_b1)
            }
            RankDispatch::R16 => {
                self.replay_range_parallel_spec::<16>(y, factors, range_b0, range_b1)
            }
            RankDispatch::R32 => {
                self.replay_range_parallel_spec::<32>(y, factors, range_b0, range_b1)
            }
            RankDispatch::Generic => {
                self.replay_range_parallel_generic(y, factors, range_b0, range_b1)
            }
        }
    }

    /// The dynamically-sized parallel value phase (any rank).
    fn replay_range_parallel_generic(
        &self,
        y: &mut Matrix,
        factors: &[Matrix],
        range_b0: usize,
        range_b1: usize,
    ) {
        let r = self.rank;
        if r == 0 {
            return;
        }
        let nblocks = range_b1.min(self.sched.num_blocks());
        let mut buf: Vec<f32> = Vec::new();
        let mut b0 = range_b0;
        while b0 < nblocks {
            // Grow the batch until it covers ~BATCH_ELEMS accumulator
            // elements (always at least one block).
            let mut b1 = b0 + 1;
            while b1 < nblocks
                && (self.sched.block_ptr[b1] - self.sched.block_ptr[b0]) as usize * r < BATCH_ELEMS
            {
                b1 += 1;
            }
            let base = self.sched.block_ptr[b0] as usize;
            let count = self.sched.block_ptr[b1] as usize - base;
            buf.clear();
            buf.resize(count * r, 0.0);

            // Disjoint per-block scratch slices: blocks replay in parallel.
            let mut chunks: Vec<(usize, &mut [f32])> = Vec::with_capacity(b1 - b0);
            let mut rest = buf.as_mut_slice();
            for b in b0..b1 {
                let n = (self.sched.block_ptr[b + 1] - self.sched.block_ptr[b]) as usize * r;
                let (head, tail) = rest.split_at_mut(n);
                chunks.push((b, head));
                rest = tail;
            }
            chunks.into_par_iter().for_each(|(b, chunk)| {
                let lo = self.sched.block_ptr[b] as usize;
                for (k, acc) in chunk.chunks_mut(r).enumerate() {
                    self.sched.replay_into(lo + k, factors, acc);
                }
            });

            // Ordered sequential fold — bit-for-bit the emission order.
            for c in 0..count {
                let i = self.sched.rows[base + c] as usize;
                axpy_into(y.row_mut(i), 1.0, &buf[c * r..(c + 1) * r]);
            }
            b0 = b1;
        }
    }

    /// [`Plan::replay_range_parallel_generic`] with a compile-time rank:
    /// same batching, same disjoint scratch, same emission-order fold —
    /// only the accumulator type changes to `[f32; R]`, which hands the
    /// compiler fixed trip counts for the leaf/chain inner loops.
    fn replay_range_parallel_spec<const R: usize>(
        &self,
        y: &mut Matrix,
        factors: &[Matrix],
        range_b0: usize,
        range_b1: usize,
    ) {
        debug_assert_eq!(self.rank, R);
        let nblocks = range_b1.min(self.sched.num_blocks());
        let mut buf: Vec<[f32; R]> = Vec::new();
        let mut b0 = range_b0;
        while b0 < nblocks {
            let mut b1 = b0 + 1;
            while b1 < nblocks
                && (self.sched.block_ptr[b1] - self.sched.block_ptr[b0]) as usize * R < BATCH_ELEMS
            {
                b1 += 1;
            }
            let base = self.sched.block_ptr[b0] as usize;
            let count = self.sched.block_ptr[b1] as usize - base;
            buf.clear();
            buf.resize(count, [0.0; R]);

            let mut chunks: Vec<(usize, &mut [[f32; R]])> = Vec::with_capacity(b1 - b0);
            let mut rest = buf.as_mut_slice();
            for b in b0..b1 {
                let n = (self.sched.block_ptr[b + 1] - self.sched.block_ptr[b]) as usize;
                let (head, tail) = rest.split_at_mut(n);
                chunks.push((b, head));
                rest = tail;
            }
            chunks.into_par_iter().for_each(|(b, chunk)| {
                let lo = self.sched.block_ptr[b] as usize;
                for (k, acc) in chunk.iter_mut().enumerate() {
                    self.sched.replay_into_fixed(lo + k, factors, acc);
                }
            });

            // Ordered sequential fold — bit-for-bit the emission order
            // (`y[i][c] += 1.0 * acc[c]`, same per-lane op as the generic
            // fold's `axpy_into`).
            for (c, acc) in buf.iter().enumerate() {
                let i = self.sched.rows[base + c] as usize;
                axpy_into(y.row_mut(i), 1.0, acc);
            }
            b0 = b1;
        }
    }

    /// Faulted replay: fully sequential, calling `begin_block`/`contribute`
    /// with the same ordinals and accumulators as emission.
    fn replay_sequential(&self, y: &mut Matrix, factors: &[Matrix], sink: &mut AbftSink) {
        self.replay_range_sequential(y, factors, sink, 0, self.sched.num_blocks());
    }

    /// [`Plan::replay_sequential`] restricted to blocks `b0..b1`. Block
    /// ordinals passed to the sink are the *global* schedule ordinals, so
    /// fault draws — which key on `(kernel, block)` — are identical
    /// whether the schedule runs whole or tiled.
    ///
    /// Same dispatch shim as [`Plan::replay_range_parallel`]: the faulted
    /// path stays fully sequential through the sink either way; only the
    /// accumulator computation specializes.
    pub(crate) fn replay_range_sequential(
        &self,
        y: &mut Matrix,
        factors: &[Matrix],
        sink: &mut AbftSink,
        b0: usize,
        b1: usize,
    ) {
        match self.dispatch {
            RankDispatch::R8 => self.replay_range_sequential_spec::<8>(y, factors, sink, b0, b1),
            RankDispatch::R16 => self.replay_range_sequential_spec::<16>(y, factors, sink, b0, b1),
            RankDispatch::R32 => self.replay_range_sequential_spec::<32>(y, factors, sink, b0, b1),
            RankDispatch::Generic => self.replay_range_sequential_generic(y, factors, sink, b0, b1),
        }
    }

    /// The dynamically-sized sequential (faulted) value phase.
    fn replay_range_sequential_generic(
        &self,
        y: &mut Matrix,
        factors: &[Matrix],
        sink: &mut AbftSink,
        b0: usize,
        b1: usize,
    ) {
        let mut acc = vec![0.0f32; self.rank];
        for b in b0..b1.min(self.sched.num_blocks()) {
            sink.begin_block(y, b);
            let (lo, hi) = (
                self.sched.block_ptr[b] as usize,
                self.sched.block_ptr[b + 1] as usize,
            );
            for c in lo..hi {
                self.sched.replay_into(c, factors, &mut acc);
                sink.contribute(y, self.sched.rows[c] as usize, &acc);
            }
        }
    }

    /// [`Plan::replay_range_sequential_generic`] with a compile-time rank;
    /// the sink sees the same block ordinals, rows, and accumulator bits.
    fn replay_range_sequential_spec<const R: usize>(
        &self,
        y: &mut Matrix,
        factors: &[Matrix],
        sink: &mut AbftSink,
        b0: usize,
        b1: usize,
    ) {
        debug_assert_eq!(self.rank, R);
        let mut acc = [0.0f32; R];
        for b in b0..b1.min(self.sched.num_blocks()) {
            sink.begin_block(y, b);
            let (lo, hi) = (
                self.sched.block_ptr[b] as usize,
                self.sched.block_ptr[b + 1] as usize,
            );
            for c in lo..hi {
                self.sched.replay_into_fixed(c, factors, &mut acc);
                sink.contribute(y, self.sched.rows[c] as usize, &acc);
            }
        }
    }

    /// Prefix sums of per-block tiling weights (`len == num_blocks + 1`).
    /// A block's weight approximates its share of the format arrays: its
    /// contribution, leaf, and chain entry counts, plus one so empty
    /// blocks still make progress when packed.
    pub(crate) fn block_weight_prefix(&self) -> Vec<u64> {
        let s = &self.sched;
        let nblocks = s.num_blocks();
        let mut prefix = Vec::with_capacity(nblocks + 1);
        prefix.push(0u64);
        for b in 0..nblocks {
            let (lo, hi) = (s.block_ptr[b] as usize, s.block_ptr[b + 1] as usize);
            let mut w = 1 + (hi - lo) as u64;
            if hi > lo {
                w += u64::from(s.leaf_ptr[hi] - s.leaf_ptr[lo]);
                w += u64::from(s.chain_ptr[hi] - s.chain_ptr[lo]);
            }
            prefix.push(prefix[b] + w);
        }
        prefix
    }

    /// The sub-launch covering schedule blocks `b0..b1` (clamped to the
    /// launch's block count — the schedule can record a trailing probe
    /// block past the last launched one).
    pub(crate) fn sub_launch(&self, b0: usize, b1: usize) -> KernelLaunch {
        let lo = b0.min(self.launch.blocks.len());
        let hi = b1.min(self.launch.blocks.len());
        KernelLaunch {
            name: self.launch.name.clone(),
            blocks: self.launch.blocks[lo..hi].to_vec(),
        }
    }

    /// The memoized aggregated tiled simulation for `budget`, filling via
    /// `compute` on miss (see `sim_tiled`).
    pub(crate) fn tiled_sim_cached(
        &self,
        budget: u64,
        compute: impl FnOnce() -> SimResult,
    ) -> SimResult {
        let mut cached = self
            .sim_tiled
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match cached.as_ref() {
            Some((key, sim)) if *key == budget => sim.clone(),
            _ => {
                let sim = compute();
                *cached = Some((budget, sim.clone()));
                sim
            }
        }
    }

    /// Serializes the *replayable* core of the plan (identity + schedule
    /// SoA arrays, little-endian) for the streaming shard store. The
    /// captured instruction stream and footprint are deliberately not
    /// persisted: a deserialized plan replays values bit-identically but
    /// carries an empty launch (no machine-model simulation) — the
    /// streaming CPD driver computes values only.
    pub(crate) fn write_schedule(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(SCHED_MAGIC)?;
        let name = self.name.as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(self.mode as u32).to_le_bytes())?;
        w.write_all(&(self.rank as u32).to_le_bytes())?;
        w.write_all(&(self.out_rows as u64).to_le_bytes())?;
        w.write_all(&(self.sched.leaf_mode as u32).to_le_bytes())?;
        write_u32s(w, &self.sched.block_ptr)?;
        write_u32s(w, &self.sched.rows)?;
        write_f32s(w, &self.sched.init_vals)?;
        write_u32s(w, &self.sched.leaf_ptr)?;
        write_f32s(w, &self.sched.leaf_vals)?;
        write_u32s(w, &self.sched.leaf_rows)?;
        write_u32s(w, &self.sched.chain_ptr)?;
        write_u32s(w, &self.sched.chain_modes)?;
        write_u32s(w, &self.sched.chain_rows)?;
        Ok(())
    }

    /// Reconstructs a value-replayable plan written by
    /// [`Plan::write_schedule`].
    pub(crate) fn read_schedule(r: &mut impl std::io::Read) -> std::io::Result<Plan> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != SCHED_MAGIC {
            return Err(bad("not a serialized replay schedule"));
        }
        let name_len = read_u32(r)? as usize;
        if name_len > 1 << 16 {
            return Err(bad("implausible kernel name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("kernel name not utf-8"))?;
        let mode = read_u32(r)? as usize;
        let rank = read_u32(r)? as usize;
        let out_rows = read_u64(r)? as usize;
        let leaf_mode = read_u32(r)? as usize;
        let sched = ReplaySchedule {
            leaf_mode,
            block_ptr: read_u32s(r)?,
            rows: read_u32s(r)?,
            init_vals: read_f32s(r)?,
            leaf_ptr: read_u32s(r)?,
            leaf_vals: read_f32s(r)?,
            leaf_rows: read_u32s(r)?,
            chain_ptr: read_u32s(r)?,
            chain_modes: read_u32s(r)?,
            chain_rows: read_u32s(r)?,
        };
        if sched.block_ptr.is_empty() || sched.leaf_ptr.len() != sched.rows.len() + 1 {
            return Err(bad("truncated replay schedule"));
        }
        Ok(Plan {
            name: name.clone(),
            mode,
            rank,
            out_rows,
            dispatch: RankDispatch::for_rank(rank),
            launch: KernelLaunch::new(&name),
            sched,
            footprint: MemoryFootprint::default(),
            sim_clean: OnceLock::new(),
            sim_faulted: Mutex::new(None),
            sim_tiled: Mutex::new(None),
        })
    }
}

/// Magic prefix of a serialized [`ReplaySchedule`] ("sptk plan, v1").
const SCHED_MAGIC: &[u8; 4] = b"SPL1";

fn write_u32s(w: &mut impl std::io::Write, v: &[u32]) -> std::io::Result<()> {
    w.write_all(&(v.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * v.len().min(1 << 18));
    for chunk in v.chunks(1 << 18) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn write_f32s(w: &mut impl std::io::Write, v: &[f32]) -> std::io::Result<()> {
    w.write_all(&(v.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * v.len().min(1 << 18));
    for chunk in v.chunks(1 << 18) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_u32(r: &mut impl std::io::Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl std::io::Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32s(r: &mut impl std::io::Read) -> std::io::Result<Vec<u32>> {
    let n = read_u64(r)? as usize;
    let mut out = Vec::new();
    let mut buf = vec![0u8; 4 * n.min(1 << 18)];
    let mut left = n;
    while left > 0 {
        let take = left.min(1 << 18);
        r.read_exact(&mut buf[..4 * take])?;
        out.extend(
            buf[..4 * take]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        left -= take;
    }
    Ok(out)
}

fn read_f32s(r: &mut impl std::io::Read) -> std::io::Result<Vec<f32>> {
    Ok(read_u32s(r)?.into_iter().map(f32::from_bits).collect())
}

/// Per-mode HB-CSF plans for a CPD hot loop: build all formats and capture
/// all plans once (fanned over rayon — mode builds are independent), then
/// replay one plan per MTTKRP call.
pub struct ModePlans {
    plans: Vec<Plan>,
    /// Wall-clock seconds each mode's build+capture took (for manifests).
    pub build_seconds: Vec<f64>,
}

impl ModePlans {
    /// Builds the mode-`m` HB-CSF format and captures its plan, for every
    /// mode of `t`, in parallel.
    pub fn build_hbcsf(
        ctx: &GpuContext,
        t: &CooTensor,
        rank: usize,
        opts: BcsfOptions,
    ) -> ModePlans {
        let built: Vec<(Plan, f64)> = (0..t.order())
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|m| {
                let start = Instant::now();
                let perm = sptensor::mode_orientation(t.order(), m);
                let h = Hbcsf::build(t, &perm, opts);
                let plan = super::hbcsf::plan_impl(ctx, &h, rank);
                (plan, start.elapsed().as_secs_f64())
            })
            .collect();
        let (plans, build_seconds) = built.into_iter().unzip();
        ModePlans {
            plans,
            build_seconds,
        }
    }

    /// Captures plans for pre-built per-mode HB-CSF formats
    /// (`formats[m].perm[0] == m` expected).
    pub fn from_formats(ctx: &GpuContext, formats: &[Hbcsf], rank: usize) -> ModePlans {
        let built: Vec<(Plan, f64)> = formats
            .par_iter()
            .map(|h| {
                let start = Instant::now();
                let plan = super::hbcsf::plan_impl(ctx, h, rank);
                (plan, start.elapsed().as_secs_f64())
            })
            .collect();
        let (plans, build_seconds) = built.into_iter().unzip();
        ModePlans {
            plans,
            build_seconds,
        }
    }

    /// Number of captured modes.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The mode-`mode` plan.
    pub fn plan(&self, mode: usize) -> &Plan {
        &self.plans[mode]
    }

    /// Toggles the const-generic value phase on every captured plan (see
    /// [`Plan::set_rank_specialization`]).
    pub fn set_rank_specialization(&mut self, on: bool) {
        for p in &mut self.plans {
            p.set_rank_specialization(on);
        }
    }

    /// Replays the mode-`mode` plan against `factors`.
    pub fn execute(
        &self,
        ctx: &GpuContext,
        factors: &[Matrix],
        mode: usize,
    ) -> Result<GpuRun, LaunchError> {
        self.plans[mode].execute(ctx, factors)
    }
}
