//! B-CSF GPU MTTKRP kernel — paper Section IV.
//!
//! Work mapping: one thread block per [`BlockAssignment`] (a slice, or a
//! binned piece of a heavy slice), fiber-segments dealt round-robin to the
//! block's warps, rank across lanes. Per fiber-segment a warp reduces its
//! leaves against the leaf-mode factor (Algorithm 3 line 11), folds the
//! result through the fiber's ancestor-chain factor rows (line 13), and
//! accumulates into the block's output-row partial (shared memory). The
//! block commits the partial with a plain store when it owns its slice, or
//! an `atomicAdd` when slc-split shared the slice across blocks — the
//! "extra atomic operations … well tolerated" trade of Section IV-A.
//!
//! With [`BcsfOptions::unsplit`](tensor_formats::BcsfOptions::unsplit) this
//! same kernel *is* the naive GPU-CSF of Table II (see [`crate::gpu::csf`]).

use gpu_sim::{AddressSpace, ArraySpan, BlockWork, Op, WarpWork};
use sptensor::Index;
use tensor_formats::Bcsf;

use super::common::{load_u32s, FactorAddrs, GpuContext};
use super::plan::{MemoryFootprint, Plan, PlanBuilder};

/// Synthetic addresses of the B-CSF arrays.
pub(crate) struct BcsfSpans {
    pub level_ptr: Vec<ArraySpan>,
    pub level_idx: Vec<ArraySpan>,
    pub leaf_idx: ArraySpan,
    pub vals: ArraySpan,
}

impl BcsfSpans {
    pub fn alloc(space: &mut AddressSpace, b: &Bcsf) -> BcsfSpans {
        BcsfSpans {
            level_ptr: b
                .csf
                .level_ptr
                .iter()
                .map(|p| space.alloc_elems(p.len(), 4))
                .collect(),
            level_idx: b
                .csf
                .level_idx
                .iter()
                .map(|i| space.alloc_elems(i.len(), 4))
                .collect(),
            leaf_idx: space.alloc_elems(b.csf.leaf_idx.len(), 4),
            vals: space.alloc_elems(b.csf.vals.len(), 4),
        }
    }
}

/// Captures the B-CSF kernel as a replayable [`Plan`] for rank `rank`;
/// the output mode is `bcsf.csf.perm[0]`.
pub(crate) fn plan_named(ctx: &GpuContext, bcsf: &Bcsf, rank: usize, name: &str) -> Plan {
    let mode = bcsf.csf.perm[0];
    let mut space = AddressSpace::new();
    let fa = FactorAddrs::layout(&mut space, &bcsf.csf.dims, rank, mode);
    let spans = BcsfSpans::alloc(&mut space, bcsf);
    let mut pb = PlanBuilder::new(name, mode, rank, bcsf.csf.dims[mode] as usize);
    pb.set_footprint(MemoryFootprint::from_layout(&space, &fa));
    emit(ctx, bcsf, &fa, &spans, &mut pb);
    pb.finish()
}

/// Emits the kernel's blocks into the builder's launch and records the
/// replay schedule (callable from the HB-CSF composite kernel).
pub(crate) fn emit(
    ctx: &GpuContext,
    bcsf: &Bcsf,
    fa: &FactorAddrs,
    spans: &BcsfSpans,
    pb: &mut PlanBuilder,
) {
    let csf = &bcsf.csf;
    let order = csf.order();
    let fl = order - 2;
    let leaf_mode = csf.perm[order - 1];
    pb.set_leaf_mode(leaf_mode);
    let anc = fiber_ancestors(bcsf);

    for asg in &bcsf.blocks {
        pb.begin_block();
        let mut block = BlockWork::new();
        let i = csf.level_idx[0][asg.slice as usize] as usize;
        let fibers = asg.fibers();
        let nfibers = fibers.len();
        let nwarps = ctx.warps_per_block.min(nfibers).max(1);
        // `.max(1)`: a zero-fiber assignment must not turn into
        // `step_by(0)` (panic) — it emits an empty block instead.
        let per_warp = nfibers.div_ceil(nwarps).max(1);
        let mut warps: Vec<WarpWork> = Vec::with_capacity(nwarps);

        // Contiguous fiber ranges per warp: metadata and leaf streams are
        // then coalesced exactly as the CUDA kernel's batched loads are.
        for chunk_start in (fibers.start..fibers.end).step_by(per_warp) {
            let chunk_end = (chunk_start + per_warp).min(fibers.end);
            let mut w = WarpWork::new();
            // One batched fetch of this warp's fiber pointers + indices.
            load_u32s(
                &mut w,
                spans.level_ptr[fl],
                chunk_start,
                chunk_end - chunk_start + 1,
            );
            load_u32s(
                &mut w,
                spans.level_idx[fl],
                chunk_start,
                chunk_end - chunk_start,
            );
            // One streamed fetch of the warp's whole leaf range.
            let leaf_lo = csf.level_ptr[fl][chunk_start] as usize;
            let leaf_hi = csf.level_ptr[fl][chunk_end] as usize;
            load_u32s(&mut w, spans.leaf_idx, leaf_lo, leaf_hi - leaf_lo);
            load_u32s(&mut w, spans.vals, leaf_lo, leaf_hi - leaf_lo);

            for f in chunk_start..chunk_end {
                let lo = csf.level_ptr[fl][f] as usize;
                let hi = csf.level_ptr[fl][f + 1] as usize;
                // Leaf reduction against the last-mode factor (rank on
                // lanes, Alg. 3 line 11).
                pb.contrib(i, 0.0);
                for z in lo..hi {
                    let k = csf.leaf_idx[z] as usize;
                    fa.load_row(&mut w, leaf_mode, k);
                    w.push(Op::Fma(fa.rank_steps));
                    pb.leaf(csf.vals[z], k);
                }
                // Fold through the fiber's own row and its ancestors' rows
                // (Alg. 3 line 13, generalized to order N).
                let j = csf.level_idx[fl][f] as usize;
                fa.load_row(&mut w, csf.perm[fl], j);
                w.push(Op::Fma(fa.rank_steps));
                pb.chain(csf.perm[fl], j);
                for l in (1..fl).rev() {
                    let c = anc[l - 1][f] as usize;
                    fa.load_row(&mut w, csf.perm[l], c);
                    w.push(Op::Fma(fa.rank_steps));
                    pb.chain(csf.perm[l], c);
                }
            }
            warps.push(w);
        }

        // Cross-warp reduction of the slice partial, committed by warp 0
        // (absent for a zero-fiber block, which emitted no warps at all).
        if let Some(commit) = warps.first_mut() {
            commit.push(Op::Sync(2 * nwarps as u32 * fa.rank_steps));
            if asg.needs_atomic {
                fa.atomic_y(commit, i);
            } else {
                fa.store_y(commit, i);
            }
        }
        block.warps = warps;
        pb.launch.blocks.push(block);
    }
}

/// `anc[l-1][f]` = the level-`l` coordinate above fiber `f`, for internal
/// levels `1 <= l < fiber level` (empty for third-order tensors).
fn fiber_ancestors(bcsf: &Bcsf) -> Vec<Vec<Index>> {
    let csf = &bcsf.csf;
    let order = csf.order();
    let fl = order - 2;
    let num_fibers = csf.level_idx[fl].len();
    let mut anc: Vec<Vec<Index>> = Vec::new();
    for l in 1..fl {
        let mut arr = vec![0 as Index; num_fibers];
        for g in 0..csf.level_idx[l].len() {
            // Fiber range under group g: descend pointers to the fiber level.
            let (mut lo, mut hi) = (g, g + 1);
            for ll in l..fl {
                lo = csf.level_ptr[ll][lo] as usize;
                hi = csf.level_ptr[ll][hi] as usize;
            }
            let c = csf.level_idx[l][g];
            for a in &mut arr[lo..hi] {
                *a = c;
            }
        }
        anc.push(arr);
    }
    anc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{BuildOptions, Executor, GpuRun, KernelKind, LaunchArgs};
    use crate::reference;
    use dense::Matrix;
    use sptensor::synth::{standin, uniform_random, SynthConfig};
    use tensor_formats::BcsfOptions;

    fn build_and_run(
        ctx: &GpuContext,
        t: &sptensor::CooTensor,
        factors: &[Matrix],
        mode: usize,
        opts: BcsfOptions,
    ) -> GpuRun {
        let build = BuildOptions {
            bcsf: opts,
            ..BuildOptions::default()
        };
        Executor::new(ctx.clone())
            .with_build(build)
            .build_run(KernelKind::Bcsf, t, factors, mode)
            .unwrap()
            .run
    }

    #[test]
    fn matches_reference_all_modes_3d() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[20, 24, 28], 1_200, 61);
        let factors = reference::random_factors(&t, 8, 31);
        for mode in 0..3 {
            for opts in [BcsfOptions::default(), BcsfOptions::unsplit()] {
                let run = build_and_run(&ctx, &t, &factors, mode, opts);
                let seq = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&run.y, &seq),
                    "mode {mode} {opts:?} diff {}",
                    run.y.rel_fro_diff(&seq)
                );
            }
        }
    }

    #[test]
    fn matches_reference_order4() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[10, 12, 8, 14], 900, 62);
        let factors = reference::random_factors(&t, 6, 32);
        for mode in 0..4 {
            let run = build_and_run(&ctx, &t, &factors, mode, BcsfOptions::default());
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&run.y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn splitting_improves_skewed_tensor() {
        let ctx = GpuContext::tiny();
        let t = standin("darpa")
            .unwrap()
            .generate(&SynthConfig::tiny().with_nnz(20_000));
        let factors = reference::random_factors(&t, 8, 33);
        let unsplit = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::unsplit());
        let split = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
        assert!(crate::outputs_match(&split.y, &unsplit.y));
        assert!(
            split.sim.makespan_cycles < unsplit.sim.makespan_cycles,
            "split {} should beat unsplit {}",
            split.sim.makespan_cycles,
            unsplit.sim.makespan_cycles
        );
        assert!(split.sim.sm_efficiency > unsplit.sim.sm_efficiency);
    }

    #[test]
    fn split_slices_use_atomics_unsplit_do_not() {
        let ctx = GpuContext::tiny();
        let mut t = sptensor::CooTensor::new(vec![4, 64, 128]);
        for j in 0..64u32 {
            for k in 0..32u32 {
                t.push(&[0, j, k], 1.0); // heavy slice: 2048 nnz
            }
        }
        t.push(&[1, 0, 0], 1.0);
        let factors = reference::random_factors(&t, 4, 34);
        let split = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
        assert!(split.sim.atomic_ops > 0);
        let unsplit = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::unsplit());
        assert_eq!(unsplit.sim.atomic_ops, 0);
        assert!(crate::outputs_match(&split.y, &unsplit.y));
    }

    #[test]
    fn empty_tensor() {
        let ctx = GpuContext::tiny();
        let t = sptensor::CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 35);
        let run = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
        assert!(run.y.data().iter().all(|&v| v == 0.0));
        assert_eq!(run.sim.num_blocks, 0);
    }

    #[test]
    fn zero_fiber_block_assignment_does_not_panic() {
        // Regression: an empty fiber range used to make `per_warp == 0`
        // and panic in `step_by(0)`. It must emit an empty block instead.
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[10, 12, 14], 300, 63);
        let factors = reference::random_factors(&t, 4, 36);
        let perm = sptensor::mode_orientation(3, 0);
        let mut bcsf = Bcsf::build(&t, &perm, BcsfOptions::default());
        let f = bcsf.blocks[0].fiber_begin;
        bcsf.blocks.insert(
            0,
            tensor_formats::BlockAssignment {
                slice: 0,
                fiber_begin: f,
                fiber_end: f,
                needs_atomic: true,
            },
        );
        let run = Executor::new(ctx)
            .run(&bcsf, &LaunchArgs::new(&factors))
            .unwrap()
            .run;
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&run.y, &seq));
    }
}
