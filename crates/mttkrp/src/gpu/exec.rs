//! The execution facade: one entry point owning the context and the
//! whole degradation ladder — full-device, out-of-core tiled,
//! multi-device sharded, ABFT-verified, CPU fallback — behind validated,
//! typed launches.
//!
//! [`Executor`] is what drivers hold. Configure it once (memory, faults,
//! ABFT, grid, format options), then [`Executor::run`] any
//! [`MttkrpKernel`] or [`Executor::execute`] any captured [`Plan`]. This
//! is the only public entry point — the historical per-module
//! `run`/`plan`/`build_and_run` free functions have been removed.

use dense::Matrix;
use sptensor::CooTensor;

use crate::abft::{self, AbftOptions, KernelReport};

use super::common::{GpuContext, GpuRun};
use super::kernel::{AnyFormat, BuildOptions, KernelKind, MttkrpKernel};
use super::ooc::{self, MemReport, OocOptions};
use super::plan::Plan;
use super::sharded::{self, GridReport, GridSpec};

/// A launch rejected before touching the simulator — every condition the
/// old free functions turned into an `assert!` deep inside a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// `factors.len()` disagrees with the tensor order.
    FactorCount { expected: usize, got: usize },
    /// A factor's column count disagrees with the (captured) rank.
    RankMismatch { expected: usize, got: usize },
    /// A factor's row count disagrees with the tensor extent of its mode.
    FactorShape {
        mode: usize,
        expected_rows: usize,
        got_rows: usize,
    },
    /// The requested output mode does not exist for this order.
    ModeOutOfRange { mode: usize, order: usize },
    /// The kernel cannot handle tensors of this order (COO/F-COO are
    /// third-order only, per the paper's figures).
    OrderUnsupported { kernel: &'static str, order: usize },
    /// The configured ladder can reach the CPU reference rung (limited
    /// memory, memory faults, or a sharded fallback), which needs the
    /// COO tensor — attach it with [`LaunchArgs::with_tensor`].
    TensorRequired,
    /// A kernel name that parses to none of the six kinds.
    UnknownKernel(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::FactorCount { expected, got } => {
                write!(f, "expected {expected} factor matrices, got {got}")
            }
            LaunchError::RankMismatch { expected, got } => {
                write!(f, "factors must all have rank {expected}, got {got}")
            }
            LaunchError::FactorShape {
                mode,
                expected_rows,
                got_rows,
            } => write!(
                f,
                "factor for mode {mode} must have {expected_rows} rows, got {got_rows}"
            ),
            LaunchError::ModeOutOfRange { mode, order } => {
                write!(f, "mode {mode} out of range for an order-{order} tensor")
            }
            LaunchError::OrderUnsupported { kernel, order } => {
                write!(
                    f,
                    "kernel '{kernel}' does not support order-{order} tensors"
                )
            }
            LaunchError::TensorRequired => write!(
                f,
                "this configuration can degrade to the CPU reference and needs \
                 the COO tensor (LaunchArgs::with_tensor)"
            ),
            LaunchError::UnknownKernel(s) => write!(f, "unknown kernel '{s}'"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// The validated inputs of one MTTKRP launch, replacing the positional
/// `(ctx, format, factors, mode, rank)` sprawl of the old free
/// functions. The tensor is optional: it is only needed when the ladder
/// can reach the CPU reference rung.
#[derive(Debug, Clone, Copy)]
pub struct LaunchArgs<'a> {
    factors: &'a [Matrix],
    tensor: Option<&'a CooTensor>,
}

impl<'a> LaunchArgs<'a> {
    /// A launch computing MTTKRP against `factors` (one per mode, rank =
    /// column count of each).
    pub fn new(factors: &'a [Matrix]) -> LaunchArgs<'a> {
        LaunchArgs {
            factors,
            tensor: None,
        }
    }

    /// Attaches the COO tensor, enabling the adaptive (out-of-core /
    /// ABFT-verified / CPU-fallback) rungs of the ladder.
    pub fn with_tensor(mut self, t: &'a CooTensor) -> LaunchArgs<'a> {
        self.tensor = Some(t);
        self
    }

    pub fn factors(&self) -> &'a [Matrix] {
        self.factors
    }

    pub fn tensor(&self) -> Option<&'a CooTensor> {
        self.tensor
    }

    /// Checks the factors against a kernel's shape before capture and
    /// returns the launch rank.
    pub fn validate_for_kernel(&self, kernel: &dyn MttkrpKernel) -> Result<usize, LaunchError> {
        let dims = kernel.dims();
        let order = dims.len();
        if self.factors.len() != order {
            return Err(LaunchError::FactorCount {
                expected: order,
                got: self.factors.len(),
            });
        }
        let mode = kernel.output_mode();
        if mode >= order {
            return Err(LaunchError::ModeOutOfRange { mode, order });
        }
        let rank = self.factors[0].cols();
        for (m, f) in self.factors.iter().enumerate() {
            if f.cols() != rank {
                return Err(LaunchError::RankMismatch {
                    expected: rank,
                    got: f.cols(),
                });
            }
            if f.rows() != dims[m] as usize {
                return Err(LaunchError::FactorShape {
                    mode: m,
                    expected_rows: dims[m] as usize,
                    got_rows: f.rows(),
                });
            }
        }
        Ok(rank)
    }

    /// Checks the factors against an already-captured plan (rank and
    /// output shape are frozen at capture).
    pub fn validate_for_plan(&self, plan: &Plan) -> Result<(), LaunchError> {
        let mode = plan.mode();
        if mode >= self.factors.len() {
            return Err(LaunchError::ModeOutOfRange {
                mode,
                order: self.factors.len(),
            });
        }
        for f in self.factors {
            if f.cols() != plan.rank() {
                return Err(LaunchError::RankMismatch {
                    expected: plan.rank(),
                    got: f.cols(),
                });
            }
        }
        if self.factors[mode].rows() != plan.out_rows() {
            return Err(LaunchError::FactorShape {
                mode,
                expected_rows: plan.out_rows(),
                got_rows: self.factors[mode].rows(),
            });
        }
        Ok(())
    }
}

/// Everything one launch produced: the run itself plus whichever ladder
/// reports the configuration activated.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Output, node-level simulation, optional profile, optional ABFT
    /// checksums.
    pub run: GpuRun,
    /// Memory ladder stories (one per attempt; ABFT retries append).
    pub mem: Vec<MemReport>,
    /// ABFT verification report, when verification ran.
    pub abft: Option<KernelReport>,
    /// Multi-device report, when a grid was configured.
    pub grid: Option<GridReport>,
}

impl Execution {
    /// The MTTKRP output.
    pub fn y(&self) -> &Matrix {
        &self.run.y
    }

    /// Folds every report this execution produced into an accumulating
    /// run manifest: memory ladder stories into
    /// [`RunManifest::memory`](simprof::RunManifest), the grid report
    /// into [`RunManifest::grid`](simprof::RunManifest), and ABFT
    /// verification counts into
    /// [`RunManifest::resilience`](simprof::RunManifest). Call once per
    /// launch — records are additive.
    pub fn absorb_into(&self, manifest: &mut simprof::RunManifest) {
        for mem in &self.mem {
            mem.absorb_into(&mut manifest.memory);
        }
        if let Some(g) = &self.grid {
            manifest.grid.merge(&g.to_record());
        }
        if let Some(r) = &self.abft {
            manifest.resilience.merge(&simprof::ResilienceRecord {
                faults_injected: r.faults_injected,
                rows_detected: r.detected_rows.len() as u64,
                kernel_retries: u64::from(r.retries),
                degraded_rows: r.degraded_rows,
                ..simprof::ResilienceRecord::default()
            });
        }
    }
}

/// The unified executor: owns a [`GpuContext`] plus the launch policy
/// (out-of-core knobs, ABFT verification, a multi-device grid, format
/// build options) and dispatches every launch down the right ladder.
#[derive(Debug, Clone)]
pub struct Executor {
    ctx: GpuContext,
    ooc: OocOptions,
    abft: Option<AbftOptions>,
    grid: Option<GridSpec>,
    build: BuildOptions,
}

impl Executor {
    /// An executor over `ctx` with default policy: adaptive out-of-core
    /// when a tensor is attached, no ABFT verification, single device.
    pub fn new(ctx: GpuContext) -> Executor {
        Executor {
            ctx,
            ooc: OocOptions::default(),
            abft: None,
            grid: None,
            build: BuildOptions::default(),
        }
    }

    /// Overrides the out-of-core ladder knobs.
    pub fn with_ooc(mut self, opts: OocOptions) -> Executor {
        self.ooc = opts;
        self
    }

    /// Enables ABFT verification (checksum + recompute-retry) for
    /// launches under an active execution-fault plan. Without this,
    /// faulted launches return their raw (possibly corrupted) output —
    /// the historical `run()` semantics.
    pub fn with_abft(mut self, opts: AbftOptions) -> Executor {
        self.abft = Some(opts);
        self
    }

    /// Routes launches through the multi-device sharded engine.
    pub fn with_grid(mut self, spec: GridSpec) -> Executor {
        self.grid = Some(spec);
        self
    }

    /// Overrides format-construction options for [`Executor::build_run`].
    pub fn with_build(mut self, opts: BuildOptions) -> Executor {
        self.build = opts;
        self
    }

    pub fn ctx(&self) -> &GpuContext {
        &self.ctx
    }

    pub fn grid(&self) -> Option<&GridSpec> {
        self.grid.as_ref()
    }

    /// Validates `args` against `kernel` and captures its [`Plan`].
    pub fn capture(
        &self,
        kernel: &dyn MttkrpKernel,
        args: &LaunchArgs<'_>,
    ) -> Result<Plan, LaunchError> {
        let rank = args.validate_for_kernel(kernel)?;
        Ok(kernel.capture(&self.ctx, rank))
    }

    /// Captures and executes in one call.
    pub fn run(
        &self,
        kernel: &dyn MttkrpKernel,
        args: &LaunchArgs<'_>,
    ) -> Result<Execution, LaunchError> {
        let plan = self.capture(kernel, args)?;
        self.execute(&plan, args)
    }

    /// Builds the `kind` layout of `t` for `mode` (using the executor's
    /// [`BuildOptions`]) and runs it — the one-stop replacement for the
    /// per-module `build_and_run` functions. The tensor is attached
    /// automatically, so the full ladder is available.
    pub fn build_run(
        &self,
        kind: KernelKind,
        t: &CooTensor,
        factors: &[Matrix],
        mode: usize,
    ) -> Result<Execution, LaunchError> {
        let format = AnyFormat::build(kind, t, mode, &self.build)?;
        self.run(&format, &LaunchArgs::new(factors).with_tensor(t))
    }

    /// Executes a captured plan down the configured ladder:
    ///
    /// 1. **Sharded** when a grid with more than one device is set (or
    ///    any grid at all — a one-device grid still routes here so
    ///    device-count sweeps compare like with like).
    /// 2. **ABFT-verified adaptive** when verification is enabled, an
    ///    execution-fault plan is active, and the tensor is attached.
    /// 3. **Adaptive** (full-device / tiled / CPU) when the tensor is
    ///    attached.
    /// 4. **Plain in-core replay** otherwise — requires unlimited,
    ///    fault-free memory, else [`LaunchError::TensorRequired`].
    pub fn execute(&self, plan: &Plan, args: &LaunchArgs<'_>) -> Result<Execution, LaunchError> {
        args.validate_for_plan(plan)?;
        let ctx = &self.ctx;
        self.note_dispatch(plan, args);

        if let Some(spec) = &self.grid {
            return self.execute_gridded(plan, args, spec);
        }

        match args.tensor {
            Some(t) => {
                if ctx.fault_plan().is_some() {
                    if let Some(abft_opts) = &self.abft {
                        let (run, report, mem) = abft::run_verified_adaptive(
                            ctx,
                            t,
                            args.factors,
                            abft_opts,
                            &self.ooc,
                            plan,
                        );
                        return Ok(Execution {
                            run,
                            mem,
                            abft: Some(report),
                            grid: None,
                        });
                    }
                }
                let (run, mem) = ooc::execute_adaptive(ctx, plan, args.factors, t, &self.ooc);
                Ok(Execution {
                    run,
                    mem: vec![mem],
                    abft: None,
                    grid: None,
                })
            }
            None => {
                // No tensor: no CPU rung exists, so refuse configurations
                // that could need one instead of failing mid-ladder.
                if !ctx.memory.is_unlimited() || ctx.mem_fault_plan().is_some() {
                    return Err(LaunchError::TensorRequired);
                }
                let run = plan.execute(ctx, args.factors)?;
                Ok(Execution {
                    run,
                    mem: Vec::new(),
                    abft: None,
                    grid: None,
                })
            }
        }
    }

    /// Emits a `dispatch` event naming the ladder rung the executor chose
    /// for this launch, before the rung runs.
    fn note_dispatch(&self, plan: &Plan, args: &LaunchArgs<'_>) {
        let tel = &self.ctx.telemetry;
        if !tel.enabled() {
            return;
        }
        let rung = if self.grid.is_some() {
            "gridded"
        } else if args.tensor.is_some() && self.ctx.fault_plan().is_some() && self.abft.is_some() {
            "verified-adaptive"
        } else if args.tensor.is_some() {
            "adaptive"
        } else {
            "plain"
        };
        let mut fields = vec![
            ("kernel", simprof::FieldValue::from(plan.name())),
            ("mode", simprof::FieldValue::from(plan.mode())),
            ("rung", simprof::FieldValue::from(rung)),
        ];
        if let Some(spec) = &self.grid {
            fields.push(("devices", simprof::FieldValue::from(spec.devices)));
        }
        tel.emit("dispatch", None, tel.new_span(), &fields);
    }

    fn execute_gridded(
        &self,
        plan: &Plan,
        args: &LaunchArgs<'_>,
        spec: &GridSpec,
    ) -> Result<Execution, LaunchError> {
        let ctx = &self.ctx;
        if let (Some(t), Some(abft_opts), true) =
            (args.tensor, self.abft.as_ref(), ctx.fault_plan().is_some())
        {
            // Verified sharded execution: the sharded engine is the
            // kernel under test; ABFT wraps it with the same
            // checksum/retry loop as the single-device path.
            use std::cell::RefCell;
            let grids: RefCell<Vec<GridReport>> = RefCell::new(Vec::new());
            let result: RefCell<Option<LaunchError>> = RefCell::new(None);
            let (run, report) =
                abft::run_verified(ctx, t, args.factors, plan.mode(), abft_opts, |c| {
                    match sharded::execute_sharded(c, plan, args.factors, Some(t), spec, &self.ooc)
                    {
                        Ok((run, grid)) => {
                            grids.borrow_mut().push(grid);
                            run
                        }
                        Err(e) => {
                            // Unreachable with a tensor attached; recorded
                            // defensively.
                            *result.borrow_mut() = Some(e);
                            GpuRun {
                                y: Matrix::zeros(plan.out_rows(), plan.rank()),
                                sim: ooc::cpu_fallback_sim(plan),
                                profile: None,
                                abft: None,
                            }
                        }
                    }
                });
            if let Some(e) = result.into_inner() {
                return Err(e);
            }
            let grid = merge_grid_reports(grids.into_inner());
            return Ok(Execution {
                run,
                mem: Vec::new(),
                abft: Some(report),
                grid,
            });
        }
        let (run, grid) =
            sharded::execute_sharded(ctx, plan, args.factors, args.tensor, spec, &self.ooc)?;
        Ok(Execution {
            run,
            mem: Vec::new(),
            abft: None,
            grid: Some(grid),
        })
    }
}

/// Folds the grid reports of ABFT retries into one: times, wire volume,
/// and per-device counters accumulate across attempts (the attempts
/// really ran back to back), high-water marks take the max, and a CPU
/// fallback on any attempt marks the merged report. Attempt reports
/// share the grid spec, so shards line up by position (= device
/// ordinal).
fn merge_grid_reports(reports: Vec<GridReport>) -> Option<GridReport> {
    let mut it = reports.into_iter();
    let mut acc = it.next()?;
    for r in it {
        acc.compute_seconds += r.compute_seconds;
        acc.allreduce_seconds += r.allreduce_seconds;
        acc.allreduce_bytes += r.allreduce_bytes;
        acc.total_seconds += r.total_seconds;
        acc.cpu_fallback |= r.cpu_fallback;
        acc.wasted_seconds += r.wasted_seconds;
        for d in r.lost_devices {
            if !acc.lost_devices.contains(&d) {
                acc.lost_devices.push(d);
            }
        }
        acc.lost_devices.sort_unstable();
        for (a, b) in acc.shards.iter_mut().zip(&r.shards) {
            a.tiles_run += b.tiles_run;
            a.oom_events += b.oom_events;
            a.high_water_bytes = a.high_water_bytes.max(b.high_water_bytes);
            a.sim_time_s += b.sim_time_s;
            a.makespan_cycles += b.makespan_cycles;
            a.total_flops += b.total_flops;
            a.in_core &= b.in_core;
        }
    }
    Some(acc)
}
