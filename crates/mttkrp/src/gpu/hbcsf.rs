//! HB-CSF composite GPU MTTKRP — paper Algorithm 5 lines 18-20.
//!
//! One fused launch containing the three specialized sub-kernels:
//!
//! * **B-CSF blocks** for the multi-leaf-fiber slices (heavy end),
//! * **CSL warps** for all-singleton-fiber slices (no fiber indirection,
//!   many slices packed per warp),
//! * **COO warps** for single-nonzero slices (full coordinates, one plain
//!   store each — the row is touched exactly once, so no atomics).
//!
//! The three groups write disjoint output rows by construction, so the only
//! atomics are B-CSF's slc-split commits.

use gpu_sim::{AddressSpace, BlockWork, Op, WarpWork};
use tensor_formats::Hbcsf;

use super::bcsf::BcsfSpans;
use super::common::{load_u32s, FactorAddrs, GpuContext};
use super::csl::CslSpans;
use super::plan::{MemoryFootprint, Plan, PlanBuilder};

/// Captures the composite kernel as a replayable [`Plan`] for rank
/// `rank`: one fused launch, block indices running across the three
/// groups, output mode `h.perm[0]`. The capture body behind [`Hbcsf`]'s
/// `MttkrpKernel` impl and [`super::plan::ModePlans`].
pub(crate) fn plan_impl(ctx: &GpuContext, h: &Hbcsf, rank: usize) -> Plan {
    let mode = h.perm[0];
    let mut pb = PlanBuilder::new("hb-csf", mode, rank, h.dims[mode] as usize);
    capture_into(ctx, h, rank, &mut pb);
    pb.finish()
}

/// The capture body behind [`plan_impl`], parameterized over the builder
/// so the streaming capture (`super::stream`) can run it with a
/// weights-only or shard-filtered builder. The emit sequence — and with
/// it every block ordinal and weight — is identical regardless of what
/// the builder retains.
pub(crate) fn capture_into(ctx: &GpuContext, h: &Hbcsf, rank: usize, pb: &mut PlanBuilder) {
    let mode = h.perm[0];
    let mut space = AddressSpace::new();
    let fa = FactorAddrs::layout(&mut space, &h.dims, rank, mode);
    let bcsf_spans = BcsfSpans::alloc(&mut space, &h.bcsf);
    let csl_spans = CslSpans::alloc(&mut space, &h.csl);
    let coo_spans: Vec<_> = h
        .coo_coord
        .iter()
        .map(|a| space.alloc_elems(a.len(), 4))
        .collect();
    let coo_vals_span = space.alloc_elems(h.coo_vals.len(), 4);

    // One builder across all three groups: fault draws key on the fused
    // launch's name and launch-wide block index, matching the scheduler.
    pb.set_footprint(MemoryFootprint::from_layout(&space, &fa));

    // Heavy group first: the longest blocks enter the SM schedule earliest,
    // which is the standard heavy-first heuristic a real launch order uses.
    super::bcsf::emit(ctx, &h.bcsf, &fa, &bcsf_spans, pb);
    super::csl::emit(ctx, &h.csl, &fa, &csl_spans, pb);
    emit_coo_group(ctx, h, &fa, &coo_spans, coo_vals_span, pb);
}

/// COO group: warps of 32 single-nonzero slices, plain stores.
fn emit_coo_group(
    ctx: &GpuContext,
    h: &Hbcsf,
    fa: &FactorAddrs,
    coord_spans: &[gpu_sim::ArraySpan],
    vals_span: gpu_sim::ArraySpan,
    pb: &mut PlanBuilder,
) {
    let m = h.coo_vals.len();
    let per_block = 32 * ctx.warps_per_block;
    for block_start in (0..m).step_by(per_block) {
        pb.begin_block();
        let mut block = BlockWork::new();
        let block_end = (block_start + per_block).min(m);
        for warp_start in (block_start..block_end).step_by(32) {
            let warp_end = (warp_start + 32).min(block_end);
            let len = warp_end - warp_start;
            let mut w = WarpWork::new();
            for span in coord_spans {
                load_u32s(&mut w, *span, warp_start, len);
            }
            load_u32s(&mut w, vals_span, warp_start, len);
            for e in warp_start..warp_end {
                let i = h.coo_coord[0][e] as usize;
                pb.contrib(i, h.coo_vals[e]);
                for (l, &pm) in h.perm[1..].iter().enumerate() {
                    let c = h.coo_coord[l + 1][e] as usize;
                    fa.load_row(&mut w, pm, c);
                    w.push(Op::Fma(fa.rank_steps));
                    pb.chain(pm, c);
                }
                // Single-nonzero slice: the row is written exactly once.
                fa.store_y(&mut w, i);
            }
            block.warps.push(w);
        }
        pb.launch.blocks.push(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{BuildOptions, Executor, GpuRun, KernelKind};
    use crate::reference;
    use dense::Matrix;
    use sptensor::synth::{standin, uniform_random, SynthConfig};
    use sptensor::CooTensor;
    use tensor_formats::BcsfOptions;

    fn build_and_run(
        ctx: &GpuContext,
        t: &CooTensor,
        factors: &[Matrix],
        mode: usize,
        opts: BcsfOptions,
    ) -> GpuRun {
        let build = BuildOptions {
            bcsf: opts,
            ..BuildOptions::default()
        };
        Executor::new(ctx.clone())
            .with_build(build)
            .build_run(KernelKind::Hbcsf, t, factors, mode)
            .unwrap()
            .run
    }

    #[test]
    fn matches_reference_all_modes_3d() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[16, 20, 24], 1_000, 101);
        let factors = reference::random_factors(&t, 8, 71);
        for mode in 0..3 {
            let run = build_and_run(&ctx, &t, &factors, mode, BcsfOptions::default());
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(
                crate::outputs_match(&run.y, &seq),
                "mode {mode} diff {}",
                run.y.rel_fro_diff(&seq)
            );
        }
    }

    #[test]
    fn matches_reference_order4() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[10, 8, 12, 9], 800, 102);
        let factors = reference::random_factors(&t, 6, 72);
        for mode in 0..4 {
            let run = build_and_run(&ctx, &t, &factors, mode, BcsfOptions::default());
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&run.y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn correct_on_every_3d_standin() {
        let ctx = GpuContext::tiny();
        let cfg = SynthConfig::tiny();
        for name in sptensor::synth::standin_names_3d() {
            let t = standin(name).unwrap().generate(&cfg);
            let factors = reference::random_factors(&t, 8, 73);
            let run = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
            let seq = reference::mttkrp(&t, &factors, 0);
            assert!(
                crate::outputs_match(&run.y, &seq),
                "{name} diff {}",
                run.y.rel_fro_diff(&seq)
            );
        }
    }

    #[test]
    fn beats_naive_csf_on_singleton_dominated_tensor() {
        // flick-like data: GPU-CSF launches a micro-block per slice while
        // HB-CSF packs the CSL/COO groups densely — Fig. 8's mechanism.
        let ctx = GpuContext::tiny();
        let t = standin("flick-3d").unwrap().generate(&SynthConfig::tiny());
        let factors = reference::random_factors(&t, 8, 74);
        let hb = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
        let naive = Executor::new(ctx.clone())
            .build_run(KernelKind::Csf, &t, &factors, 0)
            .unwrap()
            .run;
        assert!(crate::outputs_match(&hb.y, &naive.y));
        assert!(
            hb.sim.makespan_cycles < naive.sim.makespan_cycles,
            "hb {} vs naive {}",
            hb.sim.makespan_cycles,
            naive.sim.makespan_cycles
        );
    }

    #[test]
    fn coo_and_csl_groups_emit_no_atomics() {
        let ctx = GpuContext::tiny();
        // Hand-built tensor: slice 0..9 hold one nonzero each (COO group),
        // slices 10..19 hold 8 singleton fibers each (CSL group, all far
        // below the warp quota). No B-CSF group, no chunking -> no atomics.
        let mut t = CooTensor::new(vec![20, 500, 50]);
        for s in 0..10u32 {
            t.push(&[s, s * 3, s % 50], 1.0);
        }
        for s in 10..20u32 {
            for f in 0..8u32 {
                t.push(&[s, 20 * s + f, (s + f) % 50], 1.0);
            }
        }
        let factors = reference::random_factors(&t, 8, 75);
        let run = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
        assert_eq!(run.sim.atomic_ops, 0);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&run.y, &seq));
    }

    #[test]
    fn empty_tensor() {
        let ctx = GpuContext::tiny();
        let t = CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 76);
        let run = build_and_run(&ctx, &t, &factors, 0, BcsfOptions::default());
        assert_eq!(run.sim.num_blocks, 0);
    }
}
