//! CSL GPU MTTKRP — paper Algorithm 4.
//!
//! CSL slices are flat nonzero runs (no fiber level), so the kernel packs
//! *multiple slices per warp* (cutting at slice boundaries, ~128 nonzeros
//! per warp) instead of dedicating a block per slice — this packing is why
//! the ultra-sparse groups of HB-CSF keep the GPU occupied where GPU-CSF's
//! block-per-slice mapping starves it. A slice fully owned by one warp is
//! committed with a plain store; slices bigger than a warp's quota are
//! chunked across warps with atomic commits.

use gpu_sim::{AddressSpace, ArraySpan, BlockWork, Op, WarpWork};
use tensor_formats::Csl;

use super::common::{load_u32s, FactorAddrs, GpuContext};
use super::plan::{MemoryFootprint, Plan, PlanBuilder};

/// Target nonzeros per warp. One 32-wide chunk keeps CSL's block
/// granularity (16 warps × 32 = 512 nonzeros) identical to B-CSF's binning,
/// so the hybrid's groups balance against each other on the SM schedule.
pub const NNZ_PER_WARP: usize = 32;

pub(crate) struct CslSpans {
    pub slice_ptr: ArraySpan,
    pub slice_idx: ArraySpan,
    pub coord: Vec<ArraySpan>,
    pub vals: ArraySpan,
}

impl CslSpans {
    pub fn alloc(space: &mut AddressSpace, c: &Csl) -> CslSpans {
        CslSpans {
            slice_ptr: space.alloc_elems(c.slice_ptr.len(), 4),
            slice_idx: space.alloc_elems(c.slice_idx.len(), 4),
            coord: c
                .coord
                .iter()
                .map(|a| space.alloc_elems(a.len(), 4))
                .collect(),
            vals: space.alloc_elems(c.vals.len(), 4),
        }
    }
}

/// One warp's packed work: `(slice, z_lo, z_hi, atomic_commit)` items.
type WarpJob = Vec<(usize, usize, usize, bool)>;

/// Packs slices into warp jobs: whole small slices share warps; oversized
/// slices are chunked with atomic commits.
fn pack_warps(csl: &Csl, quota: usize) -> Vec<WarpJob> {
    let mut jobs: Vec<WarpJob> = Vec::new();
    let mut cur: WarpJob = Vec::new();
    let mut cur_nnz = 0usize;
    for s in 0..csl.num_slices() {
        let range = csl.slice_range(s);
        let len = range.len();
        if len > quota {
            if !cur.is_empty() {
                jobs.push(std::mem::take(&mut cur));
                cur_nnz = 0;
            }
            let mut lo = range.start;
            while lo < range.end {
                let hi = (lo + quota).min(range.end);
                jobs.push(vec![(s, lo, hi, true)]);
                lo = hi;
            }
            continue;
        }
        if cur_nnz + len > quota && !cur.is_empty() {
            jobs.push(std::mem::take(&mut cur));
            cur_nnz = 0;
        }
        cur.push((s, range.start, range.end, false));
        cur_nnz += len;
    }
    if !cur.is_empty() {
        jobs.push(cur);
    }
    jobs
}

/// Captures the CSL kernel as a replayable [`Plan`] for rank `rank`;
/// output mode is `csl.perm[0]`. The capture body behind [`Csl`]'s
/// `MttkrpKernel` impl.
pub(crate) fn plan_impl(ctx: &GpuContext, csl: &Csl, rank: usize) -> Plan {
    let mode = csl.perm[0];
    let mut space = AddressSpace::new();
    let fa = FactorAddrs::layout(&mut space, &csl.dims, rank, mode);
    let spans = CslSpans::alloc(&mut space, csl);
    let mut pb = PlanBuilder::new("csl", mode, rank, csl.dims[mode] as usize);
    pb.set_footprint(MemoryFootprint::from_layout(&space, &fa));
    emit(ctx, csl, &fa, &spans, &mut pb);
    pb.finish()
}

/// Emits the CSL kernel into the builder's launch and replay schedule.
pub(crate) fn emit(
    ctx: &GpuContext,
    csl: &Csl,
    fa: &FactorAddrs,
    spans: &CslSpans,
    pb: &mut PlanBuilder,
) {
    let order = csl.order();
    let jobs = pack_warps(csl, NNZ_PER_WARP);

    for block_jobs in jobs.chunks(ctx.warps_per_block) {
        pb.begin_block();
        let mut block = BlockWork::new();
        for job in block_jobs {
            let mut w = WarpWork::new();
            // Batched metadata fetch: a job's slices are consecutive, so
            // one coalesced load covers all its pointers and indices, and
            // one streamed span covers its whole nonzero range.
            if let (Some(&(s0, z0, _, _)), Some(&(s1, _, z1, _))) = (job.first(), job.last()) {
                load_u32s(&mut w, spans.slice_ptr, s0, s1 - s0 + 2);
                load_u32s(&mut w, spans.slice_idx, s0, s1 - s0 + 1);
                for span in &spans.coord {
                    load_u32s(&mut w, *span, z0, z1 - z0);
                }
                load_u32s(&mut w, spans.vals, z0, z1 - z0);
            }
            for &(s, lo, hi, atomic) in job {
                let i = csl.slice_idx[s] as usize;
                for z in lo..hi {
                    // Alg. 4 line 9: Y(i,:) += val × Π product-mode rows —
                    // no per-fiber reduction, no extra addition.
                    pb.contrib(i, csl.vals[z]);
                    for (l, span_mode) in csl.perm[1..].iter().enumerate() {
                        let c = csl.coord[l][z] as usize;
                        fa.load_row(&mut w, *span_mode, c);
                        w.push(Op::Fma(fa.rank_steps));
                        pb.chain(*span_mode, c);
                    }
                }
                if atomic {
                    fa.atomic_y(&mut w, i);
                } else {
                    fa.store_y(&mut w, i);
                }
            }
            block.warps.push(w);
        }
        pb.launch.blocks.push(block);
    }
    let _ = order;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{Executor, GpuRun, KernelKind};
    use crate::reference;
    use dense::Matrix;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    fn build_and_run(
        ctx: &GpuContext,
        t: &sptensor::CooTensor,
        factors: &[Matrix],
        mode: usize,
    ) -> GpuRun {
        Executor::new(ctx.clone())
            .build_run(KernelKind::Csl, t, factors, mode)
            .unwrap()
            .run
    }

    #[test]
    fn matches_reference_all_modes() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[20, 22, 24], 900, 81);
        let factors = reference::random_factors(&t, 8, 51);
        for mode in 0..3 {
            let run = build_and_run(&ctx, &t, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(
                crate::outputs_match(&run.y, &seq),
                "mode {mode} diff {}",
                run.y.rel_fro_diff(&seq)
            );
        }
    }

    #[test]
    fn matches_reference_order4() {
        let ctx = GpuContext::tiny();
        let t = uniform_random(&[8, 10, 12, 14], 700, 82);
        let factors = reference::random_factors(&t, 4, 52);
        for mode in 0..4 {
            let run = build_and_run(&ctx, &t, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&run.y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn small_slices_pack_many_per_warp() {
        let t = standin("fr_m")
            .unwrap()
            .generate(&SynthConfig::tiny().with_nnz(20_000));
        let perm = sptensor::mode_orientation(3, 0);
        let csl = Csl::build(&t, &perm);
        let jobs = pack_warps(&csl, NNZ_PER_WARP);
        // Warps that pack whole slices must dominate, and within them the
        // mean slices per warp must be well above 1 for freebase-like data.
        let packed: Vec<&WarpJob> = jobs.iter().filter(|j| !j[0].3).collect();
        let packed_slices: usize = packed.iter().map(|j| j.len()).sum();
        assert!(
            packed_slices as f64 / packed.len() as f64 > 3.0,
            "mean slices per packed warp too low"
        );
        // Only the rare over-quota slices are chunked with atomics: the
        // number of *distinct* chunked slices must be a tiny fraction of
        // all slices (their chunk counts can be large — that is the heavy
        // tail itself, not a packing defect).
        let chunked: std::collections::HashSet<usize> = jobs
            .iter()
            .flatten()
            .filter(|&&(_, _, _, a)| a)
            .map(|&(s, _, _, _)| s)
            .collect();
        assert!(
            (chunked.len() as f64) < 0.05 * csl.num_slices() as f64,
            "{} of {} slices chunked",
            chunked.len(),
            csl.num_slices()
        );
    }

    #[test]
    fn oversized_slice_is_chunked_with_atomics() {
        let mut t = sptensor::CooTensor::new(vec![2, 600, 2]);
        for j in 0..600u32 {
            t.push(&[0, j, 0], 1.0);
        }
        let ctx = GpuContext::tiny();
        let factors = reference::random_factors(&t, 4, 53);
        let run = build_and_run(&ctx, &t, &factors, 0);
        assert!(run.sim.atomic_ops > 0);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&run.y, &seq));
    }

    #[test]
    fn empty_tensor() {
        let ctx = GpuContext::tiny();
        let t = sptensor::CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 54);
        let run = build_and_run(&ctx, &t, &factors, 0);
        assert_eq!(run.sim.num_blocks, 0);
        assert!(run.y.data().iter().all(|&v| v == 0.0));
    }
}
