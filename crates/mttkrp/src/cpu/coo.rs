//! Nonzero-parallel COO MTTKRP with atomic output updates — the
//! ParTI-OpenMP strategy ("performs an atomic add when combining nonzero
//! products to the same data").

use std::sync::atomic::{AtomicU32, Ordering};

use dense::Matrix;
use rayon::prelude::*;
use sptensor::CooTensor;

use crate::reference::check_shapes;

/// Parallel mode-`mode` MTTKRP over nonzeros; output rows are updated with
/// compare-and-swap float adds, mirroring OpenMP `atomic` updates.
pub fn mttkrp(t: &CooTensor, factors: &[Matrix], mode: usize) -> Matrix {
    let (order, r) = check_shapes(t, factors, mode);
    let rows = t.dims()[mode] as usize;
    let y: Vec<AtomicU32> = (0..rows * r).map(|_| AtomicU32::new(0)).collect();

    let chunk = 4096.max(t.nnz() / (rayon::current_num_threads() * 8).max(1));
    (0..t.nnz())
        .into_par_iter()
        .with_min_len(chunk)
        .for_each_init(
            || vec![0.0f32; r],
            |acc, z| {
                let v = t.values()[z];
                for a in acc.iter_mut() {
                    *a = v;
                }
                for m in 0..order {
                    if m == mode {
                        continue;
                    }
                    let row = factors[m].row(t.mode_indices(m)[z] as usize);
                    for (a, &f) in acc.iter_mut().zip(row) {
                        *a *= f;
                    }
                }
                let base = t.mode_indices(mode)[z] as usize * r;
                for (c, &a) in acc.iter().enumerate() {
                    atomic_add_f32(&y[base + c], a);
                }
            },
        );

    let data = y
        .into_iter()
        .map(|a| f32::from_bits(a.into_inner()))
        .collect();
    Matrix::from_vec(rows, r, data)
}

/// CAS-loop float add (the portable equivalent of CUDA/OpenMP atomicAdd).
#[inline]
pub(crate) fn atomic_add_f32(cell: &AtomicU32, v: f32) {
    if v == 0.0 {
        return;
    }
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::uniform_random;

    #[test]
    fn matches_reference_all_modes() {
        let t = uniform_random(&[30, 40, 50], 2_000, 17);
        let factors = reference::random_factors(&t, 8, 3);
        for mode in 0..3 {
            let par = mttkrp(&t, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(
                crate::outputs_match(&par, &seq),
                "mode {mode} diff {}",
                par.rel_fro_diff(&seq)
            );
        }
    }

    #[test]
    fn matches_reference_order4() {
        let t = uniform_random(&[10, 12, 14, 16], 1_500, 18);
        let factors = reference::random_factors(&t, 5, 4);
        for mode in 0..4 {
            let par = mttkrp(&t, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&par, &seq), "mode {mode}");
        }
    }

    #[test]
    fn hot_row_contention_is_correct() {
        // Every nonzero hits output row 0: maximal atomic contention.
        let mut t = sptensor::CooTensor::new(vec![2, 64, 64]);
        for j in 0..64u32 {
            for k in 0..32u32 {
                t.push(&[0, j, k], 0.5);
            }
        }
        let factors = reference::random_factors(&t, 4, 5);
        let par = mttkrp(&t, &factors, 0);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&par, &seq));
    }

    #[test]
    fn empty_tensor() {
        let t = sptensor::CooTensor::new(vec![4, 4, 4]);
        let factors = reference::random_factors(&t, 3, 6);
        let y = mttkrp(&t, &factors, 2);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
