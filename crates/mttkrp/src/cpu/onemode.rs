//! SPLATT's ONEMODE configuration: one CSF tree serves every mode.
//!
//! ALLMODE (the paper's benchmark setting) stores `N` CSF trees, one per
//! output mode, so every MTTKRP has its output mode at the root and needs
//! no synchronization. ONEMODE stores a *single* tree and computes the
//! other modes' MTTKRPs on it with the internal-node algorithm (Smith &
//! Karypis): for output mode at tree depth `d`, each depth-`d` node
//! contributes
//!
//! ```text
//! Y(c_d, :) += (Π_{l<d} F_l(c_l, :)) ∗ (Σ_subtree val · Π_{l>d} F_l(c_l, :))
//! ```
//!
//! — the product of its ancestors' factor rows (top-down) Hadamard the
//! factored sum of its subtree (bottom-up, shared with Algorithm 3's
//! `accumulate`). Different slices can now update the same output row, so
//! updates are atomic; that extra synchronization plus the lost factoring
//! is the "performance degradation" the paper cites when explaining why
//! it benchmarks SPLATT in ALLMODE. This module exists to make that
//! trade-off measurable (see the `onemode_vs_allmode` bench).

use std::sync::atomic::AtomicU32;

use dense::Matrix;
use rayon::prelude::*;
use sptensor::dims::mode_orientation;
use sptensor::CooTensor;
use tensor_formats::Csf;

use super::coo::atomic_add_f32;
use super::row_writer::RowWriter;
use super::splatt::accumulate;
use crate::reference::check_shapes;

/// A single-tree SPLATT representation serving all modes.
#[derive(Debug, Clone)]
pub struct SplattOneMode {
    /// The mode at the tree root (SPLATT picks the longest mode by
    /// default; any choice is valid).
    pub root_mode: usize,
    pub csf: Csf,
}

impl SplattOneMode {
    /// Builds the single tree with `root_mode` at the root.
    pub fn build(t: &CooTensor, root_mode: usize) -> SplattOneMode {
        let perm = mode_orientation(t.order(), root_mode);
        SplattOneMode {
            root_mode,
            csf: Csf::build(t, &perm),
        }
    }

    /// Builds with SPLATT's default root heuristic: the longest mode
    /// (maximizes compression of the leaf levels).
    pub fn build_default_root(t: &CooTensor) -> SplattOneMode {
        let root = (0..t.order())
            .max_by_key(|&m| t.dims()[m])
            .expect("tensor has at least one mode");
        SplattOneMode::build(t, root)
    }

    /// Mode-`mode` MTTKRP on the single tree.
    ///
    /// # Panics
    /// If factor shapes disagree with the tensor.
    pub fn mttkrp(&self, factors: &[Matrix], mode: usize) -> Matrix {
        let order = self.csf.order();
        assert!(mode < order, "mode out of range");
        let r = factors[0].cols();
        for (m, f) in factors.iter().enumerate() {
            assert_eq!(f.rows(), self.csf.dims[m] as usize, "factor {m} rows");
            assert_eq!(f.cols(), r, "factor {m} rank");
        }
        let depth = self
            .csf
            .perm
            .iter()
            .position(|&m| m == mode)
            .expect("mode must appear in the permutation");
        if depth == 0 {
            self.mttkrp_root(factors, r)
        } else {
            self.mttkrp_internal(factors, r, depth)
        }
    }

    /// Root-mode path: identical to Algorithm 3 (exclusive output rows).
    fn mttkrp_root(&self, factors: &[Matrix], r: usize) -> Matrix {
        let csf = &self.csf;
        let order = csf.order();
        let rows = csf.dims[csf.perm[0]] as usize;
        let mut y = Matrix::zeros(rows, r);
        {
            let writer = RowWriter::new(y.data_mut(), rows, r);
            let facs: Vec<&Matrix> = (1..order).map(|l| &factors[csf.perm[l]]).collect();
            (0..csf.num_slices()).into_par_iter().for_each_init(
                || vec![vec![0.0f32; r]; order - 1],
                |scratch, s| {
                    scratch[0].fill(0.0);
                    accumulate(csf, 0, s, &facs, scratch);
                    let i = csf.level_idx[0][s] as usize;
                    // SAFETY: root-level indices are unique per slice.
                    let out = unsafe { writer.row_mut(i) };
                    for (o, &v) in out.iter_mut().zip(&scratch[0]) {
                        *o += v;
                    }
                },
            );
        }
        y
    }

    /// Internal/leaf-mode path: top-down ancestor products meet bottom-up
    /// subtree sums at depth `depth`; output rows repeat across slices, so
    /// updates are atomic.
    fn mttkrp_internal(&self, factors: &[Matrix], r: usize, depth: usize) -> Matrix {
        let csf = &self.csf;
        let order = csf.order();
        let out_mode = csf.perm[depth];
        let rows = csf.dims[out_mode] as usize;
        let y: Vec<AtomicU32> = (0..rows * r).map(|_| AtomicU32::new(0)).collect();

        // Factor of the mode stored at each tree level.
        let level_facs: Vec<&Matrix> = (0..order).map(|l| &factors[csf.perm[l]]).collect();
        // Factors below `depth`, as `accumulate` expects (facs[0] = level
        // depth+1's factor).
        let below: Vec<&Matrix> = (depth + 1..order).map(|l| &factors[csf.perm[l]]).collect();

        (0..csf.num_slices()).into_par_iter().for_each_init(
            || Scratch {
                top: vec![vec![0.0f32; r]; depth + 1],
                bottom: vec![vec![0.0f32; r]; (order - 1 - depth).max(1)],
            },
            |scr, s| {
                // π at level 0 = the root's own factor row.
                let root_row = level_facs[0].row(csf.level_idx[0][s] as usize);
                scr.top[0].copy_from_slice(root_row);
                walk(
                    csf,
                    1,
                    csf.children(0, s),
                    depth,
                    &level_facs,
                    &below,
                    scr,
                    &y,
                    r,
                );
            },
        );

        let data = y
            .into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect();
        Matrix::from_vec(rows, r, data)
    }
}

struct Scratch {
    /// `top[l]` = Π of factor rows of levels `0..=l-1`... indexed so that
    /// `top[l-1]` holds the product of ancestors of a level-`l` node.
    top: Vec<Vec<f32>>,
    bottom: Vec<Vec<f32>>,
}

/// Descends from `level` (whose parent product is `scr.top[level-1]`)
/// towards `depth`, then combines with the bottom-up subtree sum.
#[allow(clippy::too_many_arguments)]
fn walk(
    csf: &Csf,
    level: usize,
    groups: std::ops::Range<usize>,
    depth: usize,
    level_facs: &[&Matrix],
    below: &[&Matrix],
    scr: &mut Scratch,
    y: &[AtomicU32],
    r: usize,
) {
    let order = csf.order();
    let nlev = order - 1;
    if level == depth {
        if depth == order - 1 {
            // Leaf output mode: `groups` are leaf indices.
            for z in groups {
                let pi = &scr.top[depth - 1];
                let k = csf.leaf_idx[z] as usize;
                let v = csf.vals[z];
                for c in 0..r {
                    atomic_add_f32(&y[k * r + c], v * pi[c]);
                }
            }
        } else {
            for g in groups {
                // Bottom-up factored sum of g's subtree.
                scr.bottom[0].fill(0.0);
                accumulate(csf, depth, g, below, &mut scr.bottom);
                let pi = &scr.top[depth - 1];
                let i = csf.level_idx[depth][g] as usize;
                for c in 0..r {
                    atomic_add_f32(&y[i * r + c], pi[c] * scr.bottom[0][c]);
                }
            }
        }
        return;
    }
    for g in groups {
        // Extend the ancestor product with this node's factor row.
        let row = level_facs[level].row(csf.level_idx[level][g] as usize);
        let (upper, lower) = scr.top.split_at_mut(level);
        for ((t, &p), &f) in lower[0].iter_mut().zip(&upper[level - 1]).zip(row) {
            *t = p * f;
        }
        let children = if level < nlev {
            csf.children(level, g)
        } else {
            unreachable!("walk never descends past the fiber level")
        };
        walk(
            csf,
            level + 1,
            children,
            depth,
            level_facs,
            below,
            scr,
            y,
            r,
        );
    }
}

/// Convenience one-shot.
pub fn mttkrp(t: &CooTensor, factors: &[Matrix], mode: usize, root_mode: usize) -> Matrix {
    check_shapes(t, factors, mode);
    SplattOneMode::build(t, root_mode).mttkrp(factors, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    #[test]
    fn matches_reference_every_mode_and_root_3d() {
        let t = uniform_random(&[14, 18, 22], 900, 71);
        let factors = reference::random_factors(&t, 6, 17);
        for root in 0..3 {
            let om = SplattOneMode::build(&t, root);
            for mode in 0..3 {
                let y = om.mttkrp(&factors, mode);
                let expected = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&y, &expected),
                    "root {root} mode {mode} diff {}",
                    y.rel_fro_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn matches_reference_every_mode_and_root_4d() {
        let t = uniform_random(&[8, 10, 12, 9], 700, 72);
        let factors = reference::random_factors(&t, 4, 18);
        for root in 0..4 {
            let om = SplattOneMode::build(&t, root);
            for mode in 0..4 {
                let y = om.mttkrp(&factors, mode);
                let expected = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&y, &expected),
                    "root {root} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn default_root_is_longest_mode() {
        let t = uniform_random(&[5, 50, 10], 200, 73);
        let om = SplattOneMode::build_default_root(&t);
        assert_eq!(om.root_mode, 1);
    }

    #[test]
    fn correct_on_skewed_standin() {
        let t = standin("darpa").unwrap().generate(&SynthConfig::tiny());
        let factors = reference::random_factors(&t, 8, 19);
        let om = SplattOneMode::build_default_root(&t);
        for mode in 0..3 {
            let y = om.mttkrp(&factors, mode);
            let expected = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&y, &expected), "mode {mode}");
        }
    }

    #[test]
    fn empty_tensor() {
        let t = CooTensor::new(vec![3, 4, 5]);
        let factors = reference::random_factors(&t, 4, 20);
        let om = SplattOneMode::build(&t, 0);
        for mode in 0..3 {
            let y = om.mttkrp(&factors, mode);
            assert!(y.data().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn single_tree_memory_is_one_nth_of_allmode() {
        use tensor_formats::IndexBytes;
        let t = uniform_random(&[20, 20, 20], 2_000, 74);
        let om = SplattOneMode::build(&t, 0);
        let all = super::super::splatt::SplattAllMode::build(
            &t,
            super::super::splatt::SplattOptions::nontiled(),
        );
        let all_bytes: u64 = all
            .per_mode
            .iter()
            .flat_map(|s| s.tiles.iter())
            .map(|c| c.index_bytes())
            .sum();
        assert!(om.csf.index_bytes() * 2 < all_bytes);
    }
}
