//! HiCOO MTTKRP on CPUs — block-parallel with output-block grouping.
//!
//! HiCOO's published kernel avoids atomics with a superblock scheduler and
//! privatization; the equivalent guarantee here: blocks are grouped by
//! their *output-mode block coordinate*, groups run in parallel (their
//! output row ranges are disjoint by construction), blocks within a group
//! run sequentially.

use dense::Matrix;
use rayon::prelude::*;
use sptensor::Index;
use tensor_formats::Hicoo;

use super::row_writer::RowWriter;

/// Mode-`mode` MTTKRP over a HiCOO tensor.
///
/// # Panics
/// If factor shapes disagree with the tensor.
pub fn mttkrp(h: &Hicoo, factors: &[Matrix], mode: usize) -> Matrix {
    let order = h.order();
    assert!(mode < order, "mode out of range");
    assert_eq!(factors.len(), order, "need one factor per mode");
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.rows(), h.dims[m] as usize, "factor {m} rows");
        assert_eq!(f.cols(), r, "factor {m} rank");
    }
    let rows = h.dims[mode] as usize;
    let mut y = Matrix::zeros(rows, r);

    // Group blocks by output-mode block coordinate.
    let mut groups: std::collections::BTreeMap<Index, Vec<usize>> =
        std::collections::BTreeMap::new();
    for b in 0..h.num_blocks() {
        groups.entry(h.bidx[mode][b]).or_default().push(b);
    }
    let groups: Vec<Vec<usize>> = groups.into_values().collect();

    {
        let writer = RowWriter::new(y.data_mut(), rows, r);
        groups.par_iter().for_each_init(
            || vec![0.0f32; r],
            |acc, group| {
                for &b in group {
                    for z in h.block_range(b) {
                        let v = h.vals[z];
                        for a in acc.iter_mut() {
                            *a = v;
                        }
                        for m in 0..order {
                            if m == mode {
                                continue;
                            }
                            let row = factors[m].row(h.coord(b, z, m) as usize);
                            for (a, &f) in acc.iter_mut().zip(row) {
                                *a *= f;
                            }
                        }
                        let i = h.coord(b, z, mode) as usize;
                        // SAFETY: groups own disjoint output-block row
                        // ranges; rows of different groups never alias.
                        let out = unsafe { writer.row_mut(i) };
                        for (o, &a) in out.iter_mut().zip(acc.iter()) {
                            *o += a;
                        }
                    }
                }
            },
        );
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    #[test]
    fn matches_reference_all_modes() {
        let t = uniform_random(&[300, 200, 400], 3_000, 41);
        let h = Hicoo::build(&t, Hicoo::DEFAULT_BLOCK_BITS);
        let factors = reference::random_factors(&t, 8, 13);
        for mode in 0..3 {
            let y = mttkrp(&h, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(
                crate::outputs_match(&y, &seq),
                "mode {mode} diff {}",
                y.rel_fro_diff(&seq)
            );
        }
    }

    #[test]
    fn matches_reference_order4_small_blocks() {
        let t = uniform_random(&[40, 50, 30, 20], 2_000, 42);
        let h = Hicoo::build(&t, 3);
        let factors = reference::random_factors(&t, 4, 14);
        for mode in 0..4 {
            let y = mttkrp(&h, &factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn correct_on_standin() {
        let t = standin("uber").unwrap().generate(&SynthConfig::tiny());
        let h = Hicoo::build(&t, Hicoo::DEFAULT_BLOCK_BITS);
        let factors = reference::random_factors(&t, 8, 15);
        let y = mttkrp(&h, &factors, 0);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&y, &seq));
    }

    #[test]
    fn empty_tensor() {
        let t = sptensor::CooTensor::new(vec![8, 8, 8]);
        let h = Hicoo::build(&t, 7);
        let factors = reference::random_factors(&t, 4, 16);
        let y = mttkrp(&h, &factors, 1);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
