//! CPU MTTKRP kernels (rayon-parallel, wall-clock measurable).
//!
//! These are the paper's CPU comparison targets, re-implemented with the
//! same algorithms and parallelization strategies:
//!
//! * [`splatt`] — CSF MTTKRP (Algorithm 3) parallelized one-slice-per-task
//!   with no atomics, ALLMODE representation, optional leaf-mode tiling:
//!   the SPLATT v1.1.0 equivalent (Figs. 7, 11, 12).
//! * [`hicoo`] — block-compressed COO with output-block grouping instead of
//!   atomics (Fig. 13).
//! * [`coo`] — nonzero-parallel COO with atomic output updates (the
//!   ParTI-OpenMP strategy; also the simplest parallel baseline).
//! * [`dfacto`] — DFacTo: MTTKRP as two SpMVs per output column over a
//!   fiber matrix (related-work baseline with the paper's 2R(M+F) count).
//! * [`toolbox`] — Tensor-Toolbox-style column-at-a-time COO MTTKRP with an
//!   M-word intermediate (the 3MR related-work baseline).
//! * [`onemode`] — SPLATT's ONEMODE configuration: a single CSF tree
//!   serving every mode's MTTKRP via internal-node tree algorithms, the
//!   memory-frugal setting whose non-root-mode slowdown the paper cites
//!   as the reason to benchmark ALLMODE.

pub mod coo;
pub mod dfacto;
pub mod hicoo;
pub mod onemode;
pub mod splatt;
pub mod toolbox;

pub(crate) mod row_writer;
