//! Tensor-Toolbox-style MTTKRP — the `3MR`-operation baseline of Bader &
//! Kolda that the paper's related-work section opens with ("Tensor Toolbox
//! and Tensorlab provide COO-MTTKRP implementations, which are computed as
//! a series of sparse tensor-vector products … uses 3MR operations and M
//! words of intermediate storage").
//!
//! Column `r` of the output is assembled in two passes over the nonzeros:
//! an `M`-long intermediate holds each nonzero's product of non-output
//! factor entries at rank `r`, which a mode-`n` sparse accumulation then
//! folds into `Y(:, r)`. Mathematically identical to
//! [`crate::reference::mttkrp`]; kept as a distinct implementation because
//! its *cost shape* (column-at-a-time, `M` words of intermediate) is what
//! the paper contrasts CSF's `R`-word factoring against.

use dense::Matrix;
use sptensor::CooTensor;

use crate::reference::check_shapes;

/// Mode-`mode` MTTKRP, one output column at a time with an `M`-word
/// intermediate (the Tensor Toolbox formulation).
pub fn mttkrp(t: &CooTensor, factors: &[Matrix], mode: usize) -> Matrix {
    let (order, r) = check_shapes(t, factors, mode);
    let m = t.nnz();
    let rows = t.dims()[mode] as usize;
    let mut y = Matrix::zeros(rows, r);
    // The "M words of intermediate storage".
    let mut intermediate = vec![0.0f32; m];

    for c in 0..r {
        // Pass 1: per-nonzero Hadamard product at rank c.
        intermediate.copy_from_slice(t.values());
        for mm in 0..order {
            if mm == mode {
                continue;
            }
            let idx = t.mode_indices(mm);
            let fac = &factors[mm];
            for (w, &i) in intermediate.iter_mut().zip(idx) {
                *w *= fac.get(i as usize, c);
            }
        }
        // Pass 2: sparse accumulation into column c.
        let out_idx = t.mode_indices(mode);
        for (&w, &i) in intermediate.iter().zip(out_idx) {
            let v = y.get(i as usize, c) + w;
            y.set(i as usize, c, v);
        }
    }
    y
}

/// The formulation's operation count: `N·M·R` (per column: `(N-1)·M`
/// multiplies + `M` adds).
pub fn op_count(t: &CooTensor, r: usize) -> u64 {
    t.order() as u64 * t.nnz() as u64 * r as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::uniform_random;

    #[test]
    fn matches_reference_all_modes_and_orders() {
        for dims in [vec![10u32, 12, 14], vec![6, 7, 8, 9]] {
            let t = uniform_random(&dims, 600, 61);
            let factors = reference::random_factors(&t, 6, 31);
            for mode in 0..t.order() {
                let y = mttkrp(&t, &factors, mode);
                let expected = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&y, &expected),
                    "dims {dims:?} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn op_count_is_nmr() {
        let t = uniform_random(&[5, 6, 7], 100, 62);
        assert_eq!(op_count(&t, 8), 3 * t.nnz() as u64 * 8);
    }

    #[test]
    fn empty_tensor() {
        let t = sptensor::CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 63);
        let y = mttkrp(&t, &factors, 0);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
