//! DFacTo-style MTTKRP — Choi & Vishwanathan's reformulation as SpMV
//! pairs (paper Section VII: "DFacTo ... develops an algorithm to perform
//! an MTTKRP by computing multiple SpMVs ... one column at a time with two
//! SpMV operations, which requires 2R(M + F) operations").
//!
//! For mode-1 of a third-order tensor, column `r` of the output is
//!
//! ```text
//! Y(:, r) = X₍₁₎ · (B(:,r) ⊗ C(:,r))
//! ```
//!
//! computed in two stages that never materialize the Khatri–Rao column:
//! 1. `z = F · C(:, r)` where `F` is the `#fibers × K` matrix holding each
//!    non-empty fiber's nonzeros — one SpMV, `R·M` multiply-adds total;
//! 2. `Y(i, r) += z[f] · B(j_f, r)` for every fiber `f = (i, j_f)` — the
//!    second (implicit) SpMV, `R·F` multiply-adds.
//!
//! The intermediate `z` (one value per fiber per column) is the "large
//! intermediate storage" the paper holds against DFacTo; here it is `F`
//! floats reused across columns.

use dense::Matrix;
use sptensor::dims::mode_orientation;
use sptensor::{CooTensor, Index};
use tensor_formats::Csr;

use crate::reference::check_shapes;

/// The per-mode DFacTo representation of a third-order tensor.
#[derive(Debug, Clone)]
pub struct Dfacto {
    pub mode: usize,
    /// Output row `i` of each non-empty fiber.
    fiber_out: Vec<Index>,
    /// Middle-mode index `j` of each non-empty fiber.
    fiber_mid: Vec<Index>,
    /// Middle-mode original axis (the `B` factor's mode).
    mid_mode: usize,
    /// Leaf-mode original axis (the `C` factor's mode).
    leaf_mode: usize,
    /// `#fibers × K` sparse matrix of the fibers' nonzeros.
    fibers: Csr,
    /// Output row count.
    out_rows: usize,
}

impl Dfacto {
    /// Builds the mode-`mode` representation.
    ///
    /// # Panics
    /// If the tensor is not third-order (DFacTo's published setting).
    pub fn build(t: &CooTensor, mode: usize) -> Dfacto {
        assert_eq!(t.order(), 3, "DFacTo is defined for third-order tensors");
        let perm = mode_orientation(3, mode);
        let mut work = t.clone();
        work.sort_by_perm(&perm);
        let (out_m, mid_m, leaf_m) = (perm[0], perm[1], perm[2]);
        let out = work.mode_indices(out_m);
        let mid = work.mode_indices(mid_m);
        let leaf = work.mode_indices(leaf_m);

        let mut fiber_out = Vec::new();
        let mut fiber_mid = Vec::new();
        let mut triplets = Vec::with_capacity(work.nnz());
        for z in 0..work.nnz() {
            let new_fiber = z == 0 || out[z] != out[z - 1] || mid[z] != mid[z - 1];
            if new_fiber {
                fiber_out.push(out[z]);
                fiber_mid.push(mid[z]);
            }
            let f = (fiber_out.len() - 1) as Index;
            triplets.push((f, leaf[z], work.values()[z]));
        }
        let nfibers = fiber_out.len() as Index;
        let fibers = Csr::from_triplets(nfibers, t.dims()[leaf_m], triplets);
        Dfacto {
            mode,
            fiber_out,
            fiber_mid,
            mid_mode: mid_m,
            leaf_mode: leaf_m,
            fibers,
            out_rows: t.dims()[mode] as usize,
        }
    }

    /// Number of non-empty fibers `F` (the second SpMV's work).
    pub fn num_fibers(&self) -> usize {
        self.fiber_out.len()
    }

    /// Mode-`self.mode` MTTKRP, one column pair of SpMVs at a time.
    pub fn mttkrp(&self, factors: &[Matrix]) -> Matrix {
        let r = factors[0].cols();
        let mut y = Matrix::zeros(self.out_rows, r);
        let k = self.fibers.cols as usize;
        let mut column = vec![0.0f32; k];
        for c in 0..r {
            // Stage 1: z = F · C(:, c).
            for (kk, cc) in column.iter_mut().enumerate() {
                *cc = factors[self.leaf_mode].get(kk, c);
            }
            let z = self.fibers.spmv(&column);
            // Stage 2: scatter through B(j, c) into Y(:, c).
            for (f, &zf) in z.iter().enumerate() {
                let i = self.fiber_out[f] as usize;
                let j = self.fiber_mid[f] as usize;
                let val = y.get(i, c) + zf * factors[self.mid_mode].get(j, c);
                y.set(i, c, val);
            }
        }
        y
    }

    /// DFacTo's operation count, `2R(M + F)` (paper Section VII).
    pub fn op_count(&self, r: usize) -> u64 {
        2 * r as u64 * (self.fibers.nnz() as u64 + self.num_fibers() as u64)
    }
}

/// Convenience one-shot.
pub fn mttkrp(t: &CooTensor, factors: &[Matrix], mode: usize) -> Matrix {
    check_shapes(t, factors, mode);
    Dfacto::build(t, mode).mttkrp(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    #[test]
    fn matches_reference_all_modes() {
        let t = uniform_random(&[15, 18, 21], 900, 51);
        let factors = reference::random_factors(&t, 7, 23);
        for mode in 0..3 {
            let y = mttkrp(&t, &factors, mode);
            let expected = reference::mttkrp(&t, &factors, mode);
            assert!(
                crate::outputs_match(&y, &expected),
                "mode {mode} diff {}",
                y.rel_fro_diff(&expected)
            );
        }
    }

    #[test]
    #[should_panic(expected = "third-order")]
    fn rejects_4d() {
        let t = uniform_random(&[4, 4, 4, 4], 50, 52);
        Dfacto::build(&t, 0);
    }

    #[test]
    fn fiber_count_matches_csf() {
        let t = uniform_random(&[10, 12, 14], 500, 53);
        let d = Dfacto::build(&t, 0);
        let csf = tensor_formats::Csf::build(&t, &sptensor::mode_orientation(3, 0));
        assert_eq!(d.num_fibers(), csf.num_fibers());
        // Paper op counts: DFacTo 2R(M+F) vs COO 3MR.
        assert_eq!(
            d.op_count(8),
            2 * 8 * (t.nnz() as u64 + csf.num_fibers() as u64)
        );
    }

    #[test]
    fn correct_on_standin() {
        let t = standin("deli").unwrap().generate(&SynthConfig::tiny());
        let factors = reference::random_factors(&t, 8, 24);
        let y = mttkrp(&t, &factors, 0);
        let expected = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&y, &expected));
    }

    #[test]
    fn empty_tensor() {
        let t = CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 25);
        let y = mttkrp(&t, &factors, 1);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
