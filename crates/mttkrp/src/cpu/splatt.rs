//! SPLATT-equivalent CSF MTTKRP — paper Algorithm 3, parallelized the way
//! SPLATT does on CPUs: one task per slice, so output rows are exclusive
//! and no atomics are needed. Includes the ALLMODE driver (one CSF per
//! mode, the configuration the paper benchmarks as "most efficient") and
//! an optional leaf-mode cache-tiling pass (SPLATT's `tiling` flag, whose
//! preprocessing cost and mixed performance effects Figs. 9-12 examine).

use dense::Matrix;
use rayon::prelude::*;
use sptensor::dims::mode_orientation;
use sptensor::{CooTensor, Index};
use tensor_formats::Csf;

use super::row_writer::RowWriter;
use crate::reference::check_shapes;

/// SPLATT configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplattOptions {
    /// Enable leaf-mode tiling (SPLATT's `--tile`): the last-level factor's
    /// working set is bounded by processing leaf-coordinate tiles one at a
    /// time, at the cost of building one CSF per tile.
    pub tiled: bool,
    /// Leaf-coordinate width of one tile; 0 selects
    /// [`SplattOptions::DEFAULT_TILE_WIDTH`].
    pub tile_width: usize,
}

impl SplattOptions {
    /// 16 Ki leaf rows × R=32 × 4 B = 2 MiB of factor rows per tile —
    /// comfortably inside a CPU's L2/L3 slice.
    pub const DEFAULT_TILE_WIDTH: usize = 16_384;

    pub fn nontiled() -> Self {
        SplattOptions {
            tiled: false,
            tile_width: 0,
        }
    }

    pub fn tiled() -> Self {
        SplattOptions {
            tiled: true,
            tile_width: 0,
        }
    }

    fn effective_tile_width(&self) -> usize {
        if self.tile_width == 0 {
            Self::DEFAULT_TILE_WIDTH
        } else {
            self.tile_width
        }
    }
}

/// One mode's CSF representation (one tree per leaf tile; a single tree
/// when tiling is off or the leaf mode is short).
#[derive(Debug, Clone)]
pub struct SplattCsf {
    pub mode: usize,
    pub options: SplattOptions,
    pub tiles: Vec<Csf>,
}

impl SplattCsf {
    /// Builds the mode-`mode` representation of `t`.
    pub fn build(t: &CooTensor, mode: usize, options: SplattOptions) -> SplattCsf {
        let perm = mode_orientation(t.order(), mode);
        let mut work = t.clone();
        work.sort_by_perm(&perm);

        let leaf_mode = perm[t.order() - 1];
        let leaf_extent = t.dims()[leaf_mode] as usize;
        let width = options.effective_tile_width();
        let tiles = if !options.tiled || leaf_extent <= width {
            vec![Csf::build_from_sorted(&work, &perm)]
        } else {
            let ntiles = leaf_extent.div_ceil(width);
            // Stable bucket split by leaf-coordinate tile: per-tile entry
            // lists stay sorted under `perm`.
            let leaf = work.mode_indices(leaf_mode);
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); ntiles];
            for (z, &k) in leaf.iter().enumerate() {
                buckets[k as usize / width].push(z as u32);
            }
            buckets
                .into_iter()
                .filter(|b| !b.is_empty())
                .map(|b| {
                    let inds: Vec<Vec<Index>> = (0..t.order())
                        .map(|m| {
                            let src = work.mode_indices(m);
                            b.iter().map(|&z| src[z as usize]).collect()
                        })
                        .collect();
                    let vals = b.iter().map(|&z| work.values()[z as usize]).collect();
                    let sub = CooTensor::from_parts(t.dims().to_vec(), inds, vals);
                    Csf::build_from_sorted(&sub, &perm)
                })
                .collect()
        };
        SplattCsf {
            mode,
            options,
            tiles,
        }
    }

    /// Total nonzeros across tiles.
    pub fn nnz(&self) -> usize {
        self.tiles.iter().map(Csf::nnz).sum()
    }

    /// Mode-`self.mode` MTTKRP (Algorithm 3), one rayon task per slice.
    pub fn mttkrp(&self, factors: &[Matrix]) -> Matrix {
        let csf0 = &self.tiles[0];
        let order = csf0.order();
        let r = factors[0].cols();
        let rows = csf0.dims[self.mode] as usize;
        let mut y = Matrix::zeros(rows, r);
        {
            let writer = RowWriter::new(y.data_mut(), rows, r);
            for csf in &self.tiles {
                // Factor of the mode at each level below the root.
                let facs: Vec<&Matrix> = (1..order).map(|l| &factors[csf.perm[l]]).collect();
                (0..csf.num_slices()).into_par_iter().for_each_init(
                    || vec![vec![0.0f32; r]; order - 1],
                    |scratch, s| {
                        scratch[0].fill(0.0);
                        accumulate(csf, 0, s, &facs, scratch);
                        let i = csf.level_idx[0][s] as usize;
                        // SAFETY: slice root indices are unique within a
                        // tile, and tiles run sequentially.
                        let out = unsafe { writer.row_mut(i) };
                        for (o, &v) in out.iter_mut().zip(&scratch[0]) {
                            *o += v;
                        }
                    },
                );
            }
        }
        y
    }
}

/// Accumulates `Σ_children F_child(idx) ∗ subtree(child)` of group `g` at
/// `level` into `scratch[0]` (zeroed by the caller). `facs[0]` is the
/// factor of mode `perm[level + 1]`.
pub(crate) fn accumulate(
    csf: &Csf,
    level: usize,
    g: usize,
    facs: &[&Matrix],
    scratch: &mut [Vec<f32>],
) {
    let nlev = csf.order() - 1;
    let (cur, rest) = scratch.split_first_mut().expect("scratch depth");
    let children = csf.children(level, g);
    if level == nlev - 1 {
        // Children are leaves: Σ val × F_leaf(k,:)  (Alg. 3 line 11).
        for z in children {
            let row = facs[0].row(csf.leaf_idx[z] as usize);
            let v = csf.vals[z];
            for (c, &f) in cur.iter_mut().zip(row) {
                *c += v * f;
            }
        }
    } else {
        for ch in children {
            rest[0].fill(0.0);
            accumulate(csf, level + 1, ch, &facs[1..], rest);
            let row = facs[0].row(csf.level_idx[level + 1][ch] as usize);
            // Alg. 3 line 13: fold child contribution through its factor row.
            for ((c, &f), &s) in cur.iter_mut().zip(row).zip(&rest[0]) {
                *c += f * s;
            }
        }
    }
}

/// The ALLMODE configuration: `N` CSF representations, one per output mode
/// ("we use the most efficient ALLMODE setting and store N CSF formats").
#[derive(Debug, Clone)]
pub struct SplattAllMode {
    pub per_mode: Vec<SplattCsf>,
}

impl SplattAllMode {
    pub fn build(t: &CooTensor, options: SplattOptions) -> SplattAllMode {
        let per_mode = (0..t.order())
            .map(|m| SplattCsf::build(t, m, options))
            .collect();
        SplattAllMode { per_mode }
    }

    pub fn mttkrp(&self, factors: &[Matrix], mode: usize) -> Matrix {
        self.per_mode[mode].mttkrp(factors)
    }
}

/// Convenience one-shot: build + run (costs construction every call; use
/// [`SplattCsf`] directly inside iteration loops).
pub fn mttkrp(t: &CooTensor, factors: &[Matrix], mode: usize, options: SplattOptions) -> Matrix {
    check_shapes(t, factors, mode);
    SplattCsf::build(t, mode, options).mttkrp(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::synth::{standin, uniform_random, SynthConfig};

    #[test]
    fn matches_reference_all_modes_3d() {
        let t = uniform_random(&[25, 30, 35], 1_500, 31);
        let factors = reference::random_factors(&t, 8, 7);
        for mode in 0..3 {
            for opts in [SplattOptions::nontiled(), SplattOptions::tiled()] {
                let y = mttkrp(&t, &factors, mode, opts);
                let seq = reference::mttkrp(&t, &factors, mode);
                assert!(
                    crate::outputs_match(&y, &seq),
                    "mode {mode} opts {opts:?} diff {}",
                    y.rel_fro_diff(&seq)
                );
            }
        }
    }

    #[test]
    fn matches_reference_order4() {
        let t = uniform_random(&[12, 10, 8, 14], 1_200, 32);
        let factors = reference::random_factors(&t, 6, 8);
        for mode in 0..4 {
            let y = mttkrp(&t, &factors, mode, SplattOptions::nontiled());
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn tiling_splits_leaf_mode() {
        let t = uniform_random(&[10, 10, 100_000], 2_000, 33);
        let opts = SplattOptions {
            tiled: true,
            tile_width: 10_000,
        };
        let s = SplattCsf::build(&t, 0, opts);
        assert!(s.tiles.len() > 1, "expected multiple tiles");
        assert_eq!(s.nnz(), t.nnz());
        let factors = reference::random_factors(&t, 4, 9);
        let y = s.mttkrp(&factors);
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&y, &seq));
    }

    #[test]
    fn tiling_noop_for_short_leaf_mode() {
        let t = uniform_random(&[10, 10, 50], 500, 34);
        let s = SplattCsf::build(&t, 0, SplattOptions::tiled());
        assert_eq!(s.tiles.len(), 1);
    }

    #[test]
    fn allmode_runs_every_mode() {
        let t = uniform_random(&[15, 20, 25], 800, 35);
        let all = SplattAllMode::build(&t, SplattOptions::nontiled());
        let factors = reference::random_factors(&t, 4, 10);
        for mode in 0..3 {
            let y = all.mttkrp(&factors, mode);
            let seq = reference::mttkrp(&t, &factors, mode);
            assert!(crate::outputs_match(&y, &seq), "mode {mode}");
        }
    }

    #[test]
    fn correct_on_skewed_standin() {
        let t = standin("darpa").unwrap().generate(&SynthConfig::tiny());
        let factors = reference::random_factors(&t, 8, 11);
        let y = mttkrp(&t, &factors, 0, SplattOptions::nontiled());
        let seq = reference::mttkrp(&t, &factors, 0);
        assert!(crate::outputs_match(&y, &seq));
    }

    #[test]
    fn empty_tensor() {
        let t = sptensor::CooTensor::new(vec![3, 3, 3]);
        let factors = reference::random_factors(&t, 4, 12);
        let y = mttkrp(&t, &factors, 0, SplattOptions::nontiled());
        assert!(y.data().iter().all(|&v| v == 0.0));
    }
}
