//! Shared-output helper for kernels whose parallel tasks write disjoint
//! rows (the SPLATT/HiCOO no-atomics strategy).

use std::marker::PhantomData;

/// A `Sync` view over a row-major `f32` buffer that hands out mutable rows.
///
/// # Safety contract
/// Concurrent callers must access **disjoint row indices**. Both CPU
/// kernels that use this satisfy it structurally: SPLATT tasks own distinct
/// CSF slices (level-0 indices are strictly increasing, hence unique), and
/// HiCOO groups own distinct output-block row ranges.
pub struct RowWriter<'a> {
    ptr: *mut f32,
    rows: usize,
    cols: usize,
    _pd: PhantomData<&'a mut [f32]>,
}

unsafe impl Send for RowWriter<'_> {}
unsafe impl Sync for RowWriter<'_> {}

impl<'a> RowWriter<'a> {
    /// Wraps a matrix buffer of `rows × cols`.
    ///
    /// # Panics
    /// If the buffer length disagrees with the shape.
    pub fn new(buf: &'a mut [f32], rows: usize, cols: usize) -> RowWriter<'a> {
        assert_eq!(buf.len(), rows * cols, "buffer shape mismatch");
        RowWriter {
            ptr: buf.as_mut_ptr(),
            rows,
            cols,
            _pd: PhantomData,
        }
    }

    /// Mutable access to row `r`.
    ///
    /// # Safety
    /// No other thread may hold row `r` concurrently (see type docs).
    ///
    /// # Panics
    /// If `r` is out of range.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range {}", self.rows);
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.cols), self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_rows_write_correctly() {
        let rows = 64;
        let cols = 8;
        let mut buf = vec![0.0f32; rows * cols];
        {
            let w = RowWriter::new(&mut buf, rows, cols);
            (0..rows).into_par_iter().for_each(|r| {
                let row = unsafe { w.row_mut(r) };
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r * cols + c) as f32;
                }
            });
        }
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_row() {
        let mut buf = vec![0.0f32; 4];
        let w = RowWriter::new(&mut buf, 2, 2);
        unsafe {
            let _ = w.row_mut(2);
        }
    }
}
