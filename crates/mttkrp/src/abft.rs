//! Algorithm-based fault tolerance (ABFT) for the GPU MTTKRP kernels.
//!
//! Every GPU kernel running under an active [`gpu_sim::FaultPlan`] routes
//! its output commits through an [`crate::gpu::AbftSink`], which maintains
//! per-row `f64` column checksums alongside the `f32` output. This module
//! holds the *consumer* side:
//!
//! * [`verify`] — compare `Σ_c Y[i,c]` against the checksum and flag rows
//!   whose residual exceeds an accumulation-scaled tolerance. Detection
//!   never consults the injection ground truth — only the checksums.
//! * [`run_verified`] — the recovery driver: run a kernel, verify, re-run
//!   with a re-rolled fault plan for rows that fail (bounded retries),
//!   and finally degrade any still-corrupt rows to the sequential CPU
//!   reference kernel.
//!
//! The returned [`KernelReport`] carries everything resilience reporting
//! needs: injected faults, detections, retries, recoveries, degrades.

#![deny(clippy::unwrap_used)]

use std::cell::RefCell;
use std::collections::HashSet;

use dense::Matrix;
use sptensor::CooTensor;

use crate::gpu::ooc::{self, MemReport, OocOptions};
use crate::gpu::{AbftData, GpuContext, GpuRun, Plan};
use crate::reference;

/// Detection/recovery policy for [`run_verified`].
#[derive(Debug, Clone, Copy)]
pub struct AbftOptions {
    /// Detection threshold in units of `f32::EPSILON × max(1, Σ|contrib|)`.
    /// The default (64) sits orders of magnitude above honest `f32`
    /// summation noise for the block sizes these kernels use, while an
    /// injected flip perturbs the row by at least half the corrupted
    /// block's whole contribution.
    pub tol_scale: f64,
    /// Kernel re-executions (with a re-rolled fault plan) before flagged
    /// rows degrade to the CPU reference kernel.
    pub max_retries: u32,
}

impl Default for AbftOptions {
    fn default() -> AbftOptions {
        AbftOptions {
            tol_scale: 64.0,
            max_retries: 2,
        }
    }
}

/// What happened while verifying and repairing one kernel execution.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Kernel (launch) name, from the ABFT record.
    pub kernel: String,
    /// Total kernel executions: `1 + retries`.
    pub attempts: u32,
    /// Scheduler-level faults the simulator injected on the base run
    /// (bit flips, block aborts, stragglers — from the fault ledger).
    pub faults_injected: u64,
    /// Bit flips that actually landed in output data on the base run.
    pub flips_applied: u64,
    /// Ground truth: rows corrupted by the base run's flips.
    pub corrupted_rows: Vec<u32>,
    /// Rows the checksum verification flagged on the base run.
    pub detected_rows: Vec<u32>,
    /// Retries executed (≤ `max_retries`).
    pub retries: u32,
    /// Flagged rows repaired by harvesting a clean retry.
    pub recovered_rows: u64,
    /// Flagged rows that exhausted retries and were recomputed on the CPU.
    pub degraded_rows: u64,
}

impl KernelReport {
    /// Detection rate over ground truth: fraction of actually-corrupted
    /// rows that verification flagged (`1.0` when nothing was corrupted).
    pub fn detection_rate(&self) -> f64 {
        if self.corrupted_rows.is_empty() {
            return 1.0;
        }
        let detected: HashSet<u32> = self.detected_rows.iter().copied().collect();
        let hit = self
            .corrupted_rows
            .iter()
            .filter(|r| detected.contains(r))
            .count();
        hit as f64 / self.corrupted_rows.len() as f64
    }
}

/// Flags output rows whose column sum disagrees with the ABFT checksum.
///
/// Row `i` is flagged when `|Σ_c y[i,c] − check[i]|` exceeds
/// `tol_scale × f32::EPSILON × max(1, abs[i])`, where `abs[i]` is the
/// accumulated absolute contribution mass — the natural scale of the
/// row's rounding error. Returns the flagged rows in ascending order.
pub fn verify(y: &Matrix, abft: &AbftData, tol_scale: f64) -> Vec<u32> {
    let eps = f64::from(f32::EPSILON);
    let mut flagged = Vec::new();
    for i in 0..y.rows().min(abft.check.len()) {
        let sum: f64 = y.row(i).iter().map(|&v| f64::from(v)).sum();
        let resid = (sum - abft.check[i]).abs();
        let tol = tol_scale * eps * abft.abs[i].max(1.0);
        // A non-finite residual (a flip drove the row to Inf/NaN) is the
        // loudest possible corruption; NaN would dodge `>`.
        if !resid.is_finite() || resid > tol {
            flagged.push(i as u32);
        }
    }
    flagged
}

/// Runs `run_kernel` under `ctx`, verifies the output against its ABFT
/// checksums, and repairs corrupted rows.
///
/// Recovery ladder:
/// 1. **Retry** — re-execute the whole kernel with the fault plan's
///    attempt counter bumped (fresh fault draws, same rates). Rows that
///    verify clean in the retry are harvested into the accepted output;
///    rows flagged again stay on the ladder. At most
///    [`AbftOptions::max_retries`] re-executions.
/// 2. **Degrade** — rows still flagged after the last retry are
///    recomputed with [`reference::mttkrp_rows`] (the trustworthy but
///    slow "host" path) and patched over the GPU output.
///
/// With no active fault plan this is exactly one plain kernel execution
/// and an all-zero report. Undetected corruption (a flip whose residual
/// hides inside the tolerance) is *not* repaired — that is the realistic
/// cost of checksum-based detection, and tests bound how often it happens.
pub fn run_verified<F>(
    ctx: &GpuContext,
    t: &CooTensor,
    factors: &[Matrix],
    mode: usize,
    opts: &AbftOptions,
    run_kernel: F,
) -> (GpuRun, KernelReport)
where
    F: Fn(&GpuContext) -> GpuRun,
{
    let mut run = run_kernel(ctx);
    let mut report = KernelReport {
        attempts: 1,
        faults_injected: run.profile.as_ref().map_or(0, |p| p.faults.len() as u64),
        ..KernelReport::default()
    };
    let Some(abft) = run.abft.clone() else {
        return (run, report);
    };
    report.kernel = abft.kernel.clone();
    report.flips_applied = abft.flips_applied;
    report.corrupted_rows = abft.corrupted_rows.clone();

    let mut flagged = verify(&run.y, &abft, opts.tol_scale);
    report.detected_rows = flagged.clone();

    // One span covers the whole verification episode: the detection and
    // every retry it triggers. Detection is checksum-driven, so the event
    // carries what the verifier saw (flagged rows), not the injection
    // ground truth.
    let tel = &ctx.telemetry;
    let span = tel.new_span();
    if tel.enabled() && !flagged.is_empty() {
        tel.emit(
            "fault-detected",
            None,
            span,
            &[
                ("kernel", simprof::FieldValue::from(abft.kernel.as_str())),
                ("mode", simprof::FieldValue::from(mode)),
                ("detected_rows", simprof::FieldValue::from(flagged.len())),
                (
                    "flips_applied",
                    simprof::FieldValue::from(abft.flips_applied),
                ),
            ],
        );
    }

    if let Some(plan) = ctx.fault_plan() {
        let mut attempt = plan.attempt;
        while !flagged.is_empty() && report.retries < opts.max_retries {
            attempt += 1;
            report.retries += 1;
            report.attempts += 1;
            let retry_ctx = GpuContext {
                faults: Some(plan.with_attempt(attempt)),
                ..ctx.clone()
            };
            let retry = run_kernel(&retry_ctx);
            let retry_bad: HashSet<u32> = match &retry.abft {
                Some(a) => verify(&retry.y, a, opts.tol_scale).into_iter().collect(),
                None => HashSet::new(),
            };
            // Harvest only previously-flagged rows that the retry computed
            // cleanly; everything else keeps the accepted (base) values.
            flagged.retain(|&i| {
                if retry_bad.contains(&i) {
                    return true;
                }
                let row = retry.y.row(i as usize).to_vec();
                run.y.row_mut(i as usize).copy_from_slice(&row);
                report.recovered_rows += 1;
                false
            });
            if tel.enabled() {
                tel.emit(
                    "fault-retry",
                    None,
                    span,
                    &[
                        ("kernel", simprof::FieldValue::from(abft.kernel.as_str())),
                        ("mode", simprof::FieldValue::from(mode)),
                        ("retry", simprof::FieldValue::from(report.retries)),
                        (
                            "recovered_rows",
                            simprof::FieldValue::from(report.recovered_rows),
                        ),
                        ("still_flagged", simprof::FieldValue::from(flagged.len())),
                    ],
                );
            }
        }
    }

    if !flagged.is_empty() {
        report.degraded_rows = flagged.len() as u64;
        let fixed = reference::mttkrp_rows(t, factors, mode, &flagged);
        for &i in &flagged {
            let row = fixed.row(i as usize).to_vec();
            run.y.row_mut(i as usize).copy_from_slice(&row);
        }
    }

    (run, report)
}

/// [`run_verified`] over the out-of-core degradation ladder: every
/// attempt (base run and each ABFT retry) executes `plan` through
/// [`ooc::execute_adaptive`], so allocation pressure and injected OOMs
/// degrade gracefully *inside* each attempt while checksum verification
/// still repairs data corruption across attempts. Returns the memory
/// story of every attempt alongside the kernel report.
///
/// Attempts that end on the CPU rung produce no ABFT data (the reference
/// path is trusted), which `run_verified` already treats as "nothing to
/// verify" — so the two ladders compose without special cases.
pub fn run_verified_adaptive(
    ctx: &GpuContext,
    t: &CooTensor,
    factors: &[Matrix],
    opts: &AbftOptions,
    oopts: &OocOptions,
    plan: &Plan,
) -> (GpuRun, KernelReport, Vec<MemReport>) {
    let reports: RefCell<Vec<MemReport>> = RefCell::new(Vec::new());
    let (run, kernel_report) = run_verified(ctx, t, factors, plan.mode(), opts, |c| {
        let (run, mem) = ooc::execute_adaptive(c, plan, factors, t, oopts);
        reports.borrow_mut().push(mem);
        run
    });
    (run, kernel_report, reports.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{Executor, KernelKind};
    use gpu_sim::FaultPlan;
    use sptensor::synth::uniform_random;

    fn coo_run(c: &GpuContext, t: &CooTensor, factors: &[Matrix]) -> GpuRun {
        Executor::new(c.clone())
            .build_run(KernelKind::Coo, t, factors, 0)
            .expect("valid launch")
            .run
    }

    fn checksums_for(y: &Matrix) -> AbftData {
        // An honest checksum record for an already-final output (one
        // "contribution" per row), good enough to exercise `verify`.
        AbftData {
            kernel: "test".to_string(),
            check: (0..y.rows())
                .map(|i| y.row(i).iter().map(|&v| f64::from(v)).sum())
                .collect(),
            abs: (0..y.rows())
                .map(|i| y.row(i).iter().map(|&v| f64::from(v).abs()).sum())
                .collect(),
            corrupted_rows: Vec::new(),
            flips_applied: 0,
        }
    }

    #[test]
    fn verify_flags_exactly_the_corrupted_row() {
        let mut y = Matrix::random(16, 8, 3);
        let abft = checksums_for(&y);
        assert!(verify(&y, &abft, 64.0).is_empty(), "clean output flagged");
        // Flip a high mantissa bit of one element: block-scale corruption.
        let v = y.row(5)[2];
        y.row_mut(5)[2] = f32::from_bits(v.to_bits() ^ (1 << 30));
        assert_eq!(verify(&y, &abft, 64.0), vec![5]);
    }

    #[test]
    fn run_verified_recovers_reference_output_under_faults() {
        let t = uniform_random(&[24, 20, 22], 4_000, 91);
        let factors = reference::random_factors(&t, 8, 92);
        let seq = reference::mttkrp(&t, &factors, 0);
        let ctx = GpuContext::tiny().with_faults(FaultPlan::bitflips(0.2, 7));
        let (run, report) = run_verified(&ctx, &t, &factors, 0, &AbftOptions::default(), |c| {
            coo_run(c, &t, &factors)
        });
        assert!(report.flips_applied > 0, "rate 5e-2 must land flips");
        assert!(!report.detected_rows.is_empty());
        assert!(
            report.detection_rate() >= 0.99,
            "detection rate {}",
            report.detection_rate()
        );
        assert!(
            crate::outputs_match(&run.y, &seq),
            "repaired output diff {}",
            run.y.rel_fro_diff(&seq)
        );
        assert_eq!(
            report.recovered_rows + report.degraded_rows,
            report.detected_rows.len() as u64
        );
    }

    #[test]
    fn run_verified_without_faults_is_single_clean_attempt() {
        let t = uniform_random(&[10, 12, 14], 500, 93);
        let factors = reference::random_factors(&t, 4, 94);
        let ctx = GpuContext::tiny();
        let (run, report) = run_verified(&ctx, &t, &factors, 0, &AbftOptions::default(), |c| {
            coo_run(c, &t, &factors)
        });
        let plain = coo_run(&ctx, &t, &factors);
        assert_eq!(run.y.data(), plain.y.data(), "must be bit-for-bit");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.faults_injected, 0);
        assert!(report.detected_rows.is_empty());
        assert_eq!(report.degraded_rows, 0);
    }
}
