//! Sequential COO MTTKRP — paper Algorithm 2, generalized to order `N`.
//!
//! This is the ground truth for every other kernel: simple enough to audit
//! by eye, checked against the explicit Khatri–Rao definition
//! (`Y = X₍ₙ₎ (⊙ₘ≠ₙ Aₘ)`) on tiny tensors in this module's tests.

use dense::Matrix;
use sptensor::CooTensor;

/// Mode-`mode` MTTKRP of `t` with the given factor matrices.
///
/// `factors[m]` must have `t.dims()[m]` rows; all factors share the same
/// column count `R`. `factors[mode]` is ignored (it is what CPD-ALS is
/// about to overwrite).
///
/// # Panics
/// If factor shapes are inconsistent with the tensor.
pub fn mttkrp(t: &CooTensor, factors: &[Matrix], mode: usize) -> Matrix {
    let (order, r) = check_shapes(t, factors, mode);
    let mut y = Matrix::zeros(t.dims()[mode] as usize, r);
    let vals = t.values();
    let mut acc = vec![0.0f32; r];
    for z in 0..t.nnz() {
        let v = vals[z];
        for a in acc.iter_mut() {
            *a = v;
        }
        for m in 0..order {
            if m == mode {
                continue;
            }
            let row = factors[m].row(t.mode_indices(m)[z] as usize);
            for (a, &f) in acc.iter_mut().zip(row) {
                *a *= f;
            }
        }
        let out = y.row_mut(t.mode_indices(mode)[z] as usize);
        for (o, &a) in out.iter_mut().zip(&acc) {
            *o += a;
        }
    }
    y
}

/// Recomputes mode-`mode` MTTKRP for a subset of output rows only.
///
/// Used by the ABFT degrade path: after retries are exhausted, the rows
/// still flagged as corrupted are recomputed on the "host" with this
/// sequential kernel and patched over the GPU output. Rows not listed in
/// `rows` are left at zero in the returned matrix.
///
/// # Panics
/// If factor shapes are inconsistent with the tensor.
pub fn mttkrp_rows(t: &CooTensor, factors: &[Matrix], mode: usize, rows: &[u32]) -> Matrix {
    let (order, r) = check_shapes(t, factors, mode);
    let mut y = Matrix::zeros(t.dims()[mode] as usize, r);
    if rows.is_empty() {
        return y;
    }
    let wanted: std::collections::HashSet<u32> = rows.iter().copied().collect();
    let vals = t.values();
    let mut acc = vec![0.0f32; r];
    for z in 0..t.nnz() {
        let i = t.mode_indices(mode)[z];
        if !wanted.contains(&i) {
            continue;
        }
        let v = vals[z];
        for a in acc.iter_mut() {
            *a = v;
        }
        for m in 0..order {
            if m == mode {
                continue;
            }
            let row = factors[m].row(t.mode_indices(m)[z] as usize);
            for (a, &f) in acc.iter_mut().zip(row) {
                *a *= f;
            }
        }
        let out = y.row_mut(i as usize);
        for (o, &a) in out.iter_mut().zip(&acc) {
            *o += a;
        }
    }
    y
}

/// Validates tensor/factor shape agreement; returns `(order, rank)`.
pub fn check_shapes(t: &CooTensor, factors: &[Matrix], mode: usize) -> (usize, usize) {
    let order = t.order();
    assert!(mode < order, "mode {mode} out of range");
    assert_eq!(factors.len(), order, "need one factor matrix per mode");
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.cols(), r, "factor {m} rank mismatch");
        assert_eq!(
            f.rows(),
            t.dims()[m] as usize,
            "factor {m} row count mismatch"
        );
    }
    (order, r)
}

/// Seeded random factor matrices for a tensor — the standard test/benchmark
/// input (`factors[m]` is `dims[m] × r`).
pub fn random_factors(t: &CooTensor, r: usize, seed: u64) -> Vec<Matrix> {
    random_factors_for_dims(t.dims(), r, seed)
}

/// [`random_factors`] from dimensions alone — for drivers (e.g. the
/// streaming CPD) that never materialize the tensor. Identical seeding, so
/// the factors match `random_factors` on a tensor of the same shape.
pub fn random_factors_for_dims(dims: &[sptensor::Index], r: usize, seed: u64) -> Vec<Matrix> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d as usize, r, seed.wrapping_add(m as u64)))
        .collect()
}

/// Total useful flops of a mode-`n` COO MTTKRP: `N × M × R` multiply-adds
/// counted as the paper does (Section III-A).
pub fn coo_flop_count(t: &CooTensor, r: usize) -> u64 {
    t.order() as u64 * t.nnz() as u64 * r as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::khatri_rao;
    use sptensor::synth::uniform_random;
    use sptensor::CooTensor;

    /// Brute-force MTTKRP via explicit matricization and Khatri–Rao.
    fn mttkrp_via_kr(t: &CooTensor, factors: &[Matrix], mode: usize) -> Matrix {
        let r = factors[0].cols();
        let order = t.order();
        // kr over the non-mode factors, with the *first remaining mode
        // slowest* so the column index of X(n) is Σ coords × strides in
        // ascending-mode order matching khatri_rao's odometer.
        let others: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
        let mats: Vec<&Matrix> = others.iter().map(|&m| &factors[m]).collect();
        let kr = khatri_rao(&mats);
        let mut y = Matrix::zeros(t.dims()[mode] as usize, r);
        for z in 0..t.nnz() {
            // Flattened column index of this nonzero.
            let mut col = 0usize;
            for &m in &others {
                col = col * t.dims()[m] as usize + t.mode_indices(m)[z] as usize;
            }
            let i = t.mode_indices(mode)[z] as usize;
            let v = t.values()[z];
            for c in 0..r {
                let val = y.get(i, c) + v * kr.get(col, c);
                y.set(i, c, val);
            }
        }
        y
    }

    #[test]
    fn matches_khatri_rao_definition_3d() {
        let t = uniform_random(&[4, 5, 6], 40, 7);
        let factors = random_factors(&t, 3, 1);
        for mode in 0..3 {
            let fast = mttkrp(&t, &factors, mode);
            let slow = mttkrp_via_kr(&t, &factors, mode);
            assert!(
                fast.rel_fro_diff(&slow) < 1e-5,
                "mode {mode}: diff {}",
                fast.rel_fro_diff(&slow)
            );
        }
    }

    #[test]
    fn matches_khatri_rao_definition_4d() {
        let t = uniform_random(&[3, 4, 5, 6], 60, 8);
        let factors = random_factors(&t, 2, 2);
        for mode in 0..4 {
            let fast = mttkrp(&t, &factors, mode);
            let slow = mttkrp_via_kr(&t, &factors, mode);
            assert!(fast.rel_fro_diff(&slow) < 1e-5, "mode {mode}");
        }
    }

    #[test]
    fn single_nonzero_hand_computed() {
        let mut t = CooTensor::new(vec![2, 2, 2]);
        t.push(&[1, 0, 1], 2.0);
        let factors = vec![
            Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]),
            Matrix::from_vec(2, 2, vec![9.0, 10.0, 11.0, 12.0]),
        ];
        // Y(1, r) = 2 * B(0, r) * C(1, r) = 2 * [5,6] * [11,12].
        let y = mttkrp(&t, &factors, 0);
        assert_eq!(y.row(0), &[0.0, 0.0]);
        assert_eq!(y.row(1), &[110.0, 144.0]);
    }

    #[test]
    fn empty_tensor_gives_zero_output() {
        let t = CooTensor::new(vec![3, 3, 3]);
        let factors = random_factors(&t, 4, 3);
        let y = mttkrp(&t, &factors, 1);
        assert_eq!(y.rows(), 3);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn rejects_bad_factor_shape() {
        let t = uniform_random(&[4, 5, 6], 10, 1);
        let mut factors = random_factors(&t, 3, 1);
        factors[1] = Matrix::zeros(4, 3); // should be 5 rows
        mttkrp(&t, &factors, 0);
    }

    #[test]
    fn flop_count_formula() {
        let t = uniform_random(&[4, 5, 6], 50, 4);
        assert_eq!(coo_flop_count(&t, 8), 3 * t.nnz() as u64 * 8);
    }
}
