//! Format-construction (preprocessing) timing — the data behind Figs. 9-10.
//!
//! "Since CPD is an iterative algorithm and each iteration requires MTTKRP
//! over all modes, the preprocessing cost is amortized over a number of
//! iterations." This module measures wall-clock construction time of each
//! format's ALLMODE representation and computes the amortization point.

use std::time::Instant;

use sptensor::dims::mode_orientation;
use sptensor::CooTensor;
use tensor_formats::{Bcsf, BcsfOptions, Hbcsf};

use crate::cpu::splatt::{SplattAllMode, SplattOptions};

/// Runs `f`, returning its result and elapsed seconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Seconds to build SPLATT's ALLMODE representation (`N` CSF trees; tiled
/// variant builds one tree per leaf tile).
pub fn splatt_allmode_seconds(t: &CooTensor, opts: SplattOptions) -> f64 {
    timed(|| SplattAllMode::build(t, opts)).1
}

/// Seconds to build B-CSF for every mode.
pub fn bcsf_allmode_seconds(t: &CooTensor, opts: BcsfOptions) -> f64 {
    timed(|| {
        for mode in 0..t.order() {
            let perm = mode_orientation(t.order(), mode);
            std::hint::black_box(Bcsf::build(t, &perm, opts));
        }
    })
    .1
}

/// Seconds to build HB-CSF for every mode (classification included).
pub fn hbcsf_allmode_seconds(t: &CooTensor, opts: BcsfOptions) -> f64 {
    timed(|| {
        for mode in 0..t.order() {
            let perm = mode_orientation(t.order(), mode);
            std::hint::black_box(Hbcsf::build(t, &perm, opts));
        }
    })
    .1
}

/// Fig. 10's quantity: the smallest iteration count `n` at which
/// `pre_new + n · iter_new ≤ pre_base + n · iter_base`. Returns `Some(0)`
/// when the new method starts ahead, `None` when its per-iteration time is
/// not actually faster (it never catches up).
pub fn iterations_to_outperform(
    pre_new: f64,
    iter_new: f64,
    pre_base: f64,
    iter_base: f64,
) -> Option<u64> {
    if pre_new <= pre_base {
        return Some(0);
    }
    if iter_new >= iter_base {
        return None;
    }
    Some(((pre_new - pre_base) / (iter_base - iter_new)).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sptensor::synth::{standin, SynthConfig};

    #[test]
    fn amortization_math() {
        // 10s extra preprocessing, 2s/iter saved -> 5 iterations.
        assert_eq!(iterations_to_outperform(12.0, 1.0, 2.0, 3.0), Some(5));
        // Already cheaper to build.
        assert_eq!(iterations_to_outperform(1.0, 5.0, 2.0, 3.0), Some(0));
        // Never catches up.
        assert_eq!(iterations_to_outperform(12.0, 3.0, 2.0, 3.0), None);
        // Exact break-even counts.
        assert_eq!(iterations_to_outperform(4.0, 1.0, 2.0, 2.0), Some(2));
    }

    #[test]
    fn all_builders_run_and_take_time() {
        let t = standin("uber").unwrap().generate(&SynthConfig::tiny());
        let s = splatt_allmode_seconds(&t, SplattOptions::nontiled());
        let st = splatt_allmode_seconds(&t, SplattOptions::tiled());
        let b = bcsf_allmode_seconds(&t, BcsfOptions::default());
        let h = hbcsf_allmode_seconds(&t, BcsfOptions::default());
        for (name, v) in [
            ("splatt", s),
            ("splatt-tiled", st),
            ("bcsf", b),
            ("hbcsf", h),
        ] {
            assert!(v > 0.0, "{name} reported zero time");
            assert!(v < 60.0, "{name} took implausibly long: {v}");
        }
    }
}
