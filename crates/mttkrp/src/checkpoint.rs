//! Durable, crash-consistent CPD-ALS checkpoints.
//!
//! A [`CheckpointStore`] owns one directory of versioned, checksummed
//! checkpoint files (`ckpt-<seq>.spck`). Writes are atomic in the
//! happy path — encode, write to a temp file, fsync, rename — so a
//! reader never observes a half-written file *unless* the process died
//! between the rename and the data blocks becoming durable. That
//! failure mode is exactly what the `crash:RATE` fault kind injects: a
//! crashed write leaves a torn byte-prefix at the *final* path, and
//! recovery must scan back past it.
//!
//! # File format (`SPCK`, version 1, little-endian)
//!
//! ```text
//! magic      4  b"SPCK"
//! version    u32
//! seq        u64   monotone write sequence within the store
//! iteration  u64   completed ALS iterations at checkpoint time
//! rank       u32
//! order      u32   number of factor matrices
//! per mode:  rows u64, then rows·rank f32 (row-major factor data)
//! lambda:    len u64, then len f32
//! fits:      len u64, then len f64 (the fit trajectory so far)
//! checksum   u64   FNV-1a over every preceding byte
//! ```
//!
//! The trailing checksum makes torn and corrupt files self-evident:
//! [`CheckpointStore::latest_valid`] walks files in descending sequence
//! order, counts every invalid file it skips, and returns the newest
//! state that round-trips. Because ALS is deterministic, resuming from
//! *any* valid checkpoint on the trajectory replays the identical
//! remaining iterations — a warm restart converges to the same fit as
//! an uninterrupted run, bit for bit.

use std::path::{Path, PathBuf};

use dense::Matrix;
use gpu_sim::FaultPlan;

/// Format magic: the first four bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SPCK";
/// Current (and only) format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Everything a warm restart needs to continue an ALS run exactly where
/// a checkpoint left it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Write sequence of the file this state came from.
    pub seq: u64,
    /// Completed ALS iterations at checkpoint time.
    pub iteration: usize,
    pub factors: Vec<Matrix>,
    pub lambda: Vec<f32>,
    /// Fit trajectory through `iteration` (rollback iterations included).
    pub fits: Vec<f64>,
}

/// A typed checkpoint failure: genuine I/O trouble or a file that does
/// not decode (torn, corrupt, foreign, or from an unknown version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io { path: String, detail: String },
    /// The file is shorter than the fixed header + checksum.
    TooShort { path: String },
    /// The file does not start with the `SPCK` magic.
    BadMagic { path: String },
    /// The file's version is not one this build can read.
    UnsupportedVersion { path: String, version: u32 },
    /// The trailing checksum does not match the payload (torn/corrupt).
    ChecksumMismatch { path: String },
    /// The payload is structurally inconsistent (lengths overrun).
    Malformed { path: String, detail: String },
}

impl CheckpointError {
    fn io(path: &Path, err: std::io::Error) -> CheckpointError {
        CheckpointError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint I/O error at {path}: {detail}")
            }
            CheckpointError::TooShort { path } => {
                write!(f, "checkpoint {path} is too short (torn write)")
            }
            CheckpointError::BadMagic { path } => {
                write!(f, "checkpoint {path} has no SPCK magic")
            }
            CheckpointError::UnsupportedVersion { path, version } => {
                write!(f, "checkpoint {path} has unsupported version {version}")
            }
            CheckpointError::ChecksumMismatch { path } => {
                write!(f, "checkpoint {path} fails its checksum (torn/corrupt)")
            }
            CheckpointError::Malformed { path, detail } => {
                write!(f, "checkpoint {path} is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What one durable write did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Temp + fsync + rename completed; the file is durable and valid.
    Written { seq: u64, bytes: u64 },
    /// An injected `crash` fault killed the writer mid-write: a torn
    /// prefix of the encoding sits at the final path.
    Crashed { seq: u64, torn_bytes: u64 },
}

/// Result of scanning a store for the newest valid checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    /// The newest state that decoded and checksummed clean, if any.
    pub state: Option<CheckpointState>,
    /// Torn/corrupt/foreign files skipped on the way (newest-first scan).
    pub skipped: u64,
}

/// A directory of durable checkpoints for one labeled run.
///
/// `label` keys the crash-fault draws (`FaultPlan::write_crash(label,
/// seq)`), so two runs with the same fault plan and label crash — or
/// don't — identically: the chaos harness depends on that to diff
/// same-seed runs byte for byte.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    label: String,
    crash: Option<FaultPlan>,
    next_seq: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory `dir`.
    /// Sequence numbering continues after the highest existing file —
    /// torn files included, so a crashed sequence number is never
    /// reused and every crash draw happens at most once.
    pub fn open(dir: &Path, label: &str) -> Result<CheckpointStore, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::io(dir, e))?;
        let next_seq = Self::scan_seqs(dir)?.first().map_or(0, |&s| s + 1);
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            label: label.to_string(),
            crash: None,
            next_seq,
        })
    }

    /// The same store with mid-write crash injection drawn from `plan`
    /// (plans without crash faults are dropped).
    pub fn with_crash_plan(mut self, plan: Option<&FaultPlan>) -> CheckpointStore {
        self.crash = plan.filter(|p| p.has_crash_faults()).cloned();
        self
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Existing checkpoint sequence numbers, newest first (valid or not).
    fn scan_seqs(dir: &Path) -> Result<Vec<u64>, CheckpointError> {
        let mut seqs = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| CheckpointError::io(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| CheckpointError::io(dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".spck"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        Ok(seqs)
    }

    fn file_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:08}.spck"))
    }

    /// Durably writes one checkpoint, or tears it if the crash draw for
    /// this `(label, seq)` site fires. The happy path is atomic: encode,
    /// write `*.tmp`, fsync, rename. The crash path models the one hole
    /// in that protocol — a rename made visible before the data blocks
    /// were durable — by leaving a byte-prefix of the encoding at the
    /// *final* path, which the trailing checksum makes detectable.
    pub fn write(
        &mut self,
        iteration: usize,
        factors: &[Matrix],
        lambda: &[f32],
        fits: &[f64],
    ) -> Result<WriteOutcome, CheckpointError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = encode(seq, iteration, factors, lambda, fits);
        let path = self.file_path(seq);
        if let Some(frac) = self
            .crash
            .as_ref()
            .and_then(|p| p.write_crash(&self.label, seq))
        {
            let torn = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
            std::fs::write(&path, &bytes[..torn]).map_err(|e| CheckpointError::io(&path, e))?;
            return Ok(WriteOutcome::Crashed {
                seq,
                torn_bytes: torn as u64,
            });
        }
        let tmp = self.dir.join(format!("ckpt-{seq:08}.tmp"));
        let write_all = || -> std::io::Result<()> {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()
        };
        write_all().map_err(|e| CheckpointError::io(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| CheckpointError::io(&path, e))?;
        Ok(WriteOutcome::Written {
            seq,
            bytes: bytes.len() as u64,
        })
    }

    /// Scans back (newest sequence first) to the most recent checkpoint
    /// that decodes and checksums clean, counting every torn/corrupt
    /// file skipped on the way.
    pub fn latest_valid(&self) -> Result<Scan, CheckpointError> {
        let mut skipped = 0u64;
        for seq in Self::scan_seqs(&self.dir)? {
            match load(&self.file_path(seq)) {
                Ok(state) => {
                    return Ok(Scan {
                        state: Some(state),
                        skipped,
                    })
                }
                Err(CheckpointError::Io { path, detail }) => {
                    return Err(CheckpointError::Io { path, detail })
                }
                Err(_) => skipped += 1,
            }
        }
        Ok(Scan {
            state: None,
            skipped,
        })
    }
}

/// Encodes one checkpoint to its on-disk byte representation.
fn encode(seq: u64, iteration: usize, factors: &[Matrix], lambda: &[f32], fits: &[f64]) -> Vec<u8> {
    let rank = factors.first().map_or(0, |m| m.cols());
    let mut b = Vec::with_capacity(
        64 + factors
            .iter()
            .map(|m| 8 + m.data().len() * 4)
            .sum::<usize>(),
    );
    b.extend_from_slice(&CHECKPOINT_MAGIC);
    b.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(&(iteration as u64).to_le_bytes());
    b.extend_from_slice(&(rank as u32).to_le_bytes());
    b.extend_from_slice(&(factors.len() as u32).to_le_bytes());
    for m in factors {
        b.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        for v in m.data() {
            b.extend_from_slice(&v.to_le_bytes());
        }
    }
    b.extend_from_slice(&(lambda.len() as u64).to_le_bytes());
    for v in lambda {
        b.extend_from_slice(&v.to_le_bytes());
    }
    b.extend_from_slice(&(fits.len() as u64).to_le_bytes());
    for v in fits {
        b.extend_from_slice(&v.to_le_bytes());
    }
    let sum = fnv1a64(&b);
    b.extend_from_slice(&sum.to_le_bytes());
    b
}

/// Loads and validates one checkpoint file.
pub fn load(path: &Path) -> Result<CheckpointState, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| CheckpointError::io(path, e))?;
    decode(&bytes, path)
}

/// Decodes one checkpoint from bytes, validating magic, version, and
/// the trailing checksum before trusting any length field.
pub fn decode(bytes: &[u8], path: &Path) -> Result<CheckpointState, CheckpointError> {
    let p = || path.display().to_string();
    // Header (4+4+8+8+4+4) + three zero-length sections (8·3) + checksum.
    if bytes.len() < 4 + 4 + 8 + 8 + 4 + 4 + 8 {
        return Err(CheckpointError::TooShort { path: p() });
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic { path: p() });
    }
    let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let mut c = Cursor {
        bytes: payload,
        pos: 4,
        path,
    };
    let version = c.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion { path: p(), version });
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(sum_bytes);
    if fnv1a64(payload) != u64::from_le_bytes(sum) {
        return Err(CheckpointError::ChecksumMismatch { path: p() });
    }
    let seq = c.u64()?;
    let iteration = c.u64()? as usize;
    let rank = c.u32()? as usize;
    let order = c.u32()? as usize;
    let mut factors = Vec::with_capacity(order.min(8));
    for _ in 0..order {
        let rows = c.u64()? as usize;
        let n = rows
            .checked_mul(rank)
            .ok_or_else(|| c.malformed("factor size overflows"))?;
        let data = c.f32s(n)?;
        factors.push(Matrix::from_vec(rows, rank, data));
    }
    let lambda_len = c.u64()? as usize;
    let lambda = c.f32s(lambda_len)?;
    let fits_len = c.u64()? as usize;
    let fits = c.f64s(fits_len)?;
    if c.pos != payload.len() {
        return Err(c.malformed("trailing bytes after fits"));
    }
    Ok(CheckpointState {
        seq,
        iteration,
        factors,
        lambda,
        fits,
    })
}

/// Bounds-checked little-endian reader over a checkpoint payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl Cursor<'_> {
    fn malformed(&self, detail: &str) -> CheckpointError {
        CheckpointError::Malformed {
            path: self.path.display().to_string(),
            detail: detail.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.malformed("length field overruns the file"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(
            n.checked_mul(4)
                .ok_or_else(|| self.malformed("f32 count overflows"))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, CheckpointError> {
        let raw = self.take(
            n.checked_mul(8)
                .ok_or_else(|| self.malformed("f64 count overflows"))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }
}

/// FNV-1a over bytes — the file checksum. Not cryptographic; it only
/// needs to make torn writes and bit rot self-evident.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sptk_ckpt_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_state() -> (Vec<Matrix>, Vec<f32>, Vec<f64>) {
        let factors = vec![
            Matrix::random(5, 4, 1),
            Matrix::random(6, 4, 2),
            Matrix::random(7, 4, 3),
        ];
        let lambda = vec![1.0, 0.5, 0.25, 0.125];
        let fits = vec![0.1, 0.4, 0.7];
        (factors, lambda, fits)
    }

    #[test]
    fn write_then_load_round_trips_exactly() {
        let dir = tmpdir("roundtrip");
        let mut store = CheckpointStore::open(&dir, "t").unwrap();
        let (factors, lambda, fits) = sample_state();
        let out = store.write(3, &factors, &lambda, &fits).unwrap();
        assert!(matches!(out, WriteOutcome::Written { seq: 0, .. }));
        let scan = store.latest_valid().unwrap();
        assert_eq!(scan.skipped, 0);
        let state = scan.state.unwrap();
        assert_eq!(state.seq, 0);
        assert_eq!(state.iteration, 3);
        assert_eq!(state.factors, factors);
        assert_eq!(state.lambda, lambda);
        assert_eq!(state.fits, fits);
        // No temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_tears_the_file_and_scan_skips_it() {
        let dir = tmpdir("crash");
        let plan = FaultPlan::parse("crash:1.0", 99).unwrap();
        let mut store = CheckpointStore::open(&dir, "job0")
            .unwrap()
            .with_crash_plan(Some(&plan));
        let (factors, lambda, fits) = sample_state();
        // Rate 1: every write crashes.
        let out = store.write(2, &factors, &lambda, &fits).unwrap();
        let WriteOutcome::Crashed { seq, torn_bytes } = out else {
            panic!("rate-1 crash plan must tear the write: {out:?}");
        };
        assert_eq!(seq, 0);
        let full = encode(0, 2, &factors, &lambda, &fits).len() as u64;
        assert!(torn_bytes < full, "torn file must be a strict prefix");
        // The torn file sits at the final path and fails validation.
        let err = load(&store.file_path(0)).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::TooShort { .. }
                    | CheckpointError::ChecksumMismatch { .. }
                    | CheckpointError::BadMagic { .. }
            ),
            "torn file must fail with a typed error, got {err:?}"
        );
        let scan = store.latest_valid().unwrap();
        assert!(scan.state.is_none());
        assert_eq!(scan.skipped, 1);

        // A clean write after the crash scans past the torn file.
        let mut clean = CheckpointStore::open(&dir, "job0").unwrap();
        assert_eq!(clean.next_seq, 1, "crashed seq is never reused");
        clean.write(4, &factors, &lambda, &fits).unwrap();
        let scan = clean.latest_valid().unwrap();
        assert_eq!(scan.state.unwrap().iteration, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_foreign_files_yield_typed_errors() {
        let dir = tmpdir("typed");
        let mut store = CheckpointStore::open(&dir, "t").unwrap();
        let (factors, lambda, fits) = sample_state();
        store.write(1, &factors, &lambda, &fits).unwrap();
        let path = store.file_path(0);
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip one payload byte: checksum mismatch.
        bytes[20] ^= 0xFF;
        assert!(matches!(
            decode(&bytes, &path),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        let mut bad = std::fs::read(&path).unwrap();
        bad[0] = b'X';
        assert!(matches!(
            decode(&bad, &path),
            Err(CheckpointError::BadMagic { .. })
        ));

        // Unsupported version (checksum re-stamped so version is reached).
        let mut vnext = std::fs::read(&path).unwrap();
        vnext[4..8].copy_from_slice(&2u32.to_le_bytes());
        let n = vnext.len() - 8;
        let sum = fnv1a64(&vnext[..n]);
        vnext[n..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&vnext, &path),
            Err(CheckpointError::UnsupportedVersion { version: 2, .. })
        ));

        // Truncation.
        assert!(matches!(
            decode(&bytes[..10], &path),
            Err(CheckpointError::TooShort { .. })
        ));

        // Errors display as human-readable messages naming the path.
        let msg = CheckpointError::ChecksumMismatch {
            path: "x.spck".to_string(),
        }
        .to_string();
        assert!(msg.contains("x.spck"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_returns_newest_valid_across_generations() {
        let dir = tmpdir("generations");
        let mut store = CheckpointStore::open(&dir, "t").unwrap();
        let (factors, lambda, _) = sample_state();
        for it in 1..=3usize {
            store
                .write(it, &factors, &lambda, &vec![0.1 * it as f64; it])
                .unwrap();
        }
        // Corrupt the newest file by hand; the scan falls back to seq 1.
        let newest = store.file_path(2);
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let scan = store.latest_valid().unwrap();
        assert_eq!(scan.skipped, 1);
        let state = scan.state.unwrap();
        assert_eq!(state.seq, 1);
        assert_eq!(state.iteration, 2);
        assert_eq!(state.fits.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
