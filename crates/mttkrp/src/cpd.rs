//! CPD-ALS — paper Algorithm 1, generic over the MTTKRP backend.
//!
//! Each iteration updates every factor in turn:
//! `Aₙ ← MTTKRP(X, n) · (∗ₘ≠ₙ AₘᵀAₘ)†`, then normalizes the updated
//! factor's columns into `λ`. The MTTKRP is supplied as a closure so any
//! kernel in this crate (CPU or simulated-GPU) can drive a full
//! decomposition — MTTKRP being "a common bottleneck for CPD" is the
//! paper's entire motivation.

use std::time::Instant;

use dense::{pseudo_inverse, spd_condition, HadamardChain, Matrix};
use simprof::{ModeTiming, ResilienceRecord, RunManifest};
use sptensor::CooTensor;

use crate::reference::random_factors;

/// CPD-ALS configuration.
#[derive(Debug, Clone, Copy)]
pub struct CpdOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Maximum ALS iterations (paper term: `outer_iters`).
    pub max_iters: usize,
    /// Stop when the fit improves by less than this.
    pub tol: f64,
    /// Factor initialization seed.
    pub seed: u64,
}

impl Default for CpdOptions {
    fn default() -> Self {
        CpdOptions {
            rank: 16,
            max_iters: 25,
            tol: 1e-5,
            seed: 0xC9D,
        }
    }
}

/// Decomposition output.
#[derive(Debug, Clone)]
pub struct CpdResult {
    /// Normalized factor matrices, one per mode.
    pub factors: Vec<Matrix>,
    /// Column weights (norms absorbed from the last-updated factor).
    pub lambda: Vec<f32>,
    /// Fit after each iteration: `1 − ‖X − X̃‖ / ‖X‖`.
    pub fits: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: usize,
}

impl CpdResult {
    /// Final fit (0 when no iterations ran).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }
}

/// Runs CPD-ALS on `t` using `mttkrp(factors, mode)` as the kernel.
///
/// The closure must return `X₍ₙ₎ ⨀ₘ≠ₙ factors[m]` exactly like
/// [`crate::reference::mttkrp`] — every backend in this crate qualifies.
///
/// ```
/// use mttkrp::cpd::{cpd_als, CpdOptions};
/// use mttkrp::reference;
/// use sptensor::synth::uniform_random;
///
/// let t = uniform_random(&[6, 7, 8], 100, 1);
/// let opts = CpdOptions { rank: 3, max_iters: 5, tol: 0.0, seed: 2 };
/// let res = cpd_als(&t, &opts, |factors, mode| reference::mttkrp(&t, factors, mode));
/// assert_eq!(res.iterations, 5);
/// assert_eq!(res.factors.len(), 3);
/// assert!(res.final_fit() > 0.0);
/// ```
pub fn cpd_als(
    t: &CooTensor,
    opts: &CpdOptions,
    mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
) -> CpdResult {
    cpd_als_impl(t, opts, mttkrp, None, None)
}

/// [`cpd_als`] with iteration telemetry: per-mode MTTKRP wall time, fit
/// trajectory, and total run time are appended to `manifest` (one
/// [`IterationRecord`](simprof::IterationRecord) per ALS iteration). The
/// manifest's `rank`/`max_iters`/`tol`/`seed` are overwritten from `opts`
/// so the written document always describes the run that produced it.
/// With a `ctx`, per-iteration simulated timings are observed into its
/// registry (`cpd.iter_sim_us`) and `iteration` events are emitted when
/// its telemetry stream is enabled.
pub fn cpd_als_profiled(
    t: &CooTensor,
    opts: &CpdOptions,
    mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    manifest: &mut RunManifest,
    ctx: Option<&crate::gpu::GpuContext>,
) -> CpdResult {
    cpd_als_impl(t, opts, mttkrp, Some(manifest), ctx)
}

/// [`cpd_als`] driven by pre-captured launch plans: one
/// [`ModePlans`](crate::gpu::ModePlans) replay per (iteration, mode)
/// instead of a fresh kernel emission. Numerically identical to wiring
/// `plans.execute` into [`cpd_als`] by hand — this is the convenience
/// spelling of the plan/execute split.
pub fn cpd_als_planned(
    t: &CooTensor,
    opts: &CpdOptions,
    ctx: &crate::gpu::GpuContext,
    plans: &crate::gpu::ModePlans,
) -> CpdResult {
    cpd_als_impl(
        t,
        opts,
        |factors, mode| match plans.execute(ctx, factors, mode) {
            Ok(run) => run.y,
            // A launch refusal (rank/shape mismatch against the captured
            // plan) cannot be retried at this layer; degrade to the
            // reference kernel rather than poison the whole run.
            Err(_) => crate::reference::mttkrp(t, factors, mode),
        },
        None,
        Some(ctx),
    )
}

/// Stamps `opts` into the manifest so the document matches the run.
fn sync_manifest(manifest: &mut RunManifest, opts: &CpdOptions) {
    manifest.rank = opts.rank;
    manifest.max_iters = opts.max_iters;
    manifest.tol = opts.tol;
    manifest.seed = opts.seed;
}

/// Records one completed ALS iteration against the context's *simulated*
/// clock: the `cpd.iter_sim_us` histogram plus an `iteration` event. The
/// clock only moves when kernels replay through the context, so the
/// delta is the iteration's total simulated kernel time — wall-clock
/// timings stay in the manifest, deterministic timings live here.
fn note_iteration(ctx: &crate::gpu::GpuContext, iteration: usize, fit: f64, start_us: f64) {
    let tel = &ctx.telemetry;
    let sim_us = (tel.now_us() - start_us).max(0.0);
    ctx.registry
        .observe("cpd.iter_sim_us", sim_us.round() as u64);
    if tel.enabled() {
        tel.emit(
            "iteration",
            None,
            tel.new_span(),
            &[
                ("iteration", simprof::FieldValue::from(iteration)),
                ("fit", simprof::FieldValue::from(fit)),
                ("iter_sim_us", simprof::FieldValue::from(sim_us)),
            ],
        );
    }
}

fn cpd_als_impl(
    t: &CooTensor,
    opts: &CpdOptions,
    mut mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    mut manifest: Option<&mut RunManifest>,
    ctx: Option<&crate::gpu::GpuContext>,
) -> CpdResult {
    let run_start = Instant::now();
    if let Some(m) = manifest.as_deref_mut() {
        sync_manifest(m, opts);
    }
    let order = t.order();
    let mut factors = random_factors(t, opts.rank, opts.seed);
    let mut lambda = vec![1.0f32; opts.rank];
    let mut grams: Vec<Matrix> = factors.iter().map(Matrix::gram).collect();
    let norm_x = t
        .values()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt();

    let mut fits = Vec::new();
    let mut prev_fit = 0.0f64;
    let mut iterations = 0;

    for _iter in 0..opts.max_iters {
        let iter_start = Instant::now();
        let iter_sim_start = ctx.map_or(0.0, |c| c.telemetry.now_us());
        let mut mode_timings: Vec<ModeTiming> = Vec::new();
        // V = ∗_{m≠n} AₘᵀAₘ  (Eq. 3's gram-Hadamard), served from cached
        // prefix/suffix partial products across the sweep (Phan et al.
        // 2013) instead of an O(order²) per-iteration refold.
        let mut chain = HadamardChain::new(&grams, opts.rank);
        for mode in 0..order {
            let mttkrp_start = Instant::now();
            let y = mttkrp(&factors, mode);
            if manifest.is_some() {
                mode_timings.push(ModeTiming {
                    mode,
                    mttkrp_seconds: mttkrp_start.elapsed().as_secs_f64(),
                });
            }
            let v = chain.v(mode);
            let mut a_new = y.matmul(&pseudo_inverse(&v));
            lambda = a_new.normalize_columns();
            // Guard against zero columns collapsing the decomposition.
            for l in &mut lambda {
                if *l == 0.0 {
                    *l = 1e-30;
                }
            }
            grams[mode] = a_new.gram();
            chain.advance(&grams[mode]);
            factors[mode] = a_new;
        }
        iterations += 1;

        let fit = compute_fit(t, &factors, &lambda, &grams, norm_x);
        fits.push(fit);
        if let Some(m) = manifest.as_deref_mut() {
            m.push_iteration(fit, mode_timings, iter_start.elapsed().as_secs_f64());
        }
        if let Some(c) = ctx {
            note_iteration(c, iterations - 1, fit, iter_sim_start);
        }
        if iterations > 1 && (fit - prev_fit).abs() < opts.tol {
            break;
        }
        prev_fit = fit;
    }
    if let Some(m) = manifest {
        m.total_seconds = run_start.elapsed().as_secs_f64();
    }

    CpdResult {
        factors,
        lambda,
        fits,
        iterations,
    }
}

/// Self-healing policy for [`cpd_als_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct ResilienceOptions {
    /// Take a factor checkpoint every this many ALS iterations (the last
    /// non-regressed state rollbacks return to).
    pub checkpoint_every: usize,
    /// A fit drop larger than this (vs. the best fit seen) triggers a
    /// rollback to the last checkpoint.
    pub fit_drop_tol: f64,
    /// Rollbacks allowed before regressions are accepted as-is (prevents
    /// livelock under a persistently hostile fault plan).
    pub max_rollbacks: u64,
    /// Gram-Hadamard condition number above which the normal equations are
    /// Tikhonov-regularized before inversion.
    pub cond_limit: f64,
    /// Relative ridge weight for the Tikhonov fallback: the diagonal gets
    /// `ridge × trace(V)/R` added.
    pub ridge: f32,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            checkpoint_every: 2,
            fit_drop_tol: 1e-3,
            max_rollbacks: 3,
            cond_limit: 1e8,
            ridge: 1e-4,
        }
    }
}

/// What the self-healing machinery did during a [`cpd_als_resilient`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Non-finite entries scrubbed from MTTKRP outputs and factor updates.
    pub nan_resets: u64,
    /// Normal-equations solves that took the Tikhonov-regularized path.
    pub tikhonov_fallbacks: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Rollbacks to a checkpoint after a fit regression.
    pub rollbacks: u64,
}

/// Replaces non-finite entries with zero; returns how many were scrubbed.
fn scrub_nonfinite(m: &mut Matrix) -> u64 {
    let mut n = 0u64;
    for v in m.data_mut() {
        if !v.is_finite() {
            *v = 0.0;
            n += 1;
        }
    }
    n
}

/// A rollback target: everything ALS needs to resume from an iteration
/// (grams are recomputed after the rollback jitter, so not stored).
#[derive(Clone)]
struct Checkpoint {
    factors: Vec<Matrix>,
    lambda: Vec<f32>,
    fit: f64,
}

/// [`cpd_als`] hardened against faulty MTTKRP backends — the CPD layer of
/// the simfault stack. Three independent guards:
///
/// 1. **NaN/Inf scrubbing** — non-finite entries in a kernel's output or
///    in the updated factor are replaced with zero (then repaired by later
///    iterations) instead of poisoning the whole decomposition.
/// 2. **Tikhonov fallback** — when the Gram-Hadamard matrix `V` is
///    ill-conditioned (corrupted factors routinely degenerate it), a
///    relative ridge is added before the pseudo-inverse.
/// 3. **Checkpoint & rollback** — factors are checkpointed every
///    [`ResilienceOptions::checkpoint_every`] iterations; a fit regression
///    beyond [`ResilienceOptions::fit_drop_tol`] rolls back to the last
///    checkpoint and re-jitters the factors (deterministically, from
///    `opts.seed` and the rollback count) so the re-run does not retrace
///    the corrupted trajectory.
///
/// Every event is counted in the returned [`ResilienceStats`] and — when a
/// manifest is supplied — merged into [`RunManifest::resilience`]. With a
/// fault-free backend every guard is inert: the result equals
/// [`cpd_als`]'s exactly.
///
/// Checkpoints here are in-memory rollback targets. Setting
/// [`ResilienceOptions::checkpoint_every`] to `0` disables checkpointing
/// entirely: no checkpoints are taken, so a fit regression has no
/// rollback target and the run rides it out (rollbacks stay at zero).
/// For durable, crash-consistent checkpoints on disk see
/// [`cpd_als_resilient_durable`].
pub fn cpd_als_resilient(
    t: &CooTensor,
    opts: &CpdOptions,
    ropts: &ResilienceOptions,
    mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    manifest: Option<&mut RunManifest>,
    ctx: Option<&crate::gpu::GpuContext>,
) -> (CpdResult, ResilienceStats) {
    cpd_als_resilient_inner(t, opts, ropts, mttkrp, manifest, ctx, None)
}

/// How [`cpd_als_resilient_durable`] persists and resumes state.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Directory the checkpoint files live in (created if missing).
    pub dir: std::path::PathBuf,
    /// Run label keying the crash-fault draws — same label, same plan,
    /// same crashes. Service jobs use `"job<id>"`.
    pub label: String,
    /// Scan the directory for the newest *valid* checkpoint (skipping
    /// torn/corrupt files) and warm-restart from it.
    pub resume: bool,
    /// Treat an injected mid-write crash as process death: stop the run
    /// right there (the torn file stays on disk for the next restart to
    /// scan past). When `false` the crash only loses that checkpoint —
    /// the computation itself continues, like a failed async snapshot.
    pub halt_on_crash: bool,
}

/// Durable-checkpoint state threaded through one resilient ALS run.
struct DurableSession {
    store: crate::checkpoint::CheckpointStore,
    record: simprof::CheckpointRecord,
    resume: Option<crate::checkpoint::CheckpointState>,
    halt_on_crash: bool,
    halted: bool,
    error: Option<crate::checkpoint::CheckpointError>,
}

/// [`cpd_als_resilient`] with durable, crash-consistent checkpoints: at
/// every in-memory checkpoint a versioned, checksummed file is written
/// atomically (temp + fsync + rename) through a
/// [`CheckpointStore`](crate::checkpoint::CheckpointStore), and with
/// `resume` set the run warm-restarts from the newest valid file —
/// scanning back past any torn files a `crash:RATE` fault (drawn from
/// the context's [`crash_fault_plan`](crate::gpu::GpuContext::crash_fault_plan))
/// left behind.
///
/// ALS is deterministic, so with a fault-free backend a resumed run
/// replays the identical remaining iterations: its final fit equals the
/// uninterrupted run's **exactly** — the invariant the chaos harness
/// asserts at 1e-9.
///
/// Returns the checkpoint activity alongside the usual result and stats
/// (also merged into [`RunManifest::checkpointing`] when a manifest is
/// supplied); `record.halted` reports whether an injected crash stopped
/// the run early under [`DurableOptions::halt_on_crash`]. `Err` is
/// reserved for genuine I/O failures — injected crashes are data, not
/// errors.
pub fn cpd_als_resilient_durable(
    t: &CooTensor,
    opts: &CpdOptions,
    ropts: &ResilienceOptions,
    dopts: &DurableOptions,
    mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    mut manifest: Option<&mut RunManifest>,
    ctx: Option<&crate::gpu::GpuContext>,
) -> Result<
    (CpdResult, ResilienceStats, simprof::CheckpointRecord),
    crate::checkpoint::CheckpointError,
> {
    let crash = ctx.and_then(|c| c.crash_fault_plan());
    let store =
        crate::checkpoint::CheckpointStore::open(&dopts.dir, &dopts.label)?.with_crash_plan(crash);
    let mut record = simprof::CheckpointRecord::default();
    let mut resume = None;
    if dopts.resume {
        let scan = store.latest_valid()?;
        record.torn_skipped += scan.skipped;
        if let Some(state) = scan.state {
            record.resumes += 1;
            record.resumed_iteration = state.iteration as u64;
            resume = Some(state);
        }
    }
    let mut session = DurableSession {
        store,
        record,
        resume,
        halt_on_crash: dopts.halt_on_crash,
        halted: false,
        error: None,
    };
    let (result, stats) = cpd_als_resilient_inner(
        t,
        opts,
        ropts,
        mttkrp,
        manifest.as_deref_mut(),
        ctx,
        Some(&mut session),
    );
    if let Some(e) = session.error {
        return Err(e);
    }
    session.record.halted = session.halted;
    if let Some(m) = manifest {
        m.checkpointing.merge(&session.record);
    }
    Ok((result, stats, session.record))
}

fn cpd_als_resilient_inner(
    t: &CooTensor,
    opts: &CpdOptions,
    ropts: &ResilienceOptions,
    mut mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    mut manifest: Option<&mut RunManifest>,
    ctx: Option<&crate::gpu::GpuContext>,
    mut durable: Option<&mut DurableSession>,
) -> (CpdResult, ResilienceStats) {
    let run_start = Instant::now();
    if let Some(m) = manifest.as_deref_mut() {
        sync_manifest(m, opts);
    }
    let order = t.order();
    let mut factors = random_factors(t, opts.rank, opts.seed);
    let mut lambda = vec![1.0f32; opts.rank];
    let mut grams: Vec<Matrix> = factors.iter().map(Matrix::gram).collect();
    let norm_x = t
        .values()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt();

    let mut stats = ResilienceStats::default();
    let mut checkpoint: Option<Checkpoint> = None;
    let mut best_fit = f64::NEG_INFINITY;
    let mut fits = Vec::new();
    let mut prev_fit = 0.0f64;
    let mut iterations = 0;

    // Warm restart: adopt the checkpointed trajectory wholesale. Grams
    // are recomputed from the restored factors (they are pure functions
    // of them), `prev_fit`/`best_fit` are re-derived from the restored
    // fit trajectory, and the restored state doubles as the in-memory
    // rollback target — exactly the state an uninterrupted run had right
    // after taking that checkpoint, so the continuation is bit-identical.
    if let Some(state) = durable.as_deref_mut().and_then(|d| d.resume.take()) {
        factors = state.factors;
        lambda = state.lambda;
        fits = state.fits;
        iterations = state.iteration;
        prev_fit = fits.last().copied().unwrap_or(0.0);
        best_fit = fits
            .iter()
            .copied()
            .filter(|f| f.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        checkpoint = Some(Checkpoint {
            factors: factors.clone(),
            lambda: lambda.clone(),
            fit: prev_fit,
        });
        grams = factors.iter().map(Matrix::gram).collect();
        if let Some(c) = ctx {
            let tel = &c.telemetry;
            if tel.enabled() {
                tel.emit(
                    "checkpoint-resume",
                    None,
                    tel.new_span(),
                    &[
                        ("seq", simprof::FieldValue::from(state.seq)),
                        ("iteration", simprof::FieldValue::from(iterations)),
                    ],
                );
            }
        }
    }

    while iterations < opts.max_iters {
        let iter_start = Instant::now();
        let iter_sim_start = ctx.map_or(0.0, |c| c.telemetry.now_us());
        let mut mode_timings: Vec<ModeTiming> = Vec::new();
        let mut chain = HadamardChain::new(&grams, opts.rank);
        for mode in 0..order {
            let mttkrp_start = Instant::now();
            let mut y = mttkrp(&factors, mode);
            if manifest.is_some() {
                mode_timings.push(ModeTiming {
                    mode,
                    mttkrp_seconds: mttkrp_start.elapsed().as_secs_f64(),
                });
            }
            stats.nan_resets += scrub_nonfinite(&mut y);
            // Scrubbing applies to the joined product only — the chain's
            // cached partials stay as computed, exactly like the old
            // refold scrubbed its per-mode result and left `grams` alone.
            let mut v = chain.v(mode);
            stats.nan_resets += scrub_nonfinite(&mut v);
            if spd_condition(&v) > ropts.cond_limit {
                // Relative ridge: λI scaled to the matrix's own magnitude.
                let trace: f32 = (0..opts.rank).map(|i| v.get(i, i)).sum();
                let mu = ropts.ridge * (trace / opts.rank as f32).max(f32::MIN_POSITIVE);
                for i in 0..opts.rank {
                    v.set(i, i, v.get(i, i) + mu);
                }
                stats.tikhonov_fallbacks += 1;
            }
            let mut a_new = y.matmul(&pseudo_inverse(&v));
            stats.nan_resets += scrub_nonfinite(&mut a_new);
            lambda = a_new.normalize_columns();
            for l in &mut lambda {
                if *l == 0.0 || !l.is_finite() {
                    *l = 1e-30;
                }
            }
            grams[mode] = a_new.gram();
            chain.advance(&grams[mode]);
            factors[mode] = a_new;
        }
        iterations += 1;

        let fit = compute_fit(t, &factors, &lambda, &grams, norm_x);
        fits.push(fit);
        if let Some(m) = manifest.as_deref_mut() {
            m.push_iteration(fit, mode_timings, iter_start.elapsed().as_secs_f64());
        }
        if let Some(c) = ctx {
            note_iteration(c, iterations - 1, fit, iter_sim_start);
        }

        let regressed = fit.is_nan() || fit < best_fit - ropts.fit_drop_tol;
        let rollback_target = if regressed && stats.rollbacks < ropts.max_rollbacks {
            checkpoint.as_ref()
        } else {
            None
        };
        if let Some(cp) = rollback_target {
            // Roll back and re-jitter so the retried trajectory draws
            // different fault sites than the one that regressed.
            factors = cp.factors.clone();
            lambda = cp.lambda.clone();
            prev_fit = cp.fit;
            stats.rollbacks += 1;
            let jitter_seed = opts.seed.wrapping_add(0x5EED).wrapping_add(stats.rollbacks);
            for (m, f) in factors.iter_mut().enumerate() {
                let noise = Matrix::random(f.rows(), f.cols(), jitter_seed + m as u64);
                for (v, &nz) in f.data_mut().iter_mut().zip(noise.data()) {
                    *v += 1e-3 * nz;
                }
            }
            grams = factors.iter().map(Matrix::gram).collect();
            continue;
        }
        if fit.is_finite() && fit > best_fit {
            best_fit = fit;
        }
        if ropts.checkpoint_every > 0 && iterations % ropts.checkpoint_every == 0 && fit.is_finite()
        {
            checkpoint = Some(Checkpoint {
                factors: factors.clone(),
                lambda: lambda.clone(),
                fit,
            });
            stats.checkpoints += 1;
            if let Some(d) = durable.as_deref_mut() {
                use crate::checkpoint::WriteOutcome;
                match d.store.write(iterations, &factors, &lambda, &fits) {
                    Ok(WriteOutcome::Written { seq, bytes }) => {
                        d.record.writes += 1;
                        d.record.bytes_written += bytes;
                        if let Some(c) = ctx {
                            let tel = &c.telemetry;
                            if tel.enabled() {
                                tel.emit(
                                    "checkpoint-write",
                                    None,
                                    tel.new_span(),
                                    &[
                                        ("seq", simprof::FieldValue::from(seq)),
                                        ("iteration", simprof::FieldValue::from(iterations)),
                                        ("bytes", simprof::FieldValue::from(bytes)),
                                    ],
                                );
                            }
                        }
                    }
                    Ok(WriteOutcome::Crashed { seq, torn_bytes }) => {
                        d.record.crashes += 1;
                        if let Some(c) = ctx {
                            let tel = &c.telemetry;
                            if tel.enabled() {
                                tel.emit(
                                    "checkpoint-crash",
                                    None,
                                    tel.new_span(),
                                    &[
                                        ("seq", simprof::FieldValue::from(seq)),
                                        ("iteration", simprof::FieldValue::from(iterations)),
                                        ("torn_bytes", simprof::FieldValue::from(torn_bytes)),
                                    ],
                                );
                            }
                        }
                        if d.halt_on_crash {
                            d.halted = true;
                            break;
                        }
                    }
                    Err(e) => {
                        d.error = Some(e);
                        break;
                    }
                }
            }
        }
        if iterations > 1 && (fit - prev_fit).abs() < opts.tol {
            break;
        }
        prev_fit = fit;
    }
    if let Some(m) = manifest {
        m.total_seconds = run_start.elapsed().as_secs_f64();
        m.resilience.merge(&ResilienceRecord {
            rollbacks: stats.rollbacks,
            nan_resets: stats.nan_resets,
            tikhonov_fallbacks: stats.tikhonov_fallbacks,
            checkpoints: stats.checkpoints,
            ..ResilienceRecord::default()
        });
    }

    (
        CpdResult {
            factors,
            lambda,
            fits,
            iterations,
        },
        stats,
    )
}

/// [`cpd_als_resilient`] with every MTTKRP routed through the out-of-core
/// degradation ladder — the memory-aware layer of the simfault stack.
///
/// Each (iteration, mode) MTTKRP executes the captured plan via
/// [`crate::gpu::ooc::execute_adaptive`]: in-core when the plan's
/// [`MemoryFootprint`](crate::gpu::MemoryFootprint) fits the context's
/// [`DeviceMemory`](gpu_sim::DeviceMemory), tiled when it does not, CPU
/// reference when injected OOMs exhaust the tile budget ladder. When the
/// context also carries exec faults (bit flips / aborts / stragglers) the
/// attempt additionally runs under
/// [`run_verified`](crate::abft::run_verified), so checksum repair and
/// memory degradation compose per attempt.
///
/// Returns the aggregated [`simprof::MemoryRecord`] (one ladder story per
/// kernel execution) alongside the usual result and stats; with a
/// manifest, kernel-level ABFT events are merged into
/// [`RunManifest::resilience`] and the memory record into
/// [`RunManifest::memory`]. On an unconstrained, fault-free context every
/// execution takes the full-device rung and the result is bit-identical
/// to [`cpd_als_planned`].
pub fn cpd_als_adaptive(
    t: &CooTensor,
    opts: &CpdOptions,
    ropts: &ResilienceOptions,
    ctx: &crate::gpu::GpuContext,
    plans: &crate::gpu::ModePlans,
    oopts: &crate::gpu::OocOptions,
    mut manifest: Option<&mut RunManifest>,
) -> (CpdResult, ResilienceStats, simprof::MemoryRecord) {
    use std::cell::RefCell;

    let kernel_events: RefCell<ResilienceRecord> = RefCell::new(ResilienceRecord::default());
    let memrec: RefCell<simprof::MemoryRecord> = RefCell::new(simprof::MemoryRecord::default());
    let abft_opts = crate::abft::AbftOptions::default();
    let exec_faulted = ctx.fault_plan().is_some();

    let backend = |factors: &[Matrix], mode: usize| -> Matrix {
        let plan = plans.plan(mode);
        if exec_faulted {
            let (run, rep, mems) =
                crate::abft::run_verified_adaptive(ctx, t, factors, &abft_opts, oopts, plan);
            {
                let mut ev = kernel_events.borrow_mut();
                ev.faults_injected += rep.faults_injected;
                ev.rows_detected += rep.detected_rows.len() as u64;
                ev.kernel_retries += u64::from(rep.retries);
                ev.degraded_rows += rep.degraded_rows;
            }
            let mut mr = memrec.borrow_mut();
            for m in &mems {
                m.absorb_into(&mut mr);
            }
            run.y
        } else {
            let (run, mem) = crate::gpu::ooc::execute_adaptive(ctx, plan, factors, t, oopts);
            mem.absorb_into(&mut memrec.borrow_mut());
            run.y
        }
    };

    let (result, stats) =
        cpd_als_resilient(t, opts, ropts, backend, manifest.as_deref_mut(), Some(ctx));

    let mut mem = memrec.into_inner();
    mem.high_water_bytes = mem.high_water_bytes.max(ctx.memory.high_water());
    if !ctx.memory.is_unlimited() {
        mem.capacity_bytes = mem.capacity_bytes.max(ctx.memory.capacity());
    }
    if let Some(m) = manifest {
        m.resilience.merge(&kernel_events.into_inner());
        m.memory.merge(&mem);
    }
    (result, stats, mem)
}

/// [`cpd_als_resilient`] with every MTTKRP sharded across a simulated
/// multi-GPU node — the `simgrid` CPD driver.
///
/// One [`ShardModel`](crate::gpu::ShardModel) is built per mode up front
/// (the expensive phase: shard fit, per-device tiling, interconnect
/// pricing), then replayed for every (iteration, mode) — the multi-device
/// analogue of [`cpd_als_planned`]'s capture-once/replay-many split. Each
/// replay folds the shards' contributions in global emission order, so the
/// decomposition trajectory is bit-identical to [`cpd_als_planned`] for
/// any device count, including `--devices 1`.
///
/// Under an active execution-fault plan every replay runs inside
/// [`run_verified`](crate::abft::run_verified), composing checksum repair
/// with sharding exactly as the single-device adaptive driver does.
/// Memory-fault draws happen once at model build (leases are modeled per
/// mode, not per iteration) — a model that degraded to the CPU reference
/// stays degraded for the whole run.
///
/// Returns the accumulated [`simprof::GridRecord`] (one launch recorded
/// per sharded MTTKRP) alongside the usual result and stats; with a
/// manifest, the record is merged into [`RunManifest::grid`] and kernel
/// ABFT events into [`RunManifest::resilience`].
// The driver composes four subsystems (CPD, resilience, sharding,
// profiling); its knobs are already grouped into option structs.
#[allow(clippy::too_many_arguments)]
pub fn cpd_als_sharded(
    t: &CooTensor,
    opts: &CpdOptions,
    ropts: &ResilienceOptions,
    ctx: &crate::gpu::GpuContext,
    plans: &crate::gpu::ModePlans,
    grid: &crate::gpu::GridSpec,
    oopts: &crate::gpu::OocOptions,
    mut manifest: Option<&mut RunManifest>,
) -> (CpdResult, ResilienceStats, simprof::GridRecord) {
    use std::cell::RefCell;

    use crate::gpu::ShardModel;

    // Unreachable in practice — the tensor is always attached below —
    // but degrade to the CPU reference rather than panic if the sharded
    // engine ever refuses an execute.
    fn sharded_cpu_degrade(
        t: &CooTensor,
        plan: &crate::gpu::Plan,
        factors: &[Matrix],
        model: &ShardModel,
    ) -> (crate::gpu::GpuRun, crate::gpu::GridReport) {
        (
            crate::gpu::GpuRun {
                y: crate::reference::mttkrp(t, factors, plan.mode()),
                sim: crate::gpu::ooc::cpu_fallback_sim(plan),
                profile: None,
                abft: None,
            },
            model.report(),
        )
    }

    // Model phase, once per mode: the per-iteration replays only clone
    // values out of these.
    let models: Vec<ShardModel> = (0..t.order())
        .map(|m| ShardModel::build(ctx, plans.plan(m), grid, oopts))
        .collect();

    let grid_rec: RefCell<simprof::GridRecord> = RefCell::new(simprof::GridRecord::default());
    let kernel_events: RefCell<ResilienceRecord> = RefCell::new(ResilienceRecord::default());
    let abft_opts = crate::abft::AbftOptions::default();
    let exec_faulted = ctx.fault_plan().is_some();

    let backend = |factors: &[Matrix], mode: usize| -> Matrix {
        let plan = plans.plan(mode);
        let model = &models[mode];
        if exec_faulted {
            // Verified sharded replay: the sharded engine is the kernel
            // under test, run_verified wraps it with checksum + retry.
            let (run, rep) =
                crate::abft::run_verified(ctx, t, factors, plan.mode(), &abft_opts, |c| {
                    let (run, g) = model
                        .execute(c, plan, factors, Some(t))
                        .unwrap_or_else(|_| sharded_cpu_degrade(t, plan, factors, model));
                    grid_rec.borrow_mut().merge(&g.to_record());
                    run
                });
            let mut ev = kernel_events.borrow_mut();
            ev.faults_injected += rep.faults_injected;
            ev.rows_detected += rep.detected_rows.len() as u64;
            ev.kernel_retries += u64::from(rep.retries);
            ev.degraded_rows += rep.degraded_rows;
            run.y
        } else {
            let (run, g) = model
                .execute(ctx, plan, factors, Some(t))
                .unwrap_or_else(|_| sharded_cpu_degrade(t, plan, factors, model));
            grid_rec.borrow_mut().merge(&g.to_record());
            run.y
        }
    };

    let (result, stats) =
        cpd_als_resilient(t, opts, ropts, backend, manifest.as_deref_mut(), Some(ctx));

    let rec = grid_rec.into_inner();
    if let Some(m) = manifest {
        m.resilience.merge(&kernel_events.into_inner());
        m.grid.merge(&rec);
    }
    (result, stats, rec)
}

/// Non-negative CPD via multiplicative updates (Lee–Seung generalized to
/// tensors): `Aₙ ← Aₙ ∗ MTTKRP(X, n) ⊘ (Aₙ · Vₙ)` with
/// `Vₙ = ∗ₘ≠ₙ AₘᵀAₘ`. Keeps every factor entry ≥ 0 — the constraint the
/// paper's motivating applications (e.g. Marble's high-throughput
/// phenotyping from health records) impose on CPD. The tensor's values
/// must be non-negative.
///
/// Shares the MTTKRP-backend contract with [`cpd_als`], so the same
/// simulated-GPU kernels drive it.
pub fn cpd_als_nonneg(
    t: &CooTensor,
    opts: &CpdOptions,
    mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
) -> CpdResult {
    cpd_als_nonneg_impl(t, opts, mttkrp, None)
}

/// [`cpd_als_nonneg`] with the same iteration telemetry as
/// [`cpd_als_profiled`].
pub fn cpd_als_nonneg_profiled(
    t: &CooTensor,
    opts: &CpdOptions,
    mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    manifest: &mut RunManifest,
) -> CpdResult {
    cpd_als_nonneg_impl(t, opts, mttkrp, Some(manifest))
}

fn cpd_als_nonneg_impl(
    t: &CooTensor,
    opts: &CpdOptions,
    mut mttkrp: impl FnMut(&[Matrix], usize) -> Matrix,
    mut manifest: Option<&mut RunManifest>,
) -> CpdResult {
    let run_start = Instant::now();
    if let Some(m) = manifest.as_deref_mut() {
        sync_manifest(m, opts);
    }
    assert!(
        t.values().iter().all(|&v| v >= 0.0),
        "non-negative CPD requires a non-negative tensor"
    );
    const EPS: f32 = 1e-12;
    let order = t.order();
    let mut factors = random_factors(t, opts.rank, opts.seed);
    let mut grams: Vec<Matrix> = factors.iter().map(Matrix::gram).collect();
    let norm_x = t
        .values()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt();

    let mut fits = Vec::new();
    let mut prev_fit = 0.0f64;
    let mut iterations = 0;
    for _iter in 0..opts.max_iters {
        let iter_start = Instant::now();
        let mut mode_timings: Vec<ModeTiming> = Vec::new();
        let mut chain = HadamardChain::new(&grams, opts.rank);
        for mode in 0..order {
            let mttkrp_start = Instant::now();
            let y = mttkrp(&factors, mode);
            if manifest.is_some() {
                mode_timings.push(ModeTiming {
                    mode,
                    mttkrp_seconds: mttkrp_start.elapsed().as_secs_f64(),
                });
            }
            let v = chain.v(mode);
            // Denominator A·V, then the multiplicative update.
            let denom = factors[mode].matmul(&v);
            let a = &mut factors[mode];
            for i in 0..a.rows() {
                for c in 0..opts.rank {
                    let upd = a.get(i, c) * y.get(i, c) / (denom.get(i, c) + EPS);
                    a.set(i, c, upd.max(0.0));
                }
            }
            grams[mode] = factors[mode].gram();
            chain.advance(&grams[mode]);
        }
        iterations += 1;
        let lambda_ones = vec![1.0f32; opts.rank];
        let fit = compute_fit(t, &factors, &lambda_ones, &grams, norm_x);
        fits.push(fit);
        if let Some(m) = manifest.as_deref_mut() {
            m.push_iteration(fit, mode_timings, iter_start.elapsed().as_secs_f64());
        }
        if iterations > 1 && (fit - prev_fit).abs() < opts.tol {
            break;
        }
        prev_fit = fit;
    }
    if let Some(m) = manifest {
        m.total_seconds = run_start.elapsed().as_secs_f64();
    }

    // Absorb column norms into λ at the end (updates stay unnormalized).
    let mut lambda = vec![1.0f32; opts.rank];
    if let Some(last) = factors.last_mut() {
        lambda = last.normalize_columns();
        for l in &mut lambda {
            if *l == 0.0 {
                *l = 1e-30;
            }
        }
    }
    CpdResult {
        factors,
        lambda,
        fits,
        iterations,
    }
}

/// Fit = `1 − ‖X − X̃‖ / ‖X‖`, computed without materializing `X̃`:
/// `‖X − X̃‖² = ‖X‖² − 2⟨X, X̃⟩ + ‖X̃‖²` with
/// `⟨X, X̃⟩ = Σ_z val_z Σ_r λ_r Π_m Aₘ(i_m, r)` and
/// `‖X̃‖² = Σ_{r,s} λ_r λ_s Π_m (AₘᵀAₘ)_{r,s}`.
fn compute_fit(
    t: &CooTensor,
    factors: &[Matrix],
    lambda: &[f32],
    grams: &[Matrix],
    norm_x: f64,
) -> f64 {
    let r = lambda.len();
    let order = t.order();
    // ⟨X, X̃⟩
    let mut inner = 0.0f64;
    let mut prod = vec![0.0f32; r];
    for z in 0..t.nnz() {
        for (c, p) in prod.iter_mut().enumerate() {
            *p = lambda[c];
        }
        for m in 0..order {
            let row = factors[m].row(t.mode_indices(m)[z] as usize);
            for (p, &f) in prod.iter_mut().zip(row) {
                *p *= f;
            }
        }
        inner += t.values()[z] as f64 * prod.iter().map(|&p| p as f64).sum::<f64>();
    }
    fit_from_inner(inner, lambda, grams, norm_x)
}

/// The data-independent tail of the fit formula: given the streaming- or
/// resident-computed `⟨X, X̃⟩`, folds in `‖X̃‖²` from the grams and closes
/// `1 − ‖X − X̃‖ / ‖X‖`. Shared by [`compute_fit`] and the out-of-core
/// driver (`gpu::stream`), which computes `inner` over a chunk stream in
/// the identical entry order — so the two fits agree bit for bit.
pub(crate) fn fit_from_inner(inner: f64, lambda: &[f32], grams: &[Matrix], norm_x: f64) -> f64 {
    let r = lambda.len();
    // ‖X̃‖²
    let mut model_sq = 0.0f64;
    for a in 0..r {
        for b in 0..r {
            let mut g = lambda[a] as f64 * lambda[b] as f64;
            for gram in grams {
                g *= gram.get(a, b) as f64;
            }
            model_sq += g;
        }
    }
    let resid_sq = (norm_x * norm_x - 2.0 * inner + model_sq).max(0.0);
    if norm_x == 0.0 {
        return 1.0;
    }
    1.0 - resid_sq.sqrt() / norm_x
}

/// Factor match score between two decompositions: greedy one-to-one
/// matching of components by the product of per-mode column cosines
/// (1.0 = identical up to column permutation and scaling). The standard
/// metric for "did CPD recover the planted factors".
pub fn factor_match_score(a: &[Matrix], b: &[Matrix]) -> f64 {
    assert_eq!(a.len(), b.len(), "factor sets must have the same order");
    let r = a[0].cols();
    assert!(
        b.iter().all(|m| m.cols() == r) && a.iter().all(|m| m.cols() == r),
        "factor sets must share the rank"
    );
    let cosine = |m1: &Matrix, m2: &Matrix, c1: usize, c2: usize| -> f64 {
        let (mut dot, mut n1, mut n2) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..m1.rows() {
            let (x, y) = (m1.get(i, c1) as f64, m2.get(i, c2) as f64);
            dot += x * y;
            n1 += x * x;
            n2 += y * y;
        }
        if n1 == 0.0 || n2 == 0.0 {
            0.0
        } else {
            (dot / (n1.sqrt() * n2.sqrt())).abs()
        }
    };
    // Pairwise component scores = product of per-mode cosines.
    let mut score = vec![vec![0.0f64; r]; r];
    for (ca, row) in score.iter_mut().enumerate() {
        for (cb, s) in row.iter_mut().enumerate() {
            *s = a
                .iter()
                .zip(b)
                .map(|(ma, mb)| cosine(ma, mb, ca, cb))
                .product();
        }
    }
    // Greedy assignment (r is small; Hungarian is overkill here).
    let mut used = vec![false; r];
    let mut total = 0.0;
    for row in score.iter() {
        let best = (0..r)
            .filter(|&cb| !used[cb])
            .max_by(|&x, &y| row[x].partial_cmp(&row[y]).unwrap());
        if let Some(cb) = best {
            used[cb] = true;
            total += row[cb];
        }
    }
    total / r as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sptensor::CooTensor;

    /// A tensor that *is* rank-1: CPD must fit it almost exactly.
    fn rank_one_tensor() -> CooTensor {
        let a = [1.0f32, 2.0, 0.5, 1.5];
        let b = [0.5f32, 1.0, 2.0];
        let c = [1.0f32, 3.0];
        let mut t = CooTensor::new(vec![4, 3, 2]);
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                for (k, &ck) in c.iter().enumerate() {
                    t.push(&[i as u32, j as u32, k as u32], ai * bj * ck);
                }
            }
        }
        t
    }

    #[test]
    fn recovers_rank_one_tensor() {
        let t = rank_one_tensor();
        let opts = CpdOptions {
            rank: 2,
            max_iters: 40,
            tol: 1e-9,
            seed: 7,
        };
        let res = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        assert!(
            res.final_fit() > 0.999,
            "fit {} after {} iters",
            res.final_fit(),
            res.iterations
        );
    }

    #[test]
    fn fit_is_monotonically_non_decreasing() {
        let t = sptensor::synth::uniform_random(&[8, 9, 10], 200, 3);
        let opts = CpdOptions {
            rank: 4,
            max_iters: 15,
            tol: 0.0,
            seed: 11,
        };
        let res = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        for w in res.fits.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-4,
                "fit decreased: {} -> {} ({:?})",
                w[0],
                w[1],
                res.fits
            );
        }
    }

    #[test]
    fn converges_and_stops_early() {
        let t = rank_one_tensor();
        let opts = CpdOptions {
            rank: 2,
            max_iters: 100,
            tol: 1e-7,
            seed: 5,
        };
        let res = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        assert!(res.iterations < 100, "should converge before max_iters");
    }

    #[test]
    fn backends_agree() {
        // CPD driven by the SPLATT backend lands at the same fit as the
        // reference backend.
        let t = sptensor::synth::uniform_random(&[10, 12, 14], 300, 9);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 10,
            tol: 0.0,
            seed: 21,
        };
        let r_ref = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        let r_splatt = cpd_als(&t, &opts, |f, m| {
            crate::cpu::splatt::mttkrp(&t, f, m, crate::cpu::splatt::SplattOptions::nontiled())
        });
        assert!(
            (r_ref.final_fit() - r_splatt.final_fit()).abs() < 1e-3,
            "ref {} vs splatt {}",
            r_ref.final_fit(),
            r_splatt.final_fit()
        );
    }

    #[test]
    fn fms_identical_is_one_and_permutation_invariant() {
        let a = vec![
            Matrix::random(6, 3, 1),
            Matrix::random(7, 3, 2),
            Matrix::random(8, 3, 3),
        ];
        assert!((factor_match_score(&a, &a) - 1.0).abs() < 1e-9);
        // Permute columns consistently: score stays 1.
        let perm = [2usize, 0, 1];
        let b: Vec<Matrix> = a
            .iter()
            .map(|m| {
                let mut out = Matrix::zeros(m.rows(), 3);
                for i in 0..m.rows() {
                    for (c_new, &c_old) in perm.iter().enumerate() {
                        out.set(i, c_new, m.get(i, c_old));
                    }
                }
                out
            })
            .collect();
        assert!((factor_match_score(&a, &b) - 1.0).abs() < 1e-6);
        // Column scaling is also invisible (cosines are scale-free).
        let c: Vec<Matrix> = a
            .iter()
            .map(|m| {
                let mut out = m.clone();
                for i in 0..out.rows() {
                    let v = out.get(i, 0) * 5.0;
                    out.set(i, 0, v);
                }
                out
            })
            .collect();
        assert!((factor_match_score(&a, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fms_unrelated_factors_score_low() {
        let a = vec![Matrix::random(50, 4, 10), Matrix::random(60, 4, 11)];
        let b = vec![Matrix::random(50, 4, 20), Matrix::random(60, 4, 21)];
        let s = factor_match_score(&a, &b);
        // Random positive matrices are not orthogonal, but the per-mode
        // product suppresses the score well below a true match.
        assert!(s < 0.9, "unrelated factors scored {s}");
    }

    #[test]
    fn cpd_recovery_measured_by_fms() {
        // CPD on a rank-1 tensor must recover the planted factors.
        let t = rank_one_tensor();
        let opts = CpdOptions {
            rank: 1,
            max_iters: 40,
            tol: 1e-9,
            seed: 3,
        };
        let res = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        let planted = vec![
            Matrix::from_vec(4, 1, vec![1.0, 2.0, 0.5, 1.5]),
            Matrix::from_vec(3, 1, vec![0.5, 1.0, 2.0]),
            Matrix::from_vec(2, 1, vec![1.0, 3.0]),
        ];
        let s = factor_match_score(&res.factors, &planted);
        assert!(s > 0.999, "recovered factors score {s}");
    }

    #[test]
    fn nonneg_factors_stay_nonnegative_and_fit_improves() {
        let t = sptensor::synth::uniform_random(&[8, 9, 10], 250, 13);
        let opts = CpdOptions {
            rank: 4,
            max_iters: 20,
            tol: 0.0,
            seed: 14,
        };
        let res = cpd_als_nonneg(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        for f in &res.factors {
            assert!(f.data().iter().all(|&v| v >= 0.0), "negative factor entry");
        }
        assert!(
            res.fits.last().unwrap() > res.fits.first().unwrap(),
            "fit did not improve: {:?}",
            res.fits
        );
    }

    #[test]
    fn nonneg_recovers_nonneg_rank_one() {
        let t = rank_one_tensor(); // strictly positive by construction
        let opts = CpdOptions {
            rank: 2,
            max_iters: 120,
            tol: 1e-10,
            seed: 15,
        };
        let res = cpd_als_nonneg(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        assert!(
            res.final_fit() > 0.99,
            "fit {} after {} iters",
            res.final_fit(),
            res.iterations
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nonneg_rejects_negative_tensor() {
        let mut t = rank_one_tensor();
        t.values_mut()[0] = -1.0;
        let opts = CpdOptions::default();
        let _ = cpd_als_nonneg(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
    }

    #[test]
    fn adaptive_matches_planned_in_core_and_under_pressure() {
        use crate::gpu::{GpuContext, ModePlans, OocOptions};
        use gpu_sim::DeviceMemory;
        use std::sync::Arc;
        use tensor_formats::BcsfOptions;

        let t = sptensor::synth::uniform_random(&[12, 14, 16], 600, 31);
        let opts = CpdOptions {
            rank: 4,
            max_iters: 4,
            tol: 0.0,
            seed: 17,
        };
        let ropts = ResilienceOptions::default();
        let oopts = OocOptions::default();
        let ctx = GpuContext::tiny();
        let plans = ModePlans::build_hbcsf(&ctx, &t, opts.rank, BcsfOptions::default());
        let plain = cpd_als_planned(&t, &opts, &ctx, &plans);

        // Unconstrained: every launch takes the full-device rung and the
        // decomposition is bit-identical to the plain planned driver.
        let (res, stats, mem) = cpd_als_adaptive(&t, &opts, &ropts, &ctx, &plans, &oopts, None);
        assert_eq!(res.fits, plain.fits, "in-core adaptive must be bit-exact");
        // Proactive checkpoints still fire on a clean run; every corrective
        // counter must stay at zero.
        assert_eq!(stats.nan_resets, 0);
        assert_eq!(stats.tikhonov_fallbacks, 0);
        assert_eq!(stats.rollbacks, 0);
        assert!(mem.in_core_launches > 0);
        assert_eq!(mem.tiled_launches + mem.cpu_fallbacks + mem.oom_events, 0);

        // Capacity below the worst plan's footprint: the tiled rung must
        // engage, and the clean tiled fold is still bit-exact.
        let worst = (0..t.order())
            .map(|m| *plans.plan(m).footprint())
            .max_by_key(|fp| fp.total_bytes())
            .unwrap();
        let capacity = worst.total_bytes() - worst.format_bytes / 8;
        let small = GpuContext::tiny().with_memory(Arc::new(DeviceMemory::with_capacity(capacity)));
        let (res2, _, mem2) = cpd_als_adaptive(&t, &opts, &ropts, &small, &plans, &oopts, None);
        assert_eq!(res2.fits, plain.fits, "tiled adaptive must be bit-exact");
        assert!(mem2.tiled_launches > 0, "tiling never engaged: {mem2:?}");
        assert_eq!(mem2.cpu_fallbacks, 0);
        assert!(mem2.high_water_bytes <= capacity, "capacity was breached");

        // The manifest absorbs the same memory story.
        let mut manifest = RunManifest::new("hb-csf", "synth", 0, 0, 0.0, 0);
        let (_, _, mem3) = cpd_als_adaptive(
            &t,
            &opts,
            &ropts,
            &small,
            &plans,
            &oopts,
            Some(&mut manifest),
        );
        assert_eq!(manifest.memory.tiled_launches, mem3.tiled_launches);
        assert!(manifest.memory.any());
    }

    #[test]
    fn sharded_matches_planned_for_any_device_count() {
        use crate::gpu::{GpuContext, GridSpec, ModePlans, OocOptions};
        use gpu_sim::Interconnect;
        use tensor_formats::BcsfOptions;

        let t = sptensor::synth::uniform_random(&[12, 14, 16], 600, 31);
        let opts = CpdOptions {
            rank: 4,
            max_iters: 4,
            tol: 0.0,
            seed: 17,
        };
        let ropts = ResilienceOptions::default();
        let oopts = OocOptions::default();
        let ctx = GpuContext::tiny();
        let plans = ModePlans::build_hbcsf(&ctx, &t, opts.rank, BcsfOptions::default());
        let plain = cpd_als_planned(&t, &opts, &ctx, &plans);

        let mut records = Vec::new();
        for devices in [1usize, 3, 4] {
            let grid = GridSpec::new(devices, Interconnect::nvlink());
            let mut manifest = RunManifest::new("hb-csf", "synth", 0, 0, 0.0, 0);
            let (res, stats, rec) = cpd_als_sharded(
                &t,
                &opts,
                &ropts,
                &ctx,
                &plans,
                &grid,
                &oopts,
                Some(&mut manifest),
            );
            assert_eq!(
                res.fits, plain.fits,
                "{devices}-device sharded CPD must be bit-exact"
            );
            assert_eq!(stats.nan_resets + stats.rollbacks, 0);
            assert_eq!(rec.devices, devices);
            // 4 iterations × 3 modes = 12 sharded launches recorded.
            assert_eq!(rec.launches, 12);
            assert_eq!(rec.per_device.len(), devices);
            assert!(manifest.grid.any());
            assert_eq!(manifest.grid.devices, devices);
            records.push(rec);
        }
        // Interconnect cost is zero alone and strictly increases with
        // device count for a fixed tensor.
        assert_eq!(records[0].allreduce_seconds, 0.0);
        assert!(records[1].allreduce_seconds > 0.0);
        assert!(records[2].allreduce_seconds > records[1].allreduce_seconds);
    }

    #[test]
    fn profiled_run_fills_manifest_and_matches_unprofiled() {
        let t = sptensor::synth::uniform_random(&[8, 9, 10], 200, 3);
        let opts = CpdOptions {
            rank: 4,
            max_iters: 6,
            tol: 0.0,
            seed: 11,
        };
        let plain = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        let mut manifest = RunManifest::new("reference", "uniform-200", 0, 0, 0.0, 0);
        let prof = cpd_als_profiled(
            &t,
            &opts,
            |f, m| reference::mttkrp(&t, f, m),
            &mut manifest,
            None,
        );
        // Telemetry is observational: the math is unchanged.
        assert_eq!(plain.fits, prof.fits);
        assert_eq!(plain.iterations, prof.iterations);
        // Options were stamped into the manifest.
        assert_eq!(manifest.rank, 4);
        assert_eq!(manifest.max_iters, 6);
        assert_eq!(manifest.seed, 11);
        // One record per iteration, one timing per mode, fits verbatim.
        assert_eq!(manifest.iterations_run, prof.iterations);
        assert_eq!(manifest.iterations.len(), prof.iterations);
        for (rec, &fit) in manifest.iterations.iter().zip(&prof.fits) {
            assert_eq!(rec.fit, fit);
            assert_eq!(rec.modes.len(), 3);
            for (mi, mt) in rec.modes.iter().enumerate() {
                assert_eq!(mt.mode, mi);
                assert!(mt.mttkrp_seconds >= 0.0);
            }
            assert!(rec.seconds >= 0.0);
        }
        assert_eq!(manifest.final_fit, prof.final_fit());
        assert!(manifest.total_seconds > 0.0);
    }

    #[test]
    fn nonneg_profiled_fills_manifest() {
        let t = sptensor::synth::uniform_random(&[6, 7, 8], 150, 5);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 4,
            tol: 0.0,
            seed: 9,
        };
        let mut manifest = RunManifest::new("reference-nonneg", "uniform-150", 0, 0, 0.0, 0);
        let prof =
            cpd_als_nonneg_profiled(&t, &opts, |f, m| reference::mttkrp(&t, f, m), &mut manifest);
        assert_eq!(manifest.iterations_run, prof.iterations);
        assert_eq!(manifest.final_fit, prof.final_fit());
        assert!(manifest.iterations.iter().all(|rec| rec.modes.len() == 3));
    }

    #[test]
    fn resilient_matches_plain_on_clean_backend() {
        let t = sptensor::synth::uniform_random(&[10, 12, 14], 300, 9);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 8,
            tol: 0.0,
            seed: 21,
        };
        let plain = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        let (res, stats) = cpd_als_resilient(
            &t,
            &opts,
            &ResilienceOptions::default(),
            |f, m| reference::mttkrp(&t, f, m),
            None,
            None,
        );
        assert_eq!(plain.fits, res.fits, "clean backend: guards must be inert");
        assert_eq!(stats.nan_resets, 0);
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.tikhonov_fallbacks, 0);
        assert!(stats.checkpoints > 0);
    }

    #[test]
    fn checkpoint_every_zero_disables_checkpointing() {
        let t = sptensor::synth::uniform_random(&[10, 12, 14], 300, 9);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 8,
            tol: 0.0,
            seed: 21,
        };
        let ropts = ResilienceOptions {
            checkpoint_every: 0,
            ..ResilienceOptions::default()
        };
        let plain = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        let (res, stats) = cpd_als_resilient(
            &t,
            &opts,
            &ropts,
            |f, m| reference::mttkrp(&t, f, m),
            None,
            None,
        );
        assert_eq!(
            stats.checkpoints, 0,
            "checkpoint_every: 0 must take no checkpoints"
        );
        assert_eq!(
            stats.rollbacks, 0,
            "without checkpoints there is no rollback target"
        );
        assert_eq!(
            plain.fits, res.fits,
            "disabling checkpoints changes nothing"
        );
        assert_eq!(plain.factors, res.factors);
    }

    #[test]
    fn durable_crash_restart_reaches_the_uninterrupted_fit_exactly() {
        let t = sptensor::synth::uniform_random(&[10, 12, 14], 300, 9);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 8,
            tol: 0.0,
            seed: 21,
        };
        let ropts = ResilienceOptions::default();
        let (uninterrupted, _) = cpd_als_resilient(
            &t,
            &opts,
            &ropts,
            |f, m| reference::mttkrp(&t, f, m),
            None,
            None,
        );

        let dir = std::env::temp_dir().join("sptk_cpd_durable_restart");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = crate::gpu::GpuContext::tiny()
            .with_faults(gpu_sim::FaultPlan::parse("crash:0.6", 0xC4A5).unwrap());
        let dopts = DurableOptions {
            dir: dir.clone(),
            label: "restart-test".to_string(),
            resume: true,
            halt_on_crash: true,
        };
        let mut crashes = 0u64;
        let mut torn_skipped = 0u64;
        let mut resumes = 0u64;
        let mut last = None;
        for _restart in 0..32 {
            let (res, _, record) = cpd_als_resilient_durable(
                &t,
                &opts,
                &ropts,
                &dopts,
                |f, m| reference::mttkrp(&t, f, m),
                None,
                Some(&ctx),
            )
            .expect("no genuine I/O errors in temp dir");
            crashes += record.crashes;
            torn_skipped += record.torn_skipped;
            resumes += record.resumes;
            if !record.halted {
                last = Some(res);
                break;
            }
        }
        let resumed = last.expect("restart cycle must eventually complete");
        assert!(crashes >= 1, "crash:0.6 must tear at least one write");
        assert!(torn_skipped >= 1, "resume must scan past the torn file(s)");
        assert!(resumes >= 1, "at least one warm restart must happen");
        assert_eq!(
            resumed.final_fit(),
            uninterrupted.final_fit(),
            "warm restart must converge to the uninterrupted fit exactly"
        );
        assert_eq!(resumed.fits, uninterrupted.fits);
        assert_eq!(resumed.factors, uninterrupted.factors);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resilient_scrubs_nan_poisoned_mttkrp() {
        let t = sptensor::synth::uniform_random(&[10, 12, 14], 300, 9);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 8,
            tol: 0.0,
            seed: 21,
        };
        // Every 5th MTTKRP output has one entry poisoned with NaN.
        let calls = std::cell::Cell::new(0usize);
        let poisoned = |f: &[Matrix], m: usize| {
            let mut y = reference::mttkrp(&t, f, m);
            let n = calls.get();
            calls.set(n + 1);
            if n % 5 == 4 {
                y.set(0, 0, f32::NAN);
            }
            y
        };
        let (res, stats) = cpd_als_resilient(
            &t,
            &opts,
            &ResilienceOptions::default(),
            poisoned,
            None,
            None,
        );
        assert!(stats.nan_resets > 0, "poisoned entries must be scrubbed");
        assert!(
            res.final_fit().is_finite() && res.final_fit() > 0.0,
            "fit {} must stay finite",
            res.final_fit()
        );
    }

    #[test]
    fn resilient_rolls_back_on_fit_regression() {
        let t = sptensor::synth::uniform_random(&[10, 12, 14], 400, 31);
        let opts = CpdOptions {
            rank: 3,
            max_iters: 10,
            tol: 0.0,
            seed: 33,
        };
        let clean = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        // One catastrophic kernel execution mid-run (iteration 4, mode 0):
        // a third of the output entries sign-flipped and blown up 30× —
        // structural corruption normalization cannot absorb.
        let calls = std::cell::Cell::new(0usize);
        let corrupting = |f: &[Matrix], m: usize| {
            let mut y = reference::mttkrp(&t, f, m);
            let n = calls.get();
            calls.set(n + 1);
            if n == 9 {
                for (idx, v) in y.data_mut().iter_mut().enumerate() {
                    if idx % 3 == 0 {
                        *v *= -30.0;
                    }
                }
            }
            y
        };
        let mut manifest = RunManifest::new("reference", "uniform-400", 0, 0, 0.0, 0);
        let (res, stats) = cpd_als_resilient(
            &t,
            &opts,
            &ResilienceOptions::default(),
            corrupting,
            Some(&mut manifest),
            None,
        );
        assert!(stats.rollbacks >= 1, "regression must trigger a rollback");
        assert_eq!(manifest.resilience.rollbacks, stats.rollbacks);
        assert_eq!(manifest.resilience.checkpoints, stats.checkpoints);
        assert!(
            (res.final_fit() - clean.final_fit()).abs() < 0.01,
            "healed fit {} vs clean {}",
            res.final_fit(),
            clean.final_fit()
        );
    }

    #[test]
    fn empty_tensor_is_fit_one() {
        let t = CooTensor::new(vec![3, 3, 3]);
        let opts = CpdOptions::default();
        let res = cpd_als(&t, &opts, |f, m| reference::mttkrp(&t, f, m));
        assert!(res.final_fit() >= 1.0 - 1e-12);
    }
}
