//! Property-based differential tests: every kernel equals the sequential
//! reference on arbitrary random tensors, factors, and modes — plus
//! algebraic properties of MTTKRP itself.

use dense::Matrix;
use mttkrp::cpu::splatt::{self, SplattOptions};
use mttkrp::gpu::{AnyFormat, BuildOptions, Executor, GpuContext, KernelKind, LaunchArgs};
use mttkrp::{outputs_match, reference};
use proptest::prelude::*;
use sptensor::dims::identity_perm;
use sptensor::{CooTensor, Entry};
use tensor_formats::Hicoo;

fn arb_case() -> impl Strategy<Value = (CooTensor, u64, usize)> {
    (3usize..=4)
        .prop_flat_map(|order| {
            proptest::collection::vec(2u32..12, order).prop_flat_map(move |dims| {
                let one = (
                    dims.iter().map(|&d| (0..d).boxed()).collect::<Vec<_>>(),
                    0.1f32..2.0,
                )
                    .prop_map(|(c, v)| Entry { coords: c, val: v });
                (
                    proptest::collection::vec(one, 0..60),
                    any::<u64>(),
                    0usize..order,
                )
                    .prop_map(move |(es, seed, mode)| {
                        let mut t = CooTensor::from_entries(dims.clone(), es);
                        t.sort_by_perm(&identity_perm(dims.len()));
                        t.fold_duplicates();
                        (t, seed, mode)
                    })
            })
        })
        .boxed()
}

/// Build-and-run through the unified Executor API.
fn build_run(
    ctx: &GpuContext,
    kind: KernelKind,
    t: &sptensor::CooTensor,
    factors: &[dense::Matrix],
    mode: usize,
    build: &BuildOptions,
) -> mttkrp::gpu::GpuRun {
    let format = AnyFormat::build(kind, t, mode, build).expect("valid build");
    Executor::new(ctx.clone())
        .run(&format, &LaunchArgs::new(factors))
        .expect("valid launch")
        .run
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_backends_equal_reference((t, seed, mode) in arb_case()) {
        let factors = reference::random_factors(&t, 5, seed);
        let expected = reference::mttkrp(&t, &factors, mode);
        let ctx = GpuContext::tiny();

        let y = mttkrp::cpu::coo::mttkrp(&t, &factors, mode);
        prop_assert!(outputs_match(&y, &expected), "cpu-coo");
        let y = splatt::mttkrp(&t, &factors, mode, SplattOptions::nontiled());
        prop_assert!(outputs_match(&y, &expected), "splatt");
        let y = mttkrp::cpu::hicoo::mttkrp(&Hicoo::build(&t, 3), &factors, mode);
        prop_assert!(outputs_match(&y, &expected), "hicoo");
        let y = build_run(&ctx, KernelKind::Bcsf, &t, &factors, mode, &BuildOptions::default()).y;
        prop_assert!(outputs_match(&y, &expected), "bcsf");
        let y = build_run(&ctx, KernelKind::Hbcsf, &t, &factors, mode, &BuildOptions::default()).y;
        prop_assert!(outputs_match(&y, &expected), "hbcsf");
        let y = build_run(&ctx, KernelKind::Csl, &t, &factors, mode, &BuildOptions::default()).y;
        prop_assert!(outputs_match(&y, &expected), "csl");
        if t.order() == 3 {
            let y = build_run(&ctx, KernelKind::Coo, &t, &factors, mode, &BuildOptions::default()).y;
            prop_assert!(outputs_match(&y, &expected), "parti");
            let build = BuildOptions { fcoo_threadlen: 4, ..Default::default() };
            let y = build_run(&ctx, KernelKind::Fcoo, &t, &factors, mode, &build).y;
            prop_assert!(outputs_match(&y, &expected), "fcoo");
        }
    }

    #[test]
    fn mttkrp_is_linear_in_tensor_values((t, seed, mode) in arb_case()) {
        // MTTKRP(2X) = 2 · MTTKRP(X): linearity in the tensor.
        let factors = reference::random_factors(&t, 4, seed);
        let y1 = reference::mttkrp(&t, &factors, mode);
        let mut t2 = t.clone();
        for v in t2.values_mut() {
            *v *= 2.0;
        }
        let y2 = reference::mttkrp(&t2, &factors, mode);
        let mut y1x2 = Matrix::zeros(y1.rows(), y1.cols());
        for i in 0..y1.rows() {
            for c in 0..y1.cols() {
                y1x2.set(i, c, 2.0 * y1.get(i, c));
            }
        }
        prop_assert!(y2.rel_fro_diff(&y1x2) < 1e-5);
    }

    #[test]
    fn output_row_support_matches_mode_indices((t, seed, mode) in arb_case()) {
        // Rows of Y not touched by any nonzero stay exactly zero.
        let factors = reference::random_factors(&t, 4, seed);
        let y = reference::mttkrp(&t, &factors, mode);
        let mut touched = vec![false; y.rows()];
        for &i in t.mode_indices(mode) {
            touched[i as usize] = true;
        }
        for (i, &was_touched) in touched.iter().enumerate() {
            if !was_touched {
                prop_assert!(y.row(i).iter().all(|&v| v == 0.0), "row {i} dirty");
            }
        }
    }
}
