//! Edge-of-the-rank-dimension tests: the lane layout puts rank across 32
//! warp lanes, so R = 1, R = 31/32/33 and R = 64 exercise partial rows,
//! exact single-segment rows, and multi-segment rows respectively.

use mttkrp::cpu::splatt::{self, SplattOptions};
use mttkrp::gpu::{AnyFormat, BuildOptions, Executor, GpuContext, KernelKind, LaunchArgs};
use mttkrp::{outputs_match, reference};
use sptensor::synth::uniform_random;

/// Build-and-run through the unified Executor API.
fn build_run(
    ctx: &GpuContext,
    kind: KernelKind,
    t: &sptensor::CooTensor,
    factors: &[dense::Matrix],
    mode: usize,
    build: &BuildOptions,
) -> mttkrp::gpu::GpuRun {
    let format = AnyFormat::build(kind, t, mode, build).expect("valid build");
    Executor::new(ctx.clone())
        .run(&format, &LaunchArgs::new(factors))
        .expect("valid launch")
        .run
}

fn check_rank(r: usize) {
    let t = uniform_random(&[12, 14, 16], 600, 91 + r as u64);
    let factors = reference::random_factors(&t, r, 17);
    let ctx = GpuContext::tiny();
    for mode in 0..3 {
        let expected = reference::mttkrp(&t, &factors, mode);
        let y = build_run(
            &ctx,
            KernelKind::Hbcsf,
            &t,
            &factors,
            mode,
            &BuildOptions::default(),
        )
        .y;
        assert!(outputs_match(&y, &expected), "hbcsf R={r} mode {mode}");
        let y = build_run(
            &ctx,
            KernelKind::Coo,
            &t,
            &factors,
            mode,
            &BuildOptions::default(),
        )
        .y;
        assert!(outputs_match(&y, &expected), "parti R={r} mode {mode}");
        let y = splatt::mttkrp(&t, &factors, mode, SplattOptions::nontiled());
        assert!(outputs_match(&y, &expected), "splatt R={r} mode {mode}");
    }
}

#[test]
fn rank_one() {
    check_rank(1);
}

#[test]
fn rank_31_32_33_boundary() {
    check_rank(31);
    check_rank(32);
    check_rank(33);
}

#[test]
fn rank_64_multi_segment_rows() {
    check_rank(64);
}

#[test]
fn wide_rank_rows_cost_more_segments() {
    // R=64 rows are two 128-B segments; the kernel must move ~2x the
    // factor traffic of R=32.
    let t = uniform_random(&[20, 30, 40], 2_000, 99);
    let ctx = GpuContext::tiny();
    let f32_ = reference::random_factors(&t, 32, 3);
    let f64_ = reference::random_factors(&t, 64, 3);
    let a = build_run(
        &ctx,
        KernelKind::Hbcsf,
        &t,
        &f32_,
        0,
        &BuildOptions::default(),
    );
    let b = build_run(
        &ctx,
        KernelKind::Hbcsf,
        &t,
        &f64_,
        0,
        &BuildOptions::default(),
    );
    let ratio = b.sim.mem_segments as f64 / a.sim.mem_segments as f64;
    assert!(
        (1.5..2.5).contains(&ratio),
        "segment ratio {ratio} should be ~2 for doubled rank"
    );
}
