//! Prefix/suffix caching for the gram-Hadamard products of an ALS mode
//! sweep (the multiplication-order trick of Phan, Tichavský, Cichocki,
//! *Fast Alternating LS Algorithms for High Order CANDECOMP/PARAFAC*,
//! IEEE TSP 2013, applied to the `R × R` gram side).
//!
//! Every ALS mode update needs `V_n = ∗_{m≠n} AₘᵀAₘ`. Rebuilding each
//! `V_n` from scratch costs `N·(N−1)` Hadamard products per iteration;
//! the sweep structure makes most of them redundant. A [`HadamardChain`]
//! holds a *left* running product of the already-updated grams
//! (`∗_{m<n} Gₘ`, grown one multiply per completed mode) and a *suffix*
//! table of the not-yet-updated grams (`suffix[n] = ∗_{m>n} Gₘ`, built
//! once per sweep right-to-left), so each `V_n` is at most one Hadamard:
//! `left ∗ suffix[n]`. Total per iteration: `N−2` suffix multiplies +
//! `≤N` joins + `N−1` advances ≈ `3N`, instead of `N²−N`.
//!
//! **Bit-exactness:** f32 multiplication is commutative but not
//! associative, so regrouping can change result bits. For 3-way tensors
//! every `V_n` here is a product of exactly two grams — no grouping
//! freedom exists and the chain is bit-identical to the historical
//! ascending fold. For order ≥ 4 the suffix's right-association rounds
//! differently than the old left fold; all CPD drivers share this chain,
//! so cross-driver bit-equality contracts (plain vs resilient vs planned
//! vs sharded) are unaffected.

use crate::matrix::Matrix;

/// Cached partial gram-Hadamard products for one ALS mode sweep.
///
/// Usage per iteration:
/// ```
/// # use dense::{HadamardChain, Matrix};
/// # let grams = vec![Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]); 3];
/// # let rank = 2;
/// # let update = |_m: usize| Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
/// let mut chain = HadamardChain::new(&grams, rank);
/// let mut grams = grams;
/// for mode in 0..grams.len() {
///     let v = chain.v(mode);           // ∗_{m≠mode} grams[m]
///     // ... solve against v, update factors[mode] ...
///     grams[mode] = update(mode);      // new AₘᵀAₘ
///     chain.advance(&grams[mode]);     // fold it into the left product
/// }
/// ```
/// `None` entries stand for the (elementwise) identity, so no all-ones
/// matrix is ever multiplied in — `1.0 * x` is exact, and skipping it
/// entirely matches the historical ones-seeded fold bit-for-bit.
pub struct HadamardChain {
    /// `∗_{m<cursor} grams[m]` over the *updated* grams; `None` = identity.
    left: Option<Matrix>,
    /// `suffix[n] = ∗_{m>n} grams[m]` over the sweep-start grams.
    suffix: Vec<Option<Matrix>>,
    /// How many modes have been folded into `left`.
    cursor: usize,
    rank: usize,
}

impl HadamardChain {
    /// Builds the suffix table for one sweep over `grams` (each `R × R`).
    pub fn new(grams: &[Matrix], rank: usize) -> HadamardChain {
        let n = grams.len();
        let mut suffix: Vec<Option<Matrix>> = vec![None; n];
        for m in (0..n.saturating_sub(1)).rev() {
            suffix[m] = Some(match &suffix[m + 1] {
                Some(s) => grams[m + 1].hadamard(s),
                None => grams[m + 1].clone(),
            });
        }
        HadamardChain {
            left: None,
            suffix,
            cursor: 0,
            rank,
        }
    }

    /// `V_mode = ∗_{m≠mode} Gₘ`, with `Gₘ` the updated gram for
    /// `m < mode` and the sweep-start gram for `m > mode`. Callable only
    /// for the cursor's mode — the sweep must advance in order.
    pub fn v(&self, mode: usize) -> Matrix {
        assert_eq!(
            mode, self.cursor,
            "HadamardChain sweeps modes in order: expected mode {}, got {mode}",
            self.cursor
        );
        match (&self.left, &self.suffix[mode]) {
            (Some(l), Some(s)) => l.hadamard(s),
            (Some(l), None) => l.clone(),
            (None, Some(s)) => s.clone(),
            (None, None) => {
                Matrix::from_vec(self.rank, self.rank, vec![1.0; self.rank * self.rank])
            }
        }
    }

    /// Folds the freshly updated gram of the cursor's mode into the left
    /// product and moves the cursor to the next mode.
    pub fn advance(&mut self, updated_gram: &Matrix) {
        self.left = Some(match &self.left {
            Some(l) => l.hadamard(updated_gram),
            None => updated_gram.clone(),
        });
        self.cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gram(rank: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random symmetric-ish matrix.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32 + 0.1
        };
        Matrix::from_vec(rank, rank, (0..rank * rank).map(|_| next()).collect())
    }

    /// The historical computation: ones-seeded ascending fold over m≠mode.
    fn naive_v(grams: &[Matrix], mode: usize, rank: usize) -> Matrix {
        let mut v = Matrix::from_vec(rank, rank, vec![1.0; rank * rank]);
        for (m, g) in grams.iter().enumerate() {
            if m != mode {
                v = v.hadamard(g);
            }
        }
        v
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.data().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn order3_sweep_is_bit_identical_to_naive_fold() {
        let rank = 8;
        let mut grams: Vec<Matrix> = (0..3).map(|m| gram(rank, 100 + m)).collect();
        let mut chain = HadamardChain::new(&grams, rank);
        for mode in 0..3 {
            // Every V_n for a 3-way tensor is a 2-gram product: no
            // grouping freedom, so the chain must match the fold exactly.
            assert_eq!(
                bits(&chain.v(mode)),
                bits(&naive_v(&grams, mode, rank)),
                "mode {mode}"
            );
            grams[mode] = gram(rank, 200 + mode as u64);
            chain.advance(&grams[mode]);
        }
    }

    #[test]
    fn higher_order_sweep_matches_naive_fold_numerically() {
        let rank = 4;
        for order in [4usize, 5] {
            let mut grams: Vec<Matrix> = (0..order as u64).map(|m| gram(rank, 300 + m)).collect();
            let mut chain = HadamardChain::new(&grams, rank);
            for mode in 0..order {
                let v = chain.v(mode);
                let naive = naive_v(&grams, mode, rank);
                // Regrouping a longer product may round differently; it
                // must still agree to f32 relative precision.
                for (a, b) in v.data().iter().zip(naive.data()) {
                    let tol = 1e-5 * b.abs().max(1e-10);
                    assert!(
                        (a - b).abs() <= tol,
                        "order {order} mode {mode}: {a} vs {b}"
                    );
                }
                grams[mode] = gram(rank, 400 + mode as u64);
                chain.advance(&grams[mode]);
            }
        }
    }

    #[test]
    fn uses_updated_grams_left_of_the_cursor() {
        let rank = 4;
        let mut grams: Vec<Matrix> = (0..4u64).map(|m| gram(rank, 500 + m)).collect();
        let mut chain = HadamardChain::new(&grams, rank);
        // Walk two modes with updates, then check mode 2 sees new 0/1 and
        // old 3.
        for mode in 0..2 {
            let _ = chain.v(mode);
            grams[mode] = gram(rank, 600 + mode as u64);
            chain.advance(&grams[mode]);
        }
        let expect = grams[0].hadamard(&grams[1]).hadamard(&grams[3]);
        let got = chain.v(2);
        for (a, b) in got.data().iter().zip(expect.data()) {
            let tol = 1e-5 * b.abs().max(1e-10);
            assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "sweeps modes in order")]
    fn out_of_order_query_panics() {
        let rank = 2;
        let grams: Vec<Matrix> = (0..3u64).map(|m| gram(rank, 700 + m)).collect();
        let chain = HadamardChain::new(&grams, rank);
        let _ = chain.v(1);
    }

    #[test]
    fn single_mode_yields_identity_ones() {
        let rank = 3;
        let grams = vec![gram(rank, 800)];
        let chain = HadamardChain::new(&grams, rank);
        let v = chain.v(0);
        assert!(v.data().iter().all(|&x| x == 1.0));
    }
}
