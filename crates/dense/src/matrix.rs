//! Row-major `f32` matrix with the operations CPD-ALS needs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A dense row-major matrix of `f32`.
///
/// Factor matrices in MTTKRP are tall and skinny (`rows × R`, `R = 32` in
/// the paper); row-major layout makes a factor row `B(j, :)` contiguous,
/// which is exactly the access pattern of every MTTKRP kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Seeded uniform-random matrix in `[0, 1)`; the standard CPD-ALS factor
    /// initialization.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen::<f32>()).collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Contiguous row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sets every element to zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// `self * other` (naive triple loop with `f64` accumulation — all CPD
    /// uses are `R × R`-ish, so this is never a bottleneck).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        // k-outer accumulation: every output element still sums its terms
        // in ascending-k order (bit-for-bit identical to the textbook
        // triple loop), but the inner loop walks two contiguous slices
        // with independent accumulators, which vectorizes — the tall-×-tiny
        // products CPD-ALS issues per mode are the hot case.
        let mut accrow = vec![0.0f64; n];
        for i in 0..self.rows {
            let a = self.row(i);
            accrow.fill(0.0);
            for (k, &av) in a.iter().enumerate() {
                let av = av as f64;
                let brow = &other.data[k * n..(k + 1) * n];
                for (acc, &bv) in accrow.iter_mut().zip(brow) {
                    *acc += av * bv as f64;
                }
            }
            for (o, &acc) in out.data[i * n..(i + 1) * n].iter_mut().zip(&accrow) {
                *o = acc as f32;
            }
        }
        out
    }

    /// Gram matrix `selfᵀ · self` (`cols × cols`), the `BᵀB` of Eq. (3).
    pub fn gram(&self) -> Matrix {
        let r = self.cols;
        if r == 0 {
            return Matrix::zeros(0, 0);
        }
        let mut acc = vec![0.0f64; r * r];
        // Upper triangle only, rows streamed once. Each accumulator sees
        // the same ascending-row addition sequence as the naive loop, so
        // the result is bit-for-bit unchanged; slice iteration just lets
        // the compiler drop the bounds checks on the hot tall-skinny case.
        for v in self.data.chunks_exact(r) {
            for (a, &va) in v.iter().enumerate() {
                let va = va as f64;
                let row_acc = &mut acc[a * r + a..(a + 1) * r];
                for (dst, &vb) in row_acc.iter_mut().zip(&v[a..]) {
                    *dst += va * vb as f64;
                }
            }
        }
        let mut out = Matrix::zeros(r, r);
        for a in 0..r {
            for b in a..r {
                let x = acc[a * r + b] as f32;
                out.set(a, b, x);
                out.set(b, a, x);
            }
        }
        out
    }

    /// Element-wise (Hadamard) product, the `∗` of Eq. (3).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hadamard row mismatch");
        assert_eq!(self.cols, other.cols, "hadamard col mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Frobenius norm (`f64` internally).
    pub fn fro_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Relative Frobenius difference `‖self − other‖ / max(‖other‖, ε)`;
    /// the tolerance check used by all differential kernel tests.
    pub fn rel_fro_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut num = 0.0f64;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            let d = a as f64 - b as f64;
            num += d * d;
        }
        num.sqrt() / other.fro_norm().max(1e-30)
    }

    /// Normalizes each column to unit 2-norm and returns the norms
    /// (the `λ` vector of CPD-ALS line 5). Zero columns are left untouched
    /// and report norm 0.
    pub fn normalize_columns(&mut self) -> Vec<f32> {
        if self.cols == 0 {
            return Vec::new();
        }
        let mut norms = vec![0.0f64; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (n, &v) in norms.iter_mut().zip(row) {
                *n += v as f64 * v as f64;
            }
        }
        let norms: Vec<f32> = norms.iter().map(|&n| n.sqrt() as f32).collect();
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &n) in row.iter_mut().zip(&norms) {
                if n > 0.0 {
                    *v /= n;
                }
            }
        }
        norms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::random(4, 4, 9);
        let c = a.matmul(&Matrix::identity(4));
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn gram_matches_explicit_transpose_matmul() {
        let a = Matrix::random(7, 3, 11);
        let g1 = a.gram();
        let g2 = a.transpose().matmul(&a);
        assert!(g1.max_abs_diff(&g2) < 1e-4);
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g1.get(i, j), g1.get(j, i));
            }
        }
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![2.0, 0.5, -1.0, 2.0]);
        assert_eq!(a.hadamard(&b).data(), &[2.0, 1.0, -3.0, 8.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::random(3, 5, 2);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn normalize_columns_unit_norm() {
        let mut a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 4.0, 0.0]);
        let norms = a.normalize_columns();
        assert!((norms[0] - 5.0).abs() < 1e-6);
        assert_eq!(norms[1], 0.0);
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((a.get(1, 0) - 0.8).abs() < 1e-6);
        // Zero column untouched.
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn fro_norm_known() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rel_fro_diff_zero_for_equal() {
        let a = Matrix::random(5, 4, 3);
        assert_eq!(a.rel_fro_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn random_is_seeded() {
        assert_eq!(Matrix::random(3, 3, 5), Matrix::random(3, 3, 5));
        assert_ne!(Matrix::random(3, 3, 5), Matrix::random(3, 3, 6));
    }
}
