//! Khatri–Rao product — verification-scale only.
//!
//! The paper's whole point is that materializing `C ⊙ B` (a `JK × R` dense
//! matrix, Eq. (4)) is infeasible for real tensors; MTTKRP kernels avoid it.
//! This explicit implementation exists so tiny differential tests can check
//! every kernel against the textbook definition `Y = X₍ₙ₎ (⊙ₘ≠ₙ Aₘ)`.

use crate::Matrix;

/// Khatri–Rao (column-wise Kronecker) product of `mats` in the given order:
/// row `(i₀, i₁, …)` of the result — with the **first** matrix's index
/// slowest — is the elementwise product of the corresponding rows.
///
/// # Panics
/// If `mats` is empty or column counts disagree.
pub fn khatri_rao(mats: &[&Matrix]) -> Matrix {
    assert!(!mats.is_empty(), "khatri_rao needs at least one matrix");
    let r = mats[0].cols();
    assert!(
        mats.iter().all(|m| m.cols() == r),
        "all factors must share the rank dimension"
    );
    let total_rows: usize = mats.iter().map(|m| m.rows()).product();
    let mut out = Matrix::zeros(total_rows, r);
    let mut idx = vec![0usize; mats.len()];
    for row in 0..total_rows {
        {
            let orow = out.row_mut(row);
            orow.fill(1.0);
            for (m, &i) in mats.iter().zip(&idx) {
                for (o, &v) in orow.iter_mut().zip(m.row(i)) {
                    *o *= v;
                }
            }
        }
        // Odometer increment, last matrix fastest.
        for d in (0..mats.len()).rev() {
            idx[d] += 1;
            if idx[d] < mats[d].rows() {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kr_of_single_matrix_is_identity_op() {
        let a = Matrix::random(3, 2, 1);
        assert_eq!(khatri_rao(&[&a]), a);
    }

    #[test]
    fn kr_dimensions() {
        let a = Matrix::random(3, 4, 1);
        let b = Matrix::random(5, 4, 2);
        let k = khatri_rao(&[&a, &b]);
        assert_eq!(k.rows(), 15);
        assert_eq!(k.cols(), 4);
    }

    #[test]
    fn kr_known_values() {
        // a = [[1],[2]], b = [[3],[4]] -> rows (a0 b0, a0 b1, a1 b0, a1 b1)
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 1, vec![3.0, 4.0]);
        let k = khatri_rao(&[&a, &b]);
        assert_eq!(k.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn kr_row_ordering_first_matrix_slowest() {
        let a = Matrix::from_vec(2, 1, vec![10.0, 20.0]);
        let b = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let k = khatri_rao(&[&a, &b]);
        // Row index = i*3 + j.
        assert_eq!(k.data(), &[10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn kr_three_way() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 2.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 3.0, 1.0, 1.0]);
        let c = Matrix::from_vec(2, 2, vec![1.0, 1.0, 5.0, 1.0]);
        let k = khatri_rao(&[&a, &b, &c]);
        assert_eq!(k.rows(), 8);
        // Element at (i,j,k) = (1,0,1), column 0: a=2, b=1, c=5 -> 10.
        let row = 4 + 1;
        assert_eq!(k.get(row, 0), 10.0);
        // Column 1: a=1, b=3, c=1 -> 3.
        assert_eq!(k.get(row, 1), 3.0);
    }
}
