//! # dense — small dense linear algebra for CPD-ALS
//!
//! The CPD-ALS algorithm (Algorithm 1 of the paper) needs a handful of dense
//! operations besides MTTKRP: Gram matrices `AᵀA`, Hadamard products of
//! `R × R` matrices, a Moore–Penrose pseudo-inverse of an `R × R` symmetric
//! positive-semidefinite matrix, column normalization, and — for
//! verification only — the explicit Khatri–Rao product. The paper calls
//! these "highly optimized in BLAS libraries"; here they are implemented
//! from scratch (no BLAS dependency) since `R` is small (32 in all paper
//! experiments).
//!
//! Values are `f32` (matching the paper) with `f64` accumulation inside
//! reductions for stability.

// Kernels index several parallel arrays with one counter; the zipped-
// iterator forms Clippy suggests obscure that symmetry.
#![allow(clippy::needless_range_loop)]

pub mod chain;
pub mod kr;
pub mod matrix;
pub mod solve;

pub use chain::HadamardChain;
pub use kr::khatri_rao;
pub use matrix::Matrix;
pub use solve::{cholesky_solve, pseudo_inverse, spd_condition, symmetric_eigen};
