//! Solvers for the `R × R` normal-equations step of CPD-ALS.
//!
//! Equation (3) of the paper updates a factor as
//! `Ã = X₍₁₎ (C ⊙ B) (BᵀB ∗ CᵀC)†`. The Gram/Hadamard part is a small
//! symmetric positive-semidefinite matrix, so the pseudo-inverse is computed
//! by a cyclic Jacobi eigendecomposition (robust for rank-deficient `V`),
//! with a Cholesky fast path available for well-conditioned systems.

use crate::Matrix;

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` where column `c` of the returned
/// matrix is the eigenvector for `eigenvalues[c]`. Computation is in `f64`.
///
/// # Panics
/// If the matrix is not square.
pub fn symmetric_eigen(m: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(m.rows(), m.cols(), "symmetric_eigen needs a square matrix");
    let n = m.rows();
    let mut a: Vec<f64> = m.data().iter().map(|&v| v as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let at = |a: &Vec<f64>, i: usize, j: usize| a[i * n + j];

    // Cyclic Jacobi sweeps; n ≤ 64 in practice so this is immediate.
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += at(&a, i, j).abs();
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of `a`.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let eigenvalues: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    let mut vecs = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            vecs.set(i, j, v[i * n + j] as f32);
        }
    }
    (eigenvalues, vecs)
}

/// Moore–Penrose pseudo-inverse of a symmetric PSD matrix, the `†` of
/// Eq. (3). Eigenvalues below `max_eig * n * 1e-7` are treated as zero.
pub fn pseudo_inverse(m: &Matrix) -> Matrix {
    let n = m.rows();
    let (eigs, vecs) = symmetric_eigen(m);
    let max_eig = eigs.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    let tol = max_eig * n as f64 * 1e-7;
    // pinv = V diag(1/λ or 0) Vᵀ
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f64;
            for (k, &lam) in eigs.iter().enumerate() {
                if lam.abs() > tol {
                    acc += vecs.get(i, k) as f64 * vecs.get(j, k) as f64 / lam;
                }
            }
            out.set(i, j, acc as f32);
        }
    }
    out
}

/// Spectral condition number estimate of a symmetric PSD matrix:
/// `λ_max / λ_min` over the eigenvalue magnitudes. Returns `f64::INFINITY`
/// for singular (or numerically singular) matrices — the signal CPD-ALS's
/// self-healing path uses to trigger its Tikhonov fallback before the
/// pseudo-inverse starts amplifying noise.
///
/// # Panics
/// If the matrix is not square.
pub fn spd_condition(m: &Matrix) -> f64 {
    let (eigs, _) = symmetric_eigen(m);
    let max_eig = eigs.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let min_eig = eigs.iter().fold(f64::INFINITY, |a, &b| a.min(b.abs()));
    if max_eig == 0.0 {
        return f64::INFINITY;
    }
    if min_eig <= max_eig * 1e-300 {
        return f64::INFINITY;
    }
    max_eig / min_eig
}

/// Solves `A · X = B` for symmetric positive-definite `A` via Cholesky.
/// Returns `None` if `A` is not positive definite (caller should fall back
/// to [`pseudo_inverse`]).
pub fn cholesky_solve(a: &Matrix, b: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "cholesky needs a square matrix");
    assert_eq!(a.rows(), b.rows(), "rhs row mismatch");
    let n = a.rows();
    // Factor A = L Lᵀ in f64.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) as f64;
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Solve L y = b, then Lᵀ x = y, column by column.
    let cols = b.cols();
    let mut x = Matrix::zeros(n, cols);
    let mut y = vec![0.0f64; n];
    for c in 0..cols {
        for i in 0..n {
            let mut sum = b.get(i, c) as f64;
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x.get(k, c) as f64;
            }
            x.set(i, c, (sum / l[i * n + i]) as f32);
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // AᵀA + n·I is comfortably positive definite.
        let a = Matrix::random(n + 2, n, seed);
        let mut g = a.gram();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + n as f32);
        }
        g
    }

    #[test]
    fn eigen_of_diagonal() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 1.0]);
        let (mut eigs, _) = symmetric_eigen(&m);
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-9);
        assert!((eigs[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = spd(5, 1);
        let (eigs, v) = symmetric_eigen(&m);
        // M ≈ V diag(λ) Vᵀ
        let mut recon = Matrix::zeros(5, 5);
        for i in 0..5 {
            for j in 0..5 {
                let mut acc = 0.0f64;
                for (k, &lam) in eigs.iter().enumerate() {
                    acc += v.get(i, k) as f64 * lam * v.get(j, k) as f64;
                }
                recon.set(i, j, acc as f32);
            }
        }
        assert!(
            m.rel_fro_diff(&recon) < 1e-5,
            "diff {}",
            m.rel_fro_diff(&recon)
        );
    }

    #[test]
    fn pinv_inverts_nonsingular() {
        let m = spd(4, 2);
        let p = pseudo_inverse(&m);
        let prod = m.matmul(&p);
        assert!(prod.rel_fro_diff(&Matrix::identity(4)) < 1e-4);
    }

    #[test]
    fn pinv_of_rank_deficient_satisfies_penrose() {
        // Rank-1 symmetric: x xᵀ.
        let x = [1.0f32, 2.0, 3.0];
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, x[i] * x[j]);
            }
        }
        let p = pseudo_inverse(&m);
        // Penrose condition 1: M P M = M.
        let mpm = m.matmul(&p).matmul(&m);
        assert!(mpm.rel_fro_diff(&m) < 1e-4);
        // Penrose condition 2: P M P = P.
        let pmp = p.matmul(&m).matmul(&p);
        assert!(pmp.rel_fro_diff(&p) < 1e-4);
    }

    #[test]
    fn condition_number_tracks_spectrum() {
        let m = Matrix::from_vec(2, 2, vec![100.0, 0.0, 0.0, 1.0]);
        let c = spd_condition(&m);
        assert!((c - 100.0).abs() < 1e-6, "cond {c}");
        // Rank-deficient: condition must be infinite.
        let x = [1.0f32, 2.0, 3.0];
        let mut s = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                s.set(i, j, x[i] * x[j]);
            }
        }
        assert!(spd_condition(&s).is_infinite());
        assert!(spd_condition(&Matrix::zeros(3, 3)).is_infinite());
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = spd(6, 3);
        let x_true = Matrix::random(6, 2, 4);
        let b = a.matmul(&x_true);
        let x = cholesky_solve(&a, &b).expect("SPD system must factor");
        assert!(
            x.rel_fro_diff(&x_true) < 1e-3,
            "diff {}",
            x.rel_fro_diff(&x_true)
        );
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky_solve(&m, &Matrix::identity(2)).is_none());
    }

    #[test]
    fn pinv_agrees_with_cholesky_on_spd() {
        let a = spd(5, 7);
        let b = Matrix::random(5, 3, 8);
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = pseudo_inverse(&a).matmul(&b);
        assert!(x1.rel_fro_diff(&x2) < 1e-3);
    }
}
